"""Figure 18: kmeans output halted at ~63% of baseline runtime (paper:
SNR 16.7 dB)."""

from _common import report, run_once

from repro.bench import fig18_kmeans_output


def test_fig18_kmeans_output(benchmark):
    fig = run_once(benchmark, fig18_kmeans_output)
    report(fig, "fig18_kmeans_output")
    rows = {r[0]: r for r in fig.rows}
    measured_snr = rows["SNR at halt (dB)"][2]
    assert measured_snr > 8.0
    time_to_paper_snr = rows["runtime to reach paper SNR"][2]
    assert time_to_paper_snr == time_to_paper_snr  # not NaN
    assert time_to_paper_snr <= 3.0
