"""Figure 17: dwt53 output halted at ~78% of baseline runtime (paper:
SNR 16.8 dB)."""

from _common import report, run_once

from repro.bench import fig17_dwt53_output


def test_fig17_dwt53_output(benchmark):
    fig = run_once(benchmark, fig17_dwt53_output)
    report(fig, "fig17_dwt53_output")
    rows = {r[0]: r for r in fig.rows}
    measured_snr = rows["SNR at halt (dB)"][2]
    assert measured_snr > 8.0
    time_to_paper_snr = rows["runtime to reach paper SNR"][2]
    assert time_to_paper_snr == time_to_paper_snr  # not NaN
    assert time_to_paper_snr <= 1.6
