"""Extension H: dynamic core reallocation (paper IV-C2 future work).

Generalized processor sharing lets idle stages donate cores; the apps
with non-anytime or blocking stages reach the precise output much
earlier, with bit-identical results.
"""

from _common import report, run_once

from repro.bench import extension_dynamic_shares


def test_extension_dynamic_shares(benchmark):
    fig = run_once(benchmark, extension_dynamic_shares)
    report(fig, "extension_dynamic_shares")
    for app, static, dynamic in fig.rows:
        assert dynamic < static, app
    rows = {r[0]: r for r in fig.rows}
    # histeq benefits hugely: the apply stage inherits the machine
    assert rows["histeq"][2] < 0.75 * rows["histeq"][1]
