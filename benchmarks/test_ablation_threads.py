"""Ablation A (paper IV-C1): multi-threaded sampling splits.

Cyclic division of a deterministic permutation keeps the global sample
prefix complete after each worker processed k elements; blocked
division does not (it destroys the progressive-resolution property).
"""

from _common import report, run_once

from repro.bench import ablation_threads


def test_ablation_threads(benchmark):
    fig = run_once(benchmark, ablation_threads)
    report(fig, "ablation_threads")
    for perm, workers, split, k, ok in fig.rows:
        if split == "cyclic":
            assert ok, f"cyclic split must preserve coverage ({perm})"
        else:
            assert not ok, \
                f"blocked split should break prefix coverage ({perm})"
