"""Figure 11: 2dconv runtime-accuracy profile.

Paper shape: the single diffusive stage yields high accuracy early
(~15.8 dB at 21% runtime) and reaches the precise output at ~2x the
baseline (non-sequential sampling costs locality).
"""

import math

from _common import report, run_once

from repro.bench import fig11_conv2d


def test_fig11_conv2d(benchmark):
    fig = run_once(benchmark, fig11_conv2d)
    report(fig, "fig11_conv2d")
    runtimes = [r[0] for r in fig.rows]
    snrs = [r[1] for r in fig.rows]
    assert runtimes == sorted(runtimes)
    # monotone accuracy (the anytime guarantee), small tolerance for
    # measurement noise at tiny samples
    best = -math.inf
    for s in snrs:
        assert s >= best - 1.0
        best = max(best, s)
    assert math.isinf(snrs[-1]), "precise output eventually reached"
    # early availability: double-digit SNR in the first third of baseline
    early = [s for t, s in fig.rows if t <= 0.35]
    assert early and max(early) > 10.0
    # precise between 1x and 3x baseline (paper: ~2x)
    assert 1.0 <= runtimes[-1] <= 3.0
