"""Figure 13: dwt53 runtime-accuracy profile.

Paper shape: a steep curve — iterative loop perforation spends over half
the baseline runtime below acceptability, then jumps; acceptable
(~16.8 dB) arrives before baseline completes, precise after it.
"""

import math

from _common import report, run_once

from repro.bench import fig13_dwt53


def test_fig13_dwt53(benchmark):
    fig = run_once(benchmark, fig13_dwt53)
    report(fig, "fig13_dwt53")
    runtimes = [r[0] for r in fig.rows]
    snrs = [r[1] for r in fig.rows]
    assert runtimes == sorted(runtimes)
    assert all(b >= a for a, b in zip(snrs, snrs[1:])), \
        "iterative levels strictly improve"
    assert math.isinf(snrs[-1])
    # steepness: one output version per perforation level, few versions
    assert 3 <= len(fig.rows) <= 6
    # precise later than baseline (redundant iterative work)
    assert 1.2 <= runtimes[-1] <= 3.5
    # an acceptable (>14 dB) version exists before 1.5x baseline
    acceptable = [t for t, s in fig.rows if s >= 14.0]
    assert acceptable and acceptable[0] <= 1.5
