"""Extension F: conv2d on drowsy SRAM — the runtime-accuracy view of
the approximate-storage iterative technique (III-B1)."""

import math

from _common import report, run_once

from repro.bench import extension_sram_runtime


def test_extension_sram_runtime(benchmark):
    fig = run_once(benchmark, extension_sram_runtime)
    report(fig, "extension_sram_runtime")
    snrs = [r[2] for r in fig.rows]
    runtimes = [r[1] for r in fig.rows]
    assert runtimes == sorted(runtimes)
    assert math.isinf(snrs[-1]), \
        "the nominal last level must be precise despite earlier upsets"
    assert all(s > 20.0 for s in snrs), \
        "every voltage level yields a usable output"
    assert snrs[0] <= snrs[-1]
