"""Figure 12: histeq runtime-accuracy profile.

Paper shape: acceptable output around 60% of baseline-to-acceptable
range, but the precise output only lands near ~6x baseline because the
non-anytime CDF/normalize stages force full re-runs of the apply stage.
"""

import math

from _common import report, run_once

from repro.bench import fig12_histeq


def test_fig12_histeq(benchmark):
    fig = run_once(benchmark, fig12_histeq)
    report(fig, "fig12_histeq")
    runtimes = [r[0] for r in fig.rows]
    snrs = [r[1] for r in fig.rows]
    assert runtimes == sorted(runtimes)
    best = -math.inf
    for s in snrs:
        assert s >= best - 3.0
        best = max(best, s)
    assert math.isinf(snrs[-1])
    # the non-anytime stages push time-to-precise far past baseline
    assert 4.0 <= runtimes[-1] <= 9.0, \
        "paper: histeq precise at ~6x baseline"
