"""Figure 15: kmeans runtime-accuracy profile.

Paper shape: diffusive assignment + non-anytime reduce; acceptable
output below baseline runtime, precise a bit past it — better than
histeq (one cheap non-anytime stage, not two blocking ones).
"""

import math

from _common import report, run_once

from repro.bench import fig15_kmeans


def test_fig15_kmeans(benchmark):
    fig = run_once(benchmark, fig15_kmeans)
    report(fig, "fig15_kmeans")
    runtimes = [r[0] for r in fig.rows]
    snrs = [r[1] for r in fig.rows]
    assert runtimes == sorted(runtimes)
    best = -math.inf
    for s in snrs:
        assert s >= best - 2.0
        best = max(best, s)
    assert math.isinf(snrs[-1])
    assert 1.2 <= runtimes[-1] <= 4.0
    # double-digit SNR well before the precise output
    acceptable = [t for t, s in fig.rows if s >= 10.0]
    assert acceptable and acceptable[0] <= 0.7 * runtimes[-1]
