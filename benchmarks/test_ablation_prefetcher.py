"""Extension E: permutation-aware prefetching applied to the apps
(paper IV-C3's mitigation, measured end to end)."""

from _common import report, run_once

from repro.bench import ablation_prefetcher


def test_ablation_prefetcher(benchmark):
    fig = run_once(benchmark, ablation_prefetcher)
    report(fig, "ablation_prefetcher")
    for app, plain, prefetched, reordered in fig.rows:
        assert prefetched < plain, app
        # the prefetcher pulls time-to-precise close to baseline
        assert prefetched < 1.3, app
        # in-memory reordering removes the penalty entirely, at the
        # price of one streaming pass
        assert reordered < prefetched, app
        assert 1.0 <= reordered < 1.1, app
