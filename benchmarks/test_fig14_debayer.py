"""Figure 14: debayer runtime-accuracy profile.

Paper shape: like 2dconv — a single diffusive stage gives high accuracy
early; precise at 1.5-2x baseline.
"""

import math

from _common import report, run_once

from repro.bench import fig14_debayer


def test_fig14_debayer(benchmark):
    fig = run_once(benchmark, fig14_debayer)
    report(fig, "fig14_debayer")
    runtimes = [r[0] for r in fig.rows]
    snrs = [r[1] for r in fig.rows]
    assert runtimes == sorted(runtimes)
    best = -math.inf
    for s in snrs:
        assert s >= best - 1.0
        best = max(best, s)
    assert math.isinf(snrs[-1])
    early = [s for t, s in fig.rows if t <= 0.35]
    assert early and max(early) > 10.0
    assert 1.0 <= runtimes[-1] <= 3.0
