"""Extension G: contract vs interruptible execution at known deadlines
(paper II-B's dichotomy, quantified on dwt53)."""

import math

from _common import report, run_once

from repro.bench import extension_contract


def test_extension_contract(benchmark):
    fig = run_once(benchmark, extension_contract)
    report(fig, "extension_contract")
    for deadline, inter_snr, contract_snr in fig.rows:
        # knowing the deadline never hurts
        assert contract_snr >= inter_snr - 1e-9, deadline
    # with a generous deadline both reach the precise output
    last = fig.rows[-1]
    assert math.isinf(last[1]) and math.isinf(last[2])
    # at some mid deadline the contract run is strictly better
    assert any(c > i for _, i, c in fig.rows
               if not (math.isinf(c) and math.isinf(i)))
