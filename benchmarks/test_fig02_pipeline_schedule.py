"""Figure 2: a four-stage automaton produces whole-application outputs
with increasing accuracy, well before the precise one."""

from _common import report, run_once

from repro.bench import fig02_pipeline_schedule


def test_fig02_pipeline_schedule(benchmark):
    fig = run_once(benchmark, fig02_pipeline_schedule)
    report(fig, "fig02_pipeline_schedule")
    times = [row[1] for row in fig.rows]
    finals = [row[2] for row in fig.rows]
    assert len(fig.rows) >= 2, "pipeline must emit intermediate outputs"
    assert times == sorted(times), "outputs appear in time order"
    assert finals[-1] and not any(finals[:-1]), \
        "exactly the last output is the precise one"
    # Early availability: the first whole-application output lands in a
    # fraction of the time the precise one needs.
    assert times[0] < 0.7 * times[-1]
