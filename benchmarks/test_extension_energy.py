"""Extension I: energy fraction to reach target acceptability levels
("hold-the-power-button computing", quantified)."""

import math

from _common import report, run_once

from repro.bench import extension_energy


def test_extension_energy(benchmark):
    fig = run_once(benchmark, extension_energy)
    report(fig, "extension_energy")
    for app, mid, high in fig.rows:
        assert 0.0 < mid <= 1.0, app
        if not math.isnan(high):
            assert mid <= high, \
                f"{app}: higher quality cannot cost less energy"
    # the single-stage diffusive apps hit 15 dB on a small energy slice
    rows = {r[0]: r for r in fig.rows}
    assert rows["2dconv"][1] < 0.35
    assert rows["debayer"][1] < 0.35
