"""Figure 16: 2dconv output halted at ~21% of baseline runtime.

The paper shows the image at SNR 15.8 dB; we assert a usable
double-digit-SNR output exists at that stopping point and that the
paper's SNR is reachable within baseline runtime.
"""

from _common import report, run_once

from repro.bench import fig16_conv2d_output


def test_fig16_conv2d_output(benchmark):
    fig = run_once(benchmark, fig16_conv2d_output)
    report(fig, "fig16_conv2d_output")
    rows = {r[0]: r for r in fig.rows}
    measured_snr = rows["SNR at halt (dB)"][2]
    assert measured_snr > 10.0, \
        "halting at 21% runtime must already give a usable output"
    time_to_paper_snr = rows["runtime to reach paper SNR"][2]
    assert time_to_paper_snr == time_to_paper_snr  # not NaN
    assert time_to_paper_snr <= 1.0, \
        "the paper's 15.8 dB operating point lies below baseline runtime"
