"""Figure 19: 2dconv sample-size-accuracy under reduced pixel precision.

Paper anchors at full sample size: 6-bit ~37.9 dB, 4-bit ~24.2 dB;
8-bit is exact.  Reduced precision composes with sampling: at small
sample sizes the sampling error dominates and the curves overlap.
"""

import math

from _common import report, run_once

from repro.bench import fig19_precision


def test_fig19_precision(benchmark):
    fig = run_once(benchmark, fig19_precision)
    report(fig, "fig19_precision")
    final = {}
    for bits, frac, snr in fig.rows:
        if frac == 1.0:
            final[bits] = snr
    assert math.isinf(final[8]), "8-bit full sample is the precise output"
    # precision ceilings ordered and near the paper's anchors
    assert final[6] > final[4] > final[2]
    assert 25.0 <= final[6] <= 50.0, "paper: ~37.9 dB at 6 bits"
    assert 15.0 <= final[4] <= 35.0, "paper: ~24.2 dB at 4 bits"
    # SNR grows with sample size within each precision (tolerance 1 dB)
    for bits in (8, 6, 4, 2):
        series = [snr for b, _, snr in fig.rows if b == bits]
        best = -math.inf
        for s in series:
            assert s >= best - 1.0
            best = max(best, s)
