"""Figure 10: runtime of the five automaton organizations.

Expected ordering (the paper's summary example): the synchronous
pipeline finishes before the baseline; the diffusive asynchronous
pipeline matches the baseline; iterative organizations pay the
redundant-work tax, mitigated (but not erased) by pipelining.
"""

from _common import report, run_once

from repro.bench import fig10_organizations


def test_fig10_organizations(benchmark):
    fig = run_once(benchmark, fig10_organizations, m=64)
    report(fig, "fig10_organizations")
    runtime = {row[0]: row[1] for row in fig.rows}
    assert runtime["sync"] < runtime["baseline"]
    assert abs(runtime["diffusive-async"] - runtime["baseline"]) < 0.05
    assert runtime["baseline"] < runtime["iterative-async"]
    assert runtime["iterative-async"] < runtime["iterative"]
    # Every pipelined organization delivers a first (approximate)
    # whole-application output before the baseline's only output.
    first = {row[0]: row[2] for row in fig.rows}
    for org in ("iterative", "iterative-async", "diffusive-async",
                "sync"):
        assert first[org] < runtime["baseline"]
