"""Extension D: restart policy (complete vs preempt) on histeq.

Preempting stale apply-stage passes reaches the precise output earlier
at the cost of fewer intermediate outputs.
"""

from _common import report, run_once

from repro.bench import ablation_restart_policy


def test_ablation_restart_policy(benchmark):
    fig = run_once(benchmark, ablation_restart_policy)
    report(fig, "ablation_restart_policy")
    rows = {r[0]: r for r in fig.rows}
    assert rows["preempt"][1] < rows["complete"][1], \
        "preemption must shorten time-to-precise"
    assert rows["preempt"][2] <= rows["complete"][2], \
        "preemption abandons some intermediate outputs"
