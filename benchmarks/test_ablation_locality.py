"""Ablation C (paper IV-C3): sampling-permutation cache locality.

Sequential access enjoys spatial locality; tree and LFSR orders do not.
A permutation-aware prefetcher recovers most of the LFSR loss; the tree
order additionally suffers power-of-two set conflicts that lookahead
alone cannot fix (its early strides alias to one cache set).
"""

from _common import report, run_once

from repro.bench import ablation_locality


def test_ablation_locality(benchmark):
    fig = run_once(benchmark, ablation_locality)
    report(fig, "ablation_locality")
    rates = {r[0]: (r[1], r[2], r[3]) for r in fig.rows}
    seq_plain, seq_pf, seq_rb = rates["sequential"]
    assert seq_plain < 0.1, "sequential access mostly hits"
    for name in ("tree", "lfsr"):
        assert rates[name][0] > 5 * seq_plain, \
            f"{name} order must show the locality penalty"
        # the row-buffer side of the paper's IV-C3 claim
        assert rates[name][2] < 0.5 * seq_rb, \
            f"{name} order must also hurt row-buffer locality"
    assert seq_rb > 0.9
    # the prefetcher substantially recovers the LFSR penalty
    lfsr_plain, lfsr_pf, _ = rates["lfsr"]
    assert lfsr_pf < 0.25 * lfsr_plain
    assert seq_pf <= seq_plain
