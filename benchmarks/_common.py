"""Shared helpers for the per-figure benchmarks.

Each benchmark times the experiment with pytest-benchmark (single round —
the runs are deterministic simulations, not microbenchmarks), prints the
regenerated figure rows, and archives them under ``benchmarks/results/``
so EXPERIMENTS.md can reference the exact numbers.
"""

from __future__ import annotations

import pathlib

from repro.bench.harness import FigureData

RESULTS_DIR = pathlib.Path(__file__).resolve().parent / "results"


def report(fig: FigureData, stem: str) -> FigureData:
    """Print a figure's table and archive it to results/<stem>.txt."""
    text = fig.render()
    print()
    print(text)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{stem}.txt").write_text(text + "\n")
    return fig


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                              rounds=1, iterations=1)
