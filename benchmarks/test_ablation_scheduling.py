"""Ablation B (paper IV-C2): thread allocation policies.

Correctness never depends on the allocation; the final-stage policy
minimizes the inter-output gap, as the paper's discussion predicts.
"""

from _common import report, run_once

from repro.bench import ablation_scheduling


def test_ablation_scheduling(benchmark):
    fig = run_once(benchmark, ablation_scheduling)
    report(fig, "ablation_scheduling")
    for f_scale in (2.0, 10.0):
        rows = {r[1]: r for r in fig.rows if r[0] == f_scale}
        gaps = {name: r[3] for name, r in rows.items()}
        assert gaps["final-stage"] == min(gaps.values()), \
            "boosting the terminal stage minimizes the output gap"
        # every policy reaches the precise output
        assert all(r[4] > 0 for r in rows.values())
