"""Figure 20: 2dconv sample-size-accuracy under SRAM read upsets.

Paper shape: the nominal curve reaches inf; higher upset probabilities
cap the final SNR but still give acceptable outputs; the curves line up
at small sample sizes since bit flips scale with elements processed.
"""

import math

from _common import report, run_once

from repro.bench import fig20_sram


def test_fig20_sram(benchmark):
    fig = run_once(benchmark, fig20_sram)
    report(fig, "fig20_sram")
    series = {}
    for label, frac, snr in fig.rows:
        series.setdefault(label, []).append((frac, snr))
    assert math.isinf(series["0%"][-1][1])
    assert not math.isinf(series["0.001%"][-1][1])
    assert series["0.00001%"][-1][1] > series["0.001%"][-1][1] > 20.0
    # overlay at the smallest sample size (flips ~ elements processed)
    smallest = {label: pts[0][1] for label, pts in series.items()}
    assert abs(smallest["0%"] - smallest["0.001%"]) < 1.0
