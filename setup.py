from setuptools import setup

# Metadata lives in pyproject.toml; this shim exists so that editable
# installs work on environments whose setuptools predates PEP 660.
setup()
