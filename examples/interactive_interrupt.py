#!/usr/bin/env python3
"""Interruptible execution on real threads — "hold the power button".

The paper's motivating story: "imagine typing a search engine query and
instead of pressing the enter key, you hold it based on the desired
amount of precision".  This example runs the debayer automaton on the
*threaded* executor and interrupts it from another thread (press Enter to
stop early when run in a terminal, or it auto-stops after a few seconds).
Whatever was in the output buffer at that moment is a complete RGB image
— interruption needs no cleanup.

Run:  python examples/interactive_interrupt.py [seconds]
"""

import pathlib
import sys
import threading

from repro import ManualStop, bayer_mosaic
from repro.apps.debayer import build_debayer_automaton, debayer_precise
from repro.data import write_pnm
from repro.metrics.snr import snr_db

OUT_DIR = pathlib.Path(__file__).parent / "output" / "interactive"


def wait_for_user_or_timeout(stop: ManualStop, seconds: float) -> None:
    """Arm both triggers: Enter key (if a terminal) and a timer."""
    timer = threading.Timer(seconds, stop.stop)
    timer.daemon = True
    timer.start()
    if sys.stdin.isatty():
        def on_enter():
            try:
                input()
            except EOFError:
                return
            stop.stop()

        threading.Thread(target=on_enter, daemon=True).start()
        print(f"press Enter to stop (auto-stop in {seconds:.0f}s)...")


def main() -> None:
    seconds = float(sys.argv[1]) if len(sys.argv) > 1 else 2.0
    mosaic = bayer_mosaic(256, seed=3)
    reference = debayer_precise(mosaic)
    automaton = build_debayer_automaton(mosaic, chunks=128)

    stop = ManualStop()
    wait_for_user_or_timeout(stop, seconds)
    result = automaton.run_threaded(stop=stop, timeout_s=120.0)

    records = result.output_records(automaton.terminal_buffer_name)
    print(f"\nexecution {'interrupted' if result.stopped_early else 'completed'} "
          f"after {result.duration:.2f}s wall time")
    print(f"output versions published: {len(records)}")
    if records:
        last = records[-1]
        quality = snr_db(last.value, reference)
        print(f"newest version: v{last.version}, "
              f"SNR {quality:.1f} dB vs precise, final={last.final}")
        OUT_DIR.mkdir(parents=True, exist_ok=True)
        write_pnm(OUT_DIR / "interrupted.ppm", last.value)
        write_pnm(OUT_DIR / "precise.ppm", reference)
        print(f"images written to {OUT_DIR}")
    print("\nthe output buffer always held a valid whole image — "
          "stopping earlier just means accepting lower accuracy")


if __name__ == "__main__":
    main()
