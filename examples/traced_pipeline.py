#!/usr/bin/env python3
"""Trace an anytime run and open it in chrome://tracing.

The accuracy-vs-time curve tells you *what* the automaton delivered;
the trace tells you *why* — which stage ran when, where the pipeline
stalled, and how accuracy climbed version by version.  This example
runs the 2D convolution app twice with a :class:`ChromeTraceSink`
attached — once with proportional shares and once with equal shares —
so the schedules can be compared side by side in the viewer, and also
prints the accuracy event stream captured by an :class:`InMemorySink`.

Run:  python examples/traced_pipeline.py
Then: open chrome://tracing (or https://ui.perfetto.dev) and load
      examples/output/traced_2dconv_*.json
"""

import math
import pathlib

from repro import ChromeTraceSink, InMemorySink, scene_image
from repro.apps.conv2d import build_conv2d_automaton, conv2d_precise
from repro.core.scheduling import equal_shares, proportional_shares
from repro.metrics.snr import snr_db

SIZE = 128
CORES = 32.0
OUT_DIR = pathlib.Path(__file__).parent / "output"


def traced_run(schedule, schedule_name: str, image, reference) -> None:
    OUT_DIR.mkdir(exist_ok=True)
    path = OUT_DIR / f"traced_2dconv_{schedule_name}.json"
    automaton = build_conv2d_automaton(image)
    sink = ChromeTraceSink(str(path))
    automaton.run_simulated(total_cores=CORES, schedule=schedule,
                            trace=sink, trace_metric=snr_db,
                            trace_reference=reference)
    sink.close()
    events = len(sink.trace_events())
    print(f"  {schedule_name:<13} {events:>4} trace events "
          f"-> {path}")


def accuracy_stream(image, reference) -> None:
    """The same instrumentation feeding a live consumer instead of a
    file: every output version becomes an (ts, accuracy) sample."""
    automaton = build_conv2d_automaton(image)
    mem = InMemorySink()
    automaton.run_simulated(total_cores=CORES, trace=mem,
                            trace_metric=snr_db,
                            trace_reference=reference)
    baseline = automaton.baseline_duration(CORES)
    print("\naccuracy event stream (normalized runtime vs SNR dB):")
    for ts, acc in mem.accuracy_stream(automaton.terminal_buffer_name):
        snr = "precise" if math.isinf(acc) else f"{acc:6.2f} dB"
        print(f"  t={ts / baseline:6.3f}  {snr}")


def main() -> None:
    image = scene_image(SIZE, seed=1)
    reference = conv2d_precise(image)

    print(f"2dconv traced runs ({SIZE}x{SIZE} input, "
          f"{CORES:.0f} virtual cores)")
    traced_run(proportional_shares, "proportional", image, reference)
    traced_run(equal_shares, "equal", image, reference)
    accuracy_stream(image, reference)
    print("\nload the JSON files in chrome://tracing to compare the "
          "two schedules")


if __name__ == "__main__":
    main()
