#!/usr/bin/env python3
"""Serve an open-loop anytime workload with deadline/quality SLOs.

Many clients, four executor slots: this example drives a Poisson
arrival stream of 2D-convolution requests against an
:class:`~repro.serve.AnytimeServer` and shows the serving layer's
moving parts —

* **admission control**: the queue is bounded; requests beyond it are
  shed (their sessions land in the distinct ``SHED`` terminal state);
* **deadline SLOs**: a request stopped at its latency bound returns
  the newest output version its buffer holds — degraded, never
  invalid (the model's interruptibility guarantee doing real work);
* **quality SLOs + marginal-gain scheduling**: a calibrated
  runtime-accuracy profile lets the scheduler keep slots on requests
  that are still climbing steeply and finish the ones that reached
  their target dB early;
* **streaming refinement**: any session can be watched version by
  version while it runs.

Run:  python examples/serve_workload.py
Also: python -m repro serve --app 2dconv --policy gain
      python -m repro bench serve          # sweep offered load
"""

from repro.serve import SLO, AnytimeServer, MarginalGainPolicy
from repro.serve.bench import calibrate_app
from repro.serve.workload import run_open_loop, summarize

SLOTS = 4
QUEUE_LIMIT = 6
REQUESTS = 20
TARGET_DB = 25.0


def main() -> None:
    # One simulated run calibrates the accuracy profile; one solo
    # threaded run measures what "normalized runtime 1.0" costs in
    # wall seconds on this machine.
    print("calibrating 2dconv ...")
    calib = calibrate_app(app="2dconv", size=32)
    baseline = calib["baseline_wall_s"]
    capacity = SLOTS / baseline
    rate = 2.0 * capacity                # deliberately overloaded
    slo = SLO(deadline_s=6.0 * baseline, target_db=TARGET_DB)
    print(f"solo run {baseline * 1e3:.1f} ms -> capacity "
          f"~{capacity:.0f} req/s; offering {rate:.0f} req/s "
          f"(open loop, 2x overload)")

    policy = MarginalGainPolicy(calib["profile"], baseline)
    with AnytimeServer(slots=SLOTS, queue_limit=QUEUE_LIMIT,
                       policy=policy, quantum_s=0.02) as server:
        sessions = run_open_loop(
            server, lambda i: calib["builder"], REQUESTS,
            rate_hz=rate, slo=slo,
            metric=lambda i: calib["metric"], seed=1)

        # Watch one request refine while the server churns.
        watched = next(s for s in sessions if not s.done)
        print(f"\nstreaming {watched.name}:")
        for snap in watched.stream(timeout_s=10.0):
            print(f"  version {snap.version:>2}  "
                  f"{calib['metric'](snap.value):6.1f} dB")

        server.drain(timeout_s=60.0)

    print(f"\n{'request':<10}{'state':<11}{'latency':>9}"
          f"{'preempt':>8}{'SNR (dB)':>10}")
    for session in sessions:
        outcome = session.result(timeout_s=0.0)
        snr = ("-" if outcome.snr_db is None
               else f"{outcome.snr_db:.1f}")
        print(f"{session.name:<10}{outcome.state.value:<11}"
              f"{outcome.latency_s:>9.3f}{outcome.preemptions:>8}"
              f"{snr:>10}")

    summary = summarize(sessions)
    print(f"\nserved {summary['completed']}/{summary['requests']} "
          f"(shed {summary['shed']}) at "
          f"{summary['throughput_rps']:.1f} req/s goodput; "
          f"p50 {summary['latency_p50_s'] * 1e3:.0f} ms, "
          f"p99 {summary['latency_p99_s'] * 1e3:.0f} ms")
    if summary["interrupted"]:
        print(f"{summary['interrupted']} request(s) interrupted at "
              f"mean {summary['snr_at_interrupt_mean_db']:.1f} dB — "
              f"valid approximations, on time")


if __name__ == "__main__":
    main()
