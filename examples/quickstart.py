#!/usr/bin/env python3
"""Quickstart: run one anytime automaton and watch accuracy grow.

Builds the paper's 2dconv automaton (a blur filter as a single diffusive
output-sampled stage), executes it on the deterministic simulated
executor with 32 virtual cores, and prints the runtime-accuracy profile —
the same curve as the paper's Figure 11.  Progressive output versions are
saved as PGM images under ``examples/output/quickstart/``.

Run:  python examples/quickstart.py
"""

import pathlib

from repro import build_conv2d_automaton, scene_image
from repro.data import write_pnm

OUT_DIR = pathlib.Path(__file__).parent / "output" / "quickstart"


def main() -> None:
    image = scene_image(256, seed=0)
    automaton = build_conv2d_automaton(image, chunks=16)

    print("input: 256x256 synthetic scene; kernel: 9x9 binomial blur")
    print(f"stages: {[s.name for s in automaton.graph.stages]}")

    result = automaton.run_simulated(total_cores=32)
    profile = automaton.profile(result)

    print()
    print(profile.format_table(max_rows=12))
    print()
    print(f"precise output reached at "
          f"{profile.time_to_precise:.2f}x the baseline runtime")
    print(f"a 20 dB output was available at "
          f"{profile.time_to_snr(20.0):.2f}x baseline — stop there if "
          f"that is acceptable, or just let it run longer")

    OUT_DIR.mkdir(parents=True, exist_ok=True)
    records = result.output_records(automaton.terminal_buffer_name)
    picks = [0, len(records) // 4, len(records) // 2, len(records) - 1]
    for k in dict.fromkeys(picks):
        rec = records[k]
        path = OUT_DIR / f"version_{rec.version:03d}.pgm"
        write_pnm(path, rec.value)
        print(f"saved {path.name} (t={rec.time:.0f} work units, "
              f"final={rec.final})")
    write_pnm(OUT_DIR / "input.pgm", image)
    print(f"\nimages written to {OUT_DIR}")


if __name__ == "__main__":
    main()
