#!/usr/bin/env python3
"""Real-time stream processing with a hard per-frame budget.

The model is "valuable in real-time environments where absolute
time/energy constraints need to be met."  This example simulates a
camera pipeline: a stream of frames must each be demosaiced within a
fixed per-frame time budget.  Every frame makes its deadline by
construction — the automaton is interrupted at the budget, and whatever
the output buffer holds is shipped; frame content only changes *quality*,
never timing.  A second pass shows the per-frame budget a target quality
would need (the planner view).

Run:  python examples/realtime_stream.py
"""

from repro import bayer_mosaic
from repro.apps.debayer import build_debayer_automaton, debayer_precise
from repro.core import DeadlineStop
from repro.metrics.planning import DeadlinePlanner
from repro.metrics.snr import snr_db

FRAMES = 8
SIZE = 128
CORES = 32.0
FRAME_BUDGET = 0.45       # x baseline runtime, per frame


def main() -> None:
    print(f"streaming {FRAMES} frames, per-frame budget "
          f"{FRAME_BUDGET:.0%} of the precise runtime\n")
    print(f"{'frame':>5} {'versions':>9} {'shipped SNR':>12} "
          f"{'deadline met':>13}")
    planner = DeadlinePlanner(margin=1.25)
    for frame in range(FRAMES):
        mosaic = bayer_mosaic(SIZE, seed=100 + frame)
        reference = debayer_precise(mosaic)
        automaton = build_debayer_automaton(mosaic, chunks=64)
        deadline = automaton.baseline_duration(CORES) * FRAME_BUDGET
        result = automaton.run_simulated(
            total_cores=CORES, stop=DeadlineStop(deadline))
        records = result.output_records("rgb")
        quality = snr_db(records[-1].value, reference)
        met = result.duration <= deadline + 1e-9
        print(f"{frame:>5} {len(records):>9} {quality:>10.1f} dB "
              f"{'yes' if met else 'NO':>13}")
        # feed a full profile of the first frame to the planner
        if frame == 0:
            probe = build_debayer_automaton(mosaic, chunks=64)
            full = probe.run_simulated(total_cores=CORES)
            planner.calibrate(probe.profile(full, total_cores=CORES))

    print("\nplanner view (calibrated on frame 0): per-frame budget "
          "needed for a target quality")
    for target in (15.0, 20.0, 25.0):
        print(f"  {target:.0f} dB -> "
              f"{planner.budget_for(target):.2f}x baseline per frame")
    print("\nevery frame shipped a complete image at the deadline; "
          "harder frames ship at lower SNR instead of arriving late")


if __name__ == "__main__":
    main()
