#!/usr/bin/env python3
"""Build your own anytime application: a Mandelbrot renderer.

This example uses only the public API to turn a *new* computation — one
the paper never mentions — into an anytime automaton, demonstrating the
recipe from docs/TUTORIAL.md:

1. write the pure per-element kernel (escape-time iteration counts);
2. wrap it in a MapStage with a tree permutation (pixels are an ordered
   2-D data set, so progressive resolution is the right sampling);
3. hand the stage to AnytimeAutomaton and run.

The fractal renders coarse-to-fine exactly like the paper's image
outputs; interrupt whenever it looks good.

Run:  python examples/custom_app_mandelbrot.py
"""

import pathlib

import numpy as np

from repro.anytime import TreeFill, TreePermutation
from repro.core import AnytimeAutomaton, MapStage, VersionedBuffer
from repro.data import write_pnm
from repro.metrics import snr_db

SIZE = 256
MAX_ITER = 64
VIEW = (-2.2, 0.8, -1.5, 1.5)       # re_min, re_max, im_min, im_max

OUT_DIR = pathlib.Path(__file__).parent / "output" / "mandelbrot"


def escape_counts(indices: np.ndarray, params: np.ndarray) -> np.ndarray:
    """Escape-time iteration counts for the given flat pixel indices.

    Pure function of (indices, params) — Property 1 — and vectorized,
    which is all a MapStage kernel needs to be.
    """
    re_min, re_max, im_min, im_max = params
    rows = indices // SIZE
    cols = indices % SIZE
    c = ((re_min + (re_max - re_min) * cols / (SIZE - 1))
         + 1j * (im_min + (im_max - im_min) * rows / (SIZE - 1)))
    z = np.zeros_like(c)
    counts = np.zeros(len(indices), dtype=np.int64)
    alive = np.ones(len(indices), dtype=bool)
    for _ in range(MAX_ITER):
        z[alive] = z[alive] * z[alive] + c[alive]
        escaped = alive & (np.abs(z) > 2.0)
        alive &= ~escaped
        counts[alive] += 1
    return (counts * (255 // MAX_ITER)).astype(np.uint8)


def build_mandelbrot_automaton() -> AnytimeAutomaton:
    b_params = VersionedBuffer("view")
    b_image = VersionedBuffer("fractal")
    stage = MapStage(
        "mandelbrot", b_image, (b_params,), escape_counts,
        shape=(SIZE, SIZE), dtype=np.uint8,
        permutation=TreePermutation(), fill=TreeFill(spatial_ndim=2),
        chunks=24, chunk_schedule="geometric",
        cost_per_element=float(MAX_ITER))
    return AnytimeAutomaton([stage], name="mandelbrot",
                            external={"view": np.array(VIEW)})


def main() -> None:
    automaton = build_mandelbrot_automaton()
    reference = automaton.precise_output()
    result = automaton.run_simulated(total_cores=32)
    profile = automaton.profile(result)

    print("anytime Mandelbrot: a brand-new app on the public API\n")
    print(profile.format_table(max_rows=10))

    OUT_DIR.mkdir(parents=True, exist_ok=True)
    records = result.output_records("fractal")
    for pick in (len(records) // 2, 3 * len(records) // 4, -1):
        rec = records[pick]
        name = f"v{rec.version:03d}.pgm"
        write_pnm(OUT_DIR / name, rec.value)
        quality = snr_db(rec.value, reference)
        print(f"saved {name}  "
              f"({'exact' if rec.final else f'{quality:.1f} dB'})")
    print(f"\nimages in {OUT_DIR} — the fractal sharpens "
          "coarse-to-fine, versions arrive early (geometric chunks)")
    print("note the flat early SNR: a fractal boundary has no spatial "
          "smoothness,\nso block fills mispredict until sampling gets "
          "dense — anytime guarantees\nstill hold, but the profile "
          "shape is content-dependent")


if __name__ == "__main__":
    main()
