#!/usr/bin/env python3
"""Hard deadlines and energy budgets across all five applications.

Real-time systems need interruptibility to meet absolute time/energy
constraints (paper Section III).  This example sweeps a set of virtual-
time deadlines and energy budgets over the paper's five applications and
reports the output quality each budget buys — the "acceptability governs
time and energy expended" tradeoff, quantified.

Run:  python examples/deadline_and_energy.py
"""

from repro import bayer_mosaic, clustered_image, scene_image
from repro.apps.conv2d import build_conv2d_automaton
from repro.apps.debayer import build_debayer_automaton
from repro.apps.dwt53 import build_dwt53_automaton, reconstruction_metric
from repro.apps.histeq import build_histeq_automaton
from repro.apps.kmeans import build_kmeans_automaton, clustered_image_metric
from repro.core import DeadlineStop, EnergyBudget
from repro.core.scheduling import final_stage_shares, proportional_shares
from repro.metrics.snr import snr_db

SIZE = 128
CORES = 32.0

APPS = {
    "2dconv": (lambda: build_conv2d_automaton(scene_image(SIZE, 0)),
               None, proportional_shares),
    "histeq": (lambda: build_histeq_automaton(scene_image(SIZE, 1)),
               None, proportional_shares),
    "dwt53": (lambda: build_dwt53_automaton(scene_image(SIZE, 2)),
              "dwt", proportional_shares),
    "debayer": (lambda: build_debayer_automaton(bayer_mosaic(SIZE, 3)),
                None, proportional_shares),
    "kmeans": (lambda: build_kmeans_automaton(
        clustered_image(SIZE // 2, 4, clusters=6), k=6),
        "kmeans", final_stage_shares),
}


def quality(app: str, value, reference) -> float:
    kind = APPS[app][1]
    if kind == "dwt":
        return reconstruction_metric()(value, reference)
    if kind == "kmeans":
        return clustered_image_metric(value, reference)
    return snr_db(value, reference)


def reference_for(app: str, automaton):
    if APPS[app][1] == "dwt":
        return automaton.precise_values()["input"]
    return automaton.precise_output()


def main() -> None:
    print(f"{'app':>8} | " + " | ".join(
        f"{f'{frac:.0%} time':>12}" for frac in (0.25, 0.5, 1.0))
        + " | " + f"{'50% energy':>12}")
    print("-" * 76)
    for app, (build, _, schedule) in APPS.items():
        cells = []
        # deadline sweep: fraction of the baseline precise runtime
        for frac in (0.25, 0.5, 1.0):
            automaton = build()
            reference = reference_for(app, automaton)
            deadline = automaton.baseline_duration(CORES) * frac
            result = automaton.run_simulated(
                total_cores=CORES, schedule=schedule,
                stop=DeadlineStop(deadline))
            records = result.output_records(
                automaton.terminal_buffer_name)
            if records:
                cells.append(
                    f"{quality(app, records[-1].value, reference):.1f} dB")
            else:
                cells.append("no output")
        # energy budget: half the precise execution's energy
        automaton = build()
        reference = reference_for(app, automaton)
        full = build().run_simulated(total_cores=CORES,
                                     schedule=schedule)
        budget = full.energy * 0.5
        result = automaton.run_simulated(total_cores=CORES,
                                         schedule=schedule,
                                         stop=EnergyBudget(budget))
        records = result.output_records(automaton.terminal_buffer_name)
        cells.append(f"{quality(app, records[-1].value, reference):.1f} dB"
                     if records else "no output")
        print(f"{app:>8} | " + " | ".join(f"{c:>12}" for c in cells))
    print("\ninterpretation: every cell is a *valid whole output*; a "
          "bigger budget only ever buys more accuracy")


if __name__ == "__main__":
    main()
