#!/usr/bin/env python3
"""Dynamic accuracy control on the whole application output.

Prior approximate-computing systems measure accuracy on individual code
segments, which "does not necessarily translate to accuracy of the whole
application"; the automaton's early availability lets a controller watch
the *whole* output and stop exactly when it crosses an acceptability
threshold.  This example runs histeq with an :class:`AccuracyTarget`
stop condition at several thresholds and reports the time and energy
each acceptability level costs.

Run:  python examples/accuracy_controlled.py
"""

from repro import AccuracyTarget, scene_image
from repro.apps.histeq import build_histeq_automaton, histeq_precise
from repro.metrics.snr import snr_db

SIZE = 128
CORES = 32.0


def main() -> None:
    image = scene_image(SIZE, seed=1)
    reference = histeq_precise(image)

    print("histeq with whole-output accuracy control "
          f"({SIZE}x{SIZE} input, {CORES:.0f} virtual cores)\n")
    print(f"{'target SNR':>11} {'runtime':>9} {'energy':>10} "
          f"{'achieved':>9}")

    baseline = None
    full_energy = None
    for target in (10.0, 14.0, 18.0, 25.0):
        automaton = build_histeq_automaton(image, chunks=32)
        if baseline is None:
            baseline = automaton.baseline_duration(CORES)
        stop = AccuracyTarget(lambda v: snr_db(v, reference),
                              target=target)
        result = automaton.run_simulated(total_cores=CORES, stop=stop)
        records = result.output_records(automaton.terminal_buffer_name)
        achieved = stop.last_score
        if full_energy is None:
            probe = build_histeq_automaton(image, chunks=32)
            full_energy = probe.run_simulated(total_cores=CORES).energy
        print(f"{target:>10.1f}  {records[-1].time / baseline:>8.2f}x "
              f"{result.energy / full_energy:>9.1%} "
              f"{achieved:>8.1f}")

    print("\nhigher acceptability costs more time and energy — and the "
          "controller\nnever has to re-execute the application: it just "
          "lets it run longer")


if __name__ == "__main__":
    main()
