#!/usr/bin/env python3
"""Fault tolerance: the anytime property is also a *resilience* property.

Because every published version of an anytime buffer is a valid
approximation of the precise output, a stage crash does not have to
discard the run — the automaton can degrade gracefully (freeze the
output at its last version) or restart the stage from a fresh
generator (legal because buffers are monotone) and still reach the
precise result.

This example runs the paper's 2dconv automaton three times with the
same injected crash (command #40 of the "conv" stage, roughly mid-run)
under the three failure policies:

  fail     halt immediately; the result still carries every version
           published before the crash
  degrade  seal the output at its last version and keep going
  restart  retry the stage from scratch (monotone state is preserved
           on the stage object, so refinement resumes, not restarts)

Run:  python examples/fault_tolerant_pipeline.py
"""

import numpy as np

from repro import FaultInjector, FaultPolicy, scene_image
from repro.apps.conv2d import build_conv2d_automaton, conv2d_precise
from repro.metrics.snr import snr_db

SIZE = 64
CORES = 16.0
CRASH_AT = 40          # command index within the conv stage's stream


def run_with_policy(image, policy):
    automaton = build_conv2d_automaton(image, chunks=32)
    injector = FaultInjector.crash("conv", at=CRASH_AT)
    return automaton.run_simulated(total_cores=CORES, faults=policy,
                                   injector=injector)


def main() -> None:
    image = scene_image(SIZE, seed=7)
    reference = conv2d_precise(image)

    print("2dconv with an injected mid-run crash "
          f"({SIZE}x{SIZE} input, {CORES:.0f} virtual cores, "
          f"crash at command #{CRASH_AT})\n")
    print(f"{'policy':>22} {'versions':>9} {'SNR (dB)':>9} "
          f"{'precise?':>9} {'attempts':>9}")

    policies = [
        ("fail", FaultPolicy(on_failure="fail")),
        ("degrade", FaultPolicy(on_failure="degrade")),
        ("restart (1 retry)", FaultPolicy(on_failure="restart",
                                          max_retries=1)),
    ]
    for label, policy in policies:
        result = run_with_policy(image, policy)
        records = result.output_records("filtered")
        report = result.stage_reports["conv"]
        last = records[-1].value if records else None
        snr = snr_db(last, reference) if last is not None else float("nan")
        precise = bool(records and records[-1].final
                       and np.array_equal(last, reference))
        print(f"{label:>22} {len(records):>9d} {snr:>9.1f} "
              f"{str(precise):>9} {report.attempts:>9d}")

    print("\nevery policy returns a usable image: the pre-crash "
          "approximation is never lost.  'restart' pays one extra "
          "attempt and recovers the precise output; 'degrade' keeps "
          "whatever accuracy the crash allowed; 'fail' merely stops "
          "refining sooner.")


if __name__ == "__main__":
    main()
