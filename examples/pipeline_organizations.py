#!/usr/bin/env python3
"""The five automaton organizations of the paper's Figure 10, plus the
string-capitalization synchronous-pipeline demo of Figures 8 and 9.

Shows how the same application (sensor matrix -> dot product) behaves
under: baseline, fused iterative re-execution, iterative + asynchronous
pipeline, diffusive + asynchronous pipeline, and the synchronous pipeline
that streams updates to a distributive consumer.

Run:  python examples/pipeline_organizations.py
"""

from repro import ORGANIZATIONS, build_organization
from repro.core.scheduling import equal_shares


def figure10() -> None:
    print("=== Figure 10: five organizations, one core per stage ===\n")
    baseline_time = None
    print(f"{'organization':>18} {'to precise':>12} {'first output':>14}")
    for org in ORGANIZATIONS:
        automaton = build_organization(org, m=64)
        result = automaton.run_simulated(
            total_cores=float(len(automaton.graph.stages)),
            schedule=equal_shares)
        records = result.output_records(automaton.terminal_buffer_name)
        final_t, first_t = records[-1].time, records[0].time
        if baseline_time is None:
            baseline_time = final_t
        print(f"{org:>18} {final_t / baseline_time:>11.2f}x "
              f"{first_t / baseline_time:>13.2f}x")
    print("\nthe synchronous pipeline beats the baseline to the precise "
          "output:\nno stage repeats work, and the stages overlap")


def figures8and9() -> None:
    print("\n=== Figures 8-9: distributive g over a diffusive f ===\n")
    import numpy as np

    from repro.anytime.permutations import SequentialPermutation
    from repro.core import (AnytimeAutomaton, SynchronousStage,
                            UpdateChannel, VersionedBuffer)
    from repro.core.diffusive import DiffusiveStage

    word = "hello"
    work_done = {"async": 0, "sync": 0}

    class Letters(DiffusiveStage):
        def __init__(self, out, emit_to=None):
            super().__init__("f", out, (), shape=len(word),
                             permutation=SequentialPermutation(),
                             chunks=len(word), cost_per_element=1.0,
                             emit_to=emit_to)

        def init_state(self, values):
            return {"s": ""}

        def process_chunk(self, state, indices, values):
            piece = "".join(word[i] for i in indices.tolist())
            state["s"] += piece
            return piece

        def materialize(self, state, count, values):
            return state["s"]

        def precise(self, input_values):
            return word

    # asynchronous: g re-capitalizes the whole prefix per version
    from repro.core.stage import PreciseStage

    b_f, b_g = VersionedBuffer("F"), VersionedBuffer("G")

    def cap_all(s):
        work_done["async"] += len(s)
        return s.upper()

    auto = AnytimeAutomaton(
        [Letters(b_f), PreciseStage("g", b_g, (b_f,), cap_all,
                                    cost=len(word))])
    auto.run_simulated(total_cores=2.0)

    # synchronous: g capitalizes each new letter exactly once
    b_f2, b_g2 = VersionedBuffer("F"), VersionedBuffer("G")
    channel = UpdateChannel("F")

    def cap_update(acc, piece):
        work_done["sync"] += len(piece)
        return acc + piece.upper()

    auto = AnytimeAutomaton(
        [Letters(b_f2, emit_to=channel),
         SynchronousStage("g", b_g2, channel, initial_fn=lambda: "",
                          update_fn=cap_update,
                          update_cost=lambda x: float(len(x)),
                          precise_fn=lambda fv: fv.upper(),
                          precise_cost=float(len(word)))])
    result = auto.run_simulated(total_cores=2.0)

    print(f"word: {word!r} -> "
          f"{result.timeline.final_record('G').value!r}")
    print(f"letters capitalized, asynchronous pipeline: "
          f"{work_done['async']} (re-processes the growing prefix)")
    print(f"letters capitalized, synchronous pipeline:  "
          f"{work_done['sync']} (each letter exactly once)")


if __name__ == "__main__":
    figure10()
    figures8and9()
