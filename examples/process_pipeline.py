#!/usr/bin/env python3
"""Run one automaton on all three execution backends and compare.

The simulated executor is the evaluation yardstick (deterministic
virtual time); the threaded executor runs on real threads but Python's
GIL serializes the numeric kernels; the process executor forks one
worker per stage and moves ndarray versions through shared-memory slab
rings, so stages truly overlap.  All three interpret the *same* command
protocol, so the final outputs are bit-identical — only the clock
differs.

This example runs the 2D convolution app on each backend, checks the
outputs agree with the precise reference, and prints each wall-clock
backend's time to reach 90% of the final SNR.  On a single-core
machine the process backend only pays fork and IPC overhead; give it
>= 4 cores to see it pull ahead.

Run:  python examples/process_pipeline.py
"""

import math
import time

from repro import scene_image
from repro.apps.conv2d import build_conv2d_automaton, conv2d_precise
from repro.metrics.snr import snr_db

SIZE = 128


def t90(records, reference) -> float | None:
    """Wall time of the first version at 90% of the best finite SNR."""
    snrs = [snr_db(r.value, reference) for r in records]
    finite = [s for s in snrs if math.isfinite(s)]
    if not finite:
        return None
    target = 0.9 * max(finite)
    return next(r.time for r, s in zip(records, snrs) if s >= target)


def main() -> None:
    image = scene_image(SIZE, seed=0)
    reference = conv2d_precise(image)

    print(f"2dconv at {SIZE}x{SIZE}, three backends\n")

    sim = build_conv2d_automaton(image)
    result = sim.run_simulated(total_cores=32.0)
    records = result.output_records(sim.terminal_buffer_name)
    print(f"  simulated  {len(records):>3} versions, "
          f"{result.duration:.1f} virtual time units")

    for name in ("threaded", "process"):
        automaton = build_conv2d_automaton(image)
        run = (automaton.run_threaded if name == "threaded"
               else automaton.run_processes)
        start = time.perf_counter()
        result = run(timeout_s=300.0)
        wall = time.perf_counter() - start
        records = result.output_records(automaton.terminal_buffer_name)
        final_snr = snr_db(records[-1].value, reference)
        assert math.isinf(final_snr), "must reach the precise output"
        reach = t90(records, reference)
        print(f"  {name:<9}  {len(records):>3} versions, "
              f"{wall:.3f}s wall, 90%-SNR at {reach:.3f}s")

    print("\nfinal outputs are bit-identical on every backend; only "
          "the clock differs.")


if __name__ == "__main__":
    main()
