#!/usr/bin/env python3
"""The paper's motivating scenario: anytime search.

"Imagine typing a search engine query and instead of pressing the enter
key, you hold it based on the desired amount of precision in the search."

This example runs an anytime top-10 search over a synthetic corpus and
prints the result set as it sharpens — each row is a complete, valid
answer; holding longer only improves recall, and releasing at any moment
costs nothing.

Run:  python examples/hold_the_enter_key.py
"""

import numpy as np

from repro.apps.search import (build_search_automaton, make_corpus,
                               recall_at_k, search_precise)

N_DOCS = 8192
K = 10


def main() -> None:
    corpus = make_corpus(n_docs=N_DOCS, n_terms=64, seed=0)
    rng = np.random.default_rng(42)
    query = rng.dirichlet(np.ones(corpus.n_terms) * 0.3)
    reference = search_precise(corpus, query, k=K)

    automaton = build_search_automaton(corpus, query, k=K, chunks=16)
    result = automaton.run_simulated(total_cores=32)
    baseline = automaton.baseline_duration(32)

    print(f"query over {N_DOCS} documents, top-{K}; "
          f"LFSR-sampled anytime reduction\n")
    print(f"{'held for':>9} {'docs seen':>10} {'recall':>7}  top hits")
    records = result.output_records("hits")
    for i, rec in enumerate(records):
        docs_seen = (i + 1) * N_DOCS // len(records)
        recall = recall_at_k(rec.value, reference)
        ids = rec.value[:4, 0].astype(int).tolist()
        more = "..." if len(rec.value) > 4 else ""
        print(f"{rec.time / baseline:>8.2f}x {docs_seen:>10} "
              f"{recall:>6.0%}  {ids}{more}")
    print("\nevery row is a complete result set; the final one is the "
          "exact top-10")
    print("release the key whenever the hits look right — no cleanup, "
          "no re-run")


if __name__ == "__main__":
    main()
