"""Slot-allocation policies for the anytime server.

The server owns the mechanism (admission, slot grants, quantum
preemption, starvation guard); a :class:`ServePolicy` owns only the two
decisions that differentiate schedulers:

* :meth:`ServePolicy.rank_ready` — among runnable sessions (queued or
  preempted), who gets the next free slot;
* :meth:`ServePolicy.pick_victim` — among running sessions past their
  quantum, who yields it.

:class:`FairSharePolicy` is round-robin in arrival/ready order.
:class:`MarginalGainPolicy` is the quality-aware allocator the paper's
diminishing-returns curves motivate: a calibrated runtime-accuracy
profile (:class:`~repro.metrics.profiles.RuntimeAccuracyProfile`) gives
each request's expected accuracy *slope* at its current run time, so the
server keeps slots on the requests that are still climbing steeply and
preempts the ones grinding out the last fractions of a dB — a request
that already met its target has marginal gain zero by definition.
"""

from __future__ import annotations

import math
import os
from typing import TYPE_CHECKING, Sequence

from ..metrics.profiles import RuntimeAccuracyProfile

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .session import Session

__all__ = ["ServePolicy", "FairSharePolicy", "MarginalGainPolicy"]


class ServePolicy:
    """Base policy: FIFO grants, longest-running victim."""

    name = "fifo"

    def rank_ready(self, ready: Sequence["Session"],
                   now: float) -> list["Session"]:
        """Runnable sessions, best-first (the server grants from the
        front).  Default: who has waited longest."""
        return sorted(ready, key=lambda s: s._ready_since)

    def pick_victim(self, candidates: Sequence["Session"],
                    ready: Sequence["Session"],
                    now: float) -> "Session | None":
        """Among running sessions past their quantum, who to pause so a
        ready session can run.  None = preempt nobody this tick."""
        if not candidates:
            return None
        return max(candidates, key=lambda s: now - (s._dispatched_at or now))


class FairSharePolicy(ServePolicy):
    """Round-robin: grant to the longest-waiting, preempt the
    longest-running.  Every request makes progress at the same cadence
    regardless of how its accuracy curve looks."""

    name = "fair"


class MarginalGainPolicy(ServePolicy):
    """Allocate slots by expected accuracy gain per second of slot time.

    Parameters
    ----------
    profile:
        Calibrated runtime-accuracy curve for the served application
        (normalized runtime → dB).  Requests are assumed homogeneous
        enough that one curve ranks them; heterogeneous fleets can run
        one server per application class.
    baseline_wall_s:
        Wall seconds corresponding to normalized runtime 1.0 on this
        machine (e.g. a measured solo precise run), mapping a session's
        accumulated slot time onto the profile's x axis.
    horizon_s:
        Lookahead window for the finite-difference slope.
    profile_path:
        Optional JSON file the profile persists to, so calibration
        survives server restarts: :class:`~repro.serve.server.
        AnytimeServer` calls :meth:`load_profile` at ``start()`` (a
        previously saved curve replaces the constructor's) and
        :meth:`save_profile` at ``shutdown()``.
    """

    name = "gain"

    def __init__(self, profile: RuntimeAccuracyProfile,
                 baseline_wall_s: float,
                 horizon_s: float = 0.05,
                 profile_path: str | None = None) -> None:
        if baseline_wall_s <= 0:
            raise ValueError("baseline_wall_s must be positive")
        if horizon_s <= 0:
            raise ValueError("horizon_s must be positive")
        if not profile.points:
            raise ValueError("profile has no points")
        self.baseline_wall_s = baseline_wall_s
        self.horizon_s = horizon_s
        self.profile_path = profile_path
        self._set_profile(profile)

    def _set_profile(self, profile: RuntimeAccuracyProfile) -> None:
        self.profile = profile
        finite = [p.snr_db for p in profile.points
                  if math.isfinite(p.snr_db)]
        # Cap exact-match infinities so slopes stay comparable: reaching
        # the precise output is worth a fixed bonus over the best finite
        # accuracy the curve records.
        self._cap = (max(finite) if finite else 0.0) + 20.0
        self._floor = min(finite) if finite else 0.0
        self._points = [(p.runtime, min(p.snr_db, self._cap))
                        for p in profile.points]

    def load_profile(self) -> bool:
        """Replace the active curve with the one saved at
        ``profile_path``; True if a non-empty saved profile was
        adopted.  Called by the server at start."""
        if self.profile_path is None \
                or not os.path.exists(self.profile_path):
            return False
        profile = RuntimeAccuracyProfile.load(self.profile_path)
        if not profile.points:
            return False
        self._set_profile(profile)
        return True

    def save_profile(self) -> bool:
        """Persist the active curve to ``profile_path``; True if
        written.  Called by the server at shutdown."""
        if self.profile_path is None:
            return False
        self.profile.save(self.profile_path)
        return True

    def _snr_at(self, t_norm: float) -> float:
        best = self._floor
        for runtime, snr in self._points:
            if runtime <= t_norm:
                best = snr
            else:
                break
        return best

    def gain_rate(self, session: "Session", now: float) -> float:
        """Expected dB/s of granting this session the next horizon,
        weighted by its SLO priority.  Zero once its target is met."""
        if session.target_met():
            return 0.0
        t_norm = session.run_seconds(now) / self.baseline_wall_s
        h_norm = self.horizon_s / self.baseline_wall_s
        gain_db = self._snr_at(t_norm + h_norm) - self._snr_at(t_norm)
        if gain_db <= 0.0 and t_norm < self._points[0][0]:
            # Before the first profiled write every second still buys
            # the climb to that first approximation; rank by how close
            # it is rather than flat zero.
            gain_db = self._cap - self._floor
        return (gain_db / self.horizon_s) * session.slo.priority

    def rank_ready(self, ready: Sequence["Session"],
                   now: float) -> list["Session"]:
        return sorted(
            ready,
            key=lambda s: (-self.gain_rate(s, now), s._ready_since))

    def pick_victim(self, candidates: Sequence["Session"],
                    ready: Sequence["Session"],
                    now: float) -> "Session | None":
        if not candidates:
            return None
        best_ready = max((self.gain_rate(s, now) for s in ready),
                         default=0.0)
        victim = min(candidates, key=lambda s: self.gain_rate(s, now))
        # Only preempt when the swap actually raises aggregate slope —
        # pausing a steep climber to run an equally steep one just burns
        # pause/resume latency.
        if self.gain_rate(victim, now) < best_ready:
            return victim
        return None
