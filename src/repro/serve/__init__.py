"""The anytime serving layer (``repro.serve``).

Multiplexes many concurrent automaton runs over a bounded pool of
executor slots, with deadline/quality SLOs, bounded-queue admission
control (backpressure + load shedding), and quality-aware preemptive
scheduling built on the model's interruptibility guarantee: pausing or
stopping a request at any moment leaves a valid approximation in its
output buffer, so slots can chase marginal accuracy instead of
babysitting stragglers.

Entry points::

    from repro.serve import AnytimeServer, SLO

    with AnytimeServer(slots=4, queue_limit=16) as server:
        session = server.submit(lambda: build_app(x),
                                SLO(deadline_s=0.5, target_db=30.0),
                                metric=quality)
        for snap in session.stream():
            ...                       # streaming refinement
        outcome = session.result()    # always a valid answer
"""

from .scheduler import FairSharePolicy, MarginalGainPolicy, ServePolicy
from .server import AnytimeServer, shutdown_all_servers
from .session import ServeResult, Session, SessionState, TERMINAL_STATES
from .slo import SLO
from .workload import percentile, run_open_loop, summarize

__all__ = [
    "AnytimeServer", "shutdown_all_servers",
    "FairSharePolicy", "MarginalGainPolicy", "ServePolicy",
    "ServeResult", "Session", "SessionState", "TERMINAL_STATES",
    "SLO",
    "percentile", "run_open_loop", "summarize",
]
