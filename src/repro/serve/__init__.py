"""The anytime serving layer (``repro.serve``).

Multiplexes many concurrent automaton runs over a bounded pool of
executor slots, with deadline/quality SLOs, bounded-queue admission
control (backpressure + load shedding), and quality-aware preemptive
scheduling built on the model's interruptibility guarantee: pausing or
stopping a request at any moment leaves a valid approximation in its
output buffer, so slots can chase marginal accuracy instead of
babysitting stragglers.

Entry points::

    from repro.serve import AnytimeServer, SLO

    with AnytimeServer(slots=4, queue_limit=16) as server:
        session = server.submit(lambda: build_app(x),
                                SLO(deadline_s=0.5, target_db=30.0),
                                metric=quality)
        for snap in session.stream():
            ...                       # streaming refinement
        outcome = session.result()    # always a valid answer

Scale-out: :class:`~repro.serve.router.FleetRouter` shards requests by
content-addressed identity across N worker processes (each one an
``AnytimeServer``), where same-key concurrent requests coalesce onto a
single shared run::

    from repro.serve import FleetRouter, summarize_fleet

    with FleetRouter(workers=4) as fleet:
        requests = [fleet.submit("2dconv", size=32, seed=i % 4,
                                 slo={"deadline_s": 0.5})
                    for i in range(64)]
        fleet.drain(timeout_s=60.0)
        print(summarize_fleet(requests))

Cross-host: the same router rides TCP instead of fork+socketpair —
launch workers with ``repro serve-worker --listen host:port`` and pass
``FleetRouter(endpoints=["hostA:9701", "hostB:9701"])`` (see
:mod:`repro.serve.transport`).  External clients connect through the
asyncio front end (:mod:`repro.serve.aiofront`, imported lazily —
``from repro.serve.aiofront import AioFrontend, AioFleetClient``).
Sealed finals are shared fleet-wide through the router's bounded TTL
memo, so duplicate keys are answered without recompute wherever they
land.
"""

from .digest import input_digest, request_key
from .fleet import (FrameError, MAX_FRAME, spec_key, value_digest,
                    worker_main)
from .router import FleetRequest, FleetRouter, summarize_fleet
from .transport import (ForkTransport, TcpTransport, parse_endpoint,
                        serve_worker_listener, spawn_local_tcp_worker)
from .scheduler import FairSharePolicy, MarginalGainPolicy, ServePolicy
from .server import AnytimeServer, shutdown_all_servers
from .session import ServeResult, Session, SessionState, TERMINAL_STATES
from .slo import SLO
from .workload import percentile, run_open_loop, summarize

__all__ = [
    "AnytimeServer", "shutdown_all_servers",
    "FairSharePolicy", "MarginalGainPolicy", "ServePolicy",
    "FleetRequest", "FleetRouter", "summarize_fleet",
    "ServeResult", "Session", "SessionState", "TERMINAL_STATES",
    "SLO",
    "input_digest", "request_key", "spec_key", "value_digest",
    "percentile", "run_open_loop", "summarize",
    "FrameError", "MAX_FRAME", "worker_main",
    "ForkTransport", "TcpTransport", "parse_endpoint",
    "serve_worker_listener", "spawn_local_tcp_worker",
]
