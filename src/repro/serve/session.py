"""Request sessions: the client's view of one automaton run being served.

A :class:`Session` is returned by ``AnytimeServer.submit`` immediately —
before the request is admitted, sometimes before it will ever run (load
shedding).  The client can watch it refine (:meth:`snapshot`,
:meth:`stream`), interrupt it (:meth:`cancel`) and collect the outcome
(:meth:`result`).  Every read is anytime-valid: whatever state the
request is in, the snapshot is either empty (not started) or a valid
approximation published by an atomic buffer write (Property 3).

State machine::

    QUEUED ──admit──> RUNNING <──resume/preempt──> PREEMPTED
      │                  │  \──suspend──> RESUMABLE ──restore──> RUNNING
      │ cancel/shed      │ finish / deadline / target / cancel / fault
      v                  v
    CANCELLED|SHED    COMPLETED | CANCELLED | FAILED

``SHED`` is deliberately distinct from ``CANCELLED``: a shed request was
refused by admission control (the server's choice, under overload); a
cancelled one was withdrawn (the client's choice, or server shutdown).
``RESUMABLE`` only appears on servers with a ``resume_dir``: the run was
checkpointed to disk (:mod:`repro.ckpt`) and its executor released; a
later slot grant restores it from the checkpoint with no lost progress,
and a would-be-shed submission parks in this state instead of dying.
"""

from __future__ import annotations

import enum
import threading
import time as _time
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator

from ..core.buffer import Snapshot
from ..core.executor import RunHandle, ThreadedResult
from .slo import SLO

__all__ = ["Session", "SessionState", "ServeResult", "TERMINAL_STATES"]


class SessionState(enum.Enum):
    QUEUED = "queued"          # admitted, waiting for a slot
    RUNNING = "running"        # holds an executor slot
    PREEMPTED = "preempted"    # launched, paused by the scheduler
    RESUMABLE = "resumable"    # suspended to an on-disk checkpoint
    COMPLETED = "completed"    # finished (precise, SLO-stopped, degraded)
    CANCELLED = "cancelled"    # withdrawn by the client or shutdown
    SHED = "shed"              # refused by admission control
    FAILED = "failed"          # produced no output version at all


TERMINAL_STATES = frozenset({
    SessionState.COMPLETED, SessionState.CANCELLED,
    SessionState.SHED, SessionState.FAILED,
})


@dataclass(frozen=True)
class ServeResult:
    """Terminal outcome of one request.

    ``latency_s`` is submission-to-terminal wall time (what the client
    experienced); ``queue_s`` the portion spent waiting for admission
    or a slot before first running.  ``snr_db`` is the quality of the
    final snapshot by the request's metric (None without a metric or
    output).  ``interrupted`` means the run was stopped before its
    natural end (deadline, target reached, preempt-to-finish, cancel);
    ``slo_met`` whether every stated objective held.
    """

    state: SessionState
    snapshot: Snapshot
    latency_s: float
    queue_s: float
    snr_db: float | None = None
    slo_met: bool = False
    interrupted: bool = False
    degraded: bool = False
    preemptions: int = 0
    errors: tuple[str, ...] = ()
    run_result: ThreadedResult | None = None
    #: served by attaching to another request's run (same key)
    coalesced: bool = False
    #: served straight from the recently-sealed-results memo
    memo_hit: bool = False
    #: how many times the run was suspended to a checkpoint and restored
    restores: int = 0


@dataclass
class Session:
    """One submitted request (constructed by the server, not directly).

    Client-safe methods: :meth:`snapshot`, :meth:`stream`,
    :meth:`cancel`, :meth:`result`, :attr:`state`, :meth:`wait`.
    Underscored fields are owned by the server's scheduler thread.
    """

    sid: int
    name: str
    builder: Callable[[], Any]
    slo: SLO
    metric: Callable[[Any], float] | None
    submitted_at: float
    faults: Any = None
    #: coalescing key (see :mod:`repro.serve.digest`); None = never share
    key: str | None = None
    #: per-request trace sink; overrides the server-wide sink for this
    #: request's own runs (a conformance Checker rides here)
    trace: Any = None

    # -- scheduler-owned state ------------------------------------------
    _state: SessionState = SessionState.QUEUED
    _handle: RunHandle | None = None
    _result: ServeResult | None = None
    _done: threading.Event = field(default_factory=threading.Event)
    _cancel_requested: bool = False
    _deadline_at: float | None = None
    _first_run_at: float | None = None
    _dispatched_at: float | None = None   # set while holding a slot
    _ready_since: float = 0.0             # enqueue / preempt timestamp
    _run_s: float = 0.0                   # accumulated slot time
    _preemptions: int = 0
    _last_snr: float | None = None
    _last_version: int = 0
    # -- coalescing links (scheduler-owned) -----------------------------
    _primary: "Session | None" = None     # set on attached followers
    _followers: "list[Session]" = field(default_factory=list)
    _coalesced: bool = False              # ever served as a follower
    _memo_hit: bool = False
    # -- suspend-to-disk state (scheduler-owned) ------------------------
    _ckpt_path: str | None = None         # checkpoint of a suspended run
    _parked_snapshot: Snapshot | None = None  # pinned at suspend time
    _restores: int = 0                    # restored-from-checkpoint count

    def __post_init__(self) -> None:
        self._deadline_at = self.slo.deadline_at(self.submitted_at)
        self._ready_since = self.submitted_at

    # -- client API ------------------------------------------------------

    @property
    def state(self) -> SessionState:
        return self._state

    @property
    def done(self) -> bool:
        return self._done.is_set()

    def wait(self, timeout_s: float | None = None) -> bool:
        """Block until the session reaches a terminal state."""
        return self._done.wait(timeout=timeout_s)

    def snapshot(self) -> Snapshot:
        """The newest output version right now (empty before any)."""
        result = self._result
        if result is not None:
            return result.snapshot
        handle = self._handle
        if handle is not None:
            return handle.snapshot()
        parked = self._parked_snapshot
        if parked is not None:
            # suspended to disk: the newest sealed version at suspend
            # time remains a valid approximation of this answer
            return parked
        primary = self._primary
        if primary is not None:
            # attached follower: the shared run's output is this
            # request's output (identical work, Property 3 makes any
            # sealed version a valid answer for every subscriber)
            return primary.snapshot()
        return Snapshot(self.name, None, 0, False)

    def stream(self, poll_s: float = 0.005,
               timeout_s: float | None = None) -> Iterator[Snapshot]:
        """Yield each new output version as it lands (streaming
        refinement), ending with the final snapshot at a terminal
        state.  ``timeout_s`` bounds the total wait."""
        deadline = (None if timeout_s is None
                    else _time.monotonic() + timeout_s)
        seen = 0
        while True:
            snap = self.snapshot()
            if snap.version > seen:
                seen = snap.version
                yield snap
            if self.done and self.snapshot().version <= seen:
                return
            if deadline is not None and _time.monotonic() >= deadline:
                return
            self._done.wait(timeout=poll_s)

    def cancel(self) -> None:
        """Withdraw the request (idempotent; honored within a tick)."""
        self._cancel_requested = True

    def result(self, timeout_s: float | None = None) -> ServeResult:
        """Block for the terminal outcome; TimeoutError on timeout."""
        if not self._done.wait(timeout=timeout_s):
            raise TimeoutError(
                f"request {self.name!r} not terminal after "
                f"{timeout_s}s (state={self._state.value})")
        assert self._result is not None
        return self._result

    # -- scheduler helpers ----------------------------------------------

    def run_seconds(self, now: float) -> float:
        """Total wall time spent holding a slot, up to ``now``."""
        extra = (now - self._dispatched_at
                 if self._dispatched_at is not None else 0.0)
        return self._run_s + extra

    def target_met(self) -> bool:
        return (self.slo.target_db is not None
                and self._last_snr is not None
                and self._last_snr >= self.slo.target_db)

    def deadline_passed(self, now: float) -> bool:
        return self._deadline_at is not None and now >= self._deadline_at

    def _terminalize(self, state: SessionState, snapshot: Snapshot,
                     now: float, snr_db: float | None = None,
                     interrupted: bool = False, degraded: bool = False,
                     errors: tuple[str, ...] = (),
                     run_result: ThreadedResult | None = None) -> None:
        latency = now - self.submitted_at
        queue_s = ((self._first_run_at - self.submitted_at)
                   if self._first_run_at is not None else latency)
        slo_met = state is SessionState.COMPLETED
        if self.slo.deadline_s is not None:
            slo_met = slo_met and latency <= self.slo.deadline_s * 1.25
        if self.slo.target_db is not None and self.metric is not None:
            slo_met = (slo_met and snr_db is not None
                       and (snr_db >= self.slo.target_db
                            or snapshot.final))
        self._state = state
        self._result = ServeResult(
            state=state, snapshot=snapshot, latency_s=latency,
            queue_s=queue_s, snr_db=snr_db, slo_met=slo_met,
            interrupted=interrupted, degraded=degraded,
            preemptions=self._preemptions, errors=errors,
            run_result=run_result, coalesced=self._coalesced,
            memo_hit=self._memo_hit, restores=self._restores)
        self._primary = None
        self._done.set()
