"""Serving benchmark: latency/throughput/quality vs offered load.

Drives a synthetic open-loop workload (one evaluation app, identical
inputs, per-request SLOs) against an :class:`AnytimeServer` at a sweep
of offered loads, and reports — per load — p50/p99 latency, goodput,
shed rate, SLO attainment and mean SNR-at-interrupt.  The result dict
is what ``repro bench serve`` writes to ``BENCH_serve.json``.

Calibration comes first: one simulated run yields the app's
runtime-accuracy profile (for the marginal-gain policy) and one solo
threaded run yields ``baseline_wall_s`` (mapping wall seconds onto the
profile's normalized axis).
"""

from __future__ import annotations

import math
from typing import Any, Callable

from ..apps.registry import get_app
from ..metrics.profiles import RuntimeAccuracyProfile
from .scheduler import FairSharePolicy, MarginalGainPolicy, ServePolicy
from .server import AnytimeServer
from .slo import SLO
from .workload import run_open_loop, summarize

__all__ = ["calibrate_app", "run_serve_bench"]


def calibrate_app(app: str = "2dconv", size: int = 32, seed: int = 7,
                  total_cores: float = 8.0,
                  ) -> dict[str, Any]:
    """Calibrate one app for serving.

    Returns ``builder`` (fresh-automaton thunk), ``metric`` (value →
    dB against the fixed reference), ``profile`` (simulated
    runtime-accuracy curve) and ``baseline_wall_s`` (measured solo
    threaded wall time — normalized runtime 1.0 on this machine).
    """
    spec = get_app(app)
    image = spec.make_input(size, seed)
    reference = (image if spec.reference_kind == "input"
                 else spec.reference(image))

    def builder() -> Any:
        return spec.build(image)

    def metric(value: Any) -> float:
        return spec.metric(value, reference)

    calib = builder()
    sim = calib.run_simulated(total_cores=total_cores,
                              schedule=spec.schedule)
    profile = calib.profile(sim, total_cores=total_cores,
                            metric=spec.metric, reference=reference,
                            label=f"{app} serve calibration")

    solo = builder()
    run = solo.run_threaded()
    baseline_wall_s = max(run.duration, 1e-6)
    return {
        "app": app, "size": size, "builder": builder, "metric": metric,
        "profile": profile, "baseline_wall_s": baseline_wall_s,
    }


def _make_policy(name: str, profile: RuntimeAccuracyProfile,
                 baseline_wall_s: float) -> ServePolicy:
    if name == "gain":
        return MarginalGainPolicy(profile, baseline_wall_s)
    if name in ("fair", "fifo"):
        return FairSharePolicy()
    raise ValueError(f"unknown serve policy {name!r}; "
                     f"pick from ('fair', 'gain')")


def run_serve_bench(app: str = "2dconv",
                    loads: tuple[float, ...] | list[float] = (),
                    n_requests: int = 24,
                    slots: int = 4,
                    queue_limit: int = 8,
                    size: int = 32,
                    policy: str = "fair",
                    executor: str = "threaded",
                    deadline_factor: float = 8.0,
                    target_db: float | None = None,
                    seed: int = 0,
                    wait_s: float = 0.0,
                    quantum_s: float = 0.02,
                    progress: Callable[[str], None] | None = None,
                    ) -> dict[str, Any]:
    """Sweep offered load; return the ``BENCH_serve.json`` payload.

    ``loads`` are offered arrival rates in requests/s; empty = a
    default sweep derived from the measured per-request service time
    (under-, near-, and over-saturation).  Each request carries a
    deadline of ``deadline_factor * baseline_wall_s`` (queue wait
    included) and, optionally, a ``target_db`` quality objective.
    """
    say = progress or (lambda _msg: None)
    say(f"calibrating {app} (size={size}) ...")
    calib = calibrate_app(app=app, size=size, seed=seed + 7)
    baseline = calib["baseline_wall_s"]
    if not loads:
        # Service capacity ≈ slots / service_time; sweep around it.
        capacity = slots / baseline
        loads = (0.5 * capacity, 1.5 * capacity, 4.0 * capacity)
    say(f"baseline_wall_s={baseline:.4f}s -> "
        f"loads {[round(x, 2) for x in loads]} rps")

    slo = SLO(deadline_s=deadline_factor * baseline, target_db=target_db)
    sweep: list[dict[str, Any]] = []
    for load in loads:
        server = AnytimeServer(
            slots=slots, queue_limit=queue_limit, executor=executor,
            policy=_make_policy(policy, calib["profile"], baseline),
            quantum_s=quantum_s)
        with server:
            sessions = run_open_loop(
                server, lambda i: calib["builder"], n_requests,
                rate_hz=load, slo=slo,
                metric=lambda i: calib["metric"],
                wait_s=wait_s, seed=seed,
                name_prefix=f"load{load:.0f}")
            server.drain(timeout_s=max(120.0,
                                       4 * n_requests * baseline))
        summary = summarize(sessions)
        stats = server.stats()
        sweep.append({
            "offered_rps": load,
            **summary,
            "preempt_count": stats["preemptions"],
            "resume_count": stats["resumes"],
        })
        say(f"load {load:.2f} rps: "
            f"p50={summary['latency_p50_s']:.3f}s "
            f"p99={summary['latency_p99_s']:.3f}s "
            f"goodput={summary['throughput_rps']:.2f} rps "
            f"shed={summary['shed']}")

    final_snr = calib["profile"].final_snr_db
    return {
        "bench": "serve",
        "app": app,
        "size": size,
        "slots": slots,
        "queue_limit": queue_limit,
        "n_requests": n_requests,
        "policy": policy,
        "executor": executor,
        "deadline_s": slo.deadline_s,
        "target_db": target_db,
        "baseline_wall_s": baseline,
        "calibration_points": len(calib["profile"]),
        "calibration_final_snr_db": (None if math.isinf(final_snr)
                                     else final_snr),
        "sweep": sweep,
    }
