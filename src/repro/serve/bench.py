"""Serving benchmark: latency/throughput/quality vs offered load.

Drives a synthetic open-loop workload (one evaluation app, identical
inputs, per-request SLOs) against an :class:`AnytimeServer` at a sweep
of offered loads, and reports — per load — p50/p99 latency, goodput,
shed rate, SLO attainment and mean SNR-at-interrupt.  The result dict
is what ``repro bench serve`` writes to ``BENCH_serve.json``.

Calibration comes first: one simulated run yields the app's
runtime-accuracy profile (for the marginal-gain policy) and one solo
threaded run yields ``baseline_wall_s`` (mapping wall seconds onto the
profile's normalized axis).
"""

from __future__ import annotations

import math
import os
import time as _time
from typing import Any, Callable

from ..apps.registry import get_app
from ..metrics.profiles import RuntimeAccuracyProfile
from .scheduler import FairSharePolicy, MarginalGainPolicy, ServePolicy
from .server import AnytimeServer
from .slo import SLO
from .workload import run_open_loop, summarize

__all__ = ["calibrate_app", "run_serve_bench", "run_fleet_bench",
           "compare_serve_baseline"]


def calibrate_app(app: str = "2dconv", size: int = 32, seed: int = 7,
                  total_cores: float = 8.0,
                  ) -> dict[str, Any]:
    """Calibrate one app for serving.

    Returns ``builder`` (fresh-automaton thunk), ``metric`` (value →
    dB against the fixed reference), ``profile`` (simulated
    runtime-accuracy curve) and ``baseline_wall_s`` (measured solo
    threaded wall time — normalized runtime 1.0 on this machine).
    """
    spec = get_app(app)
    image = spec.make_input(size, seed)
    reference = (image if spec.reference_kind == "input"
                 else spec.reference(image))

    def builder() -> Any:
        return spec.build(image)

    def metric(value: Any) -> float:
        return spec.metric(value, reference)

    calib = builder()
    sim = calib.run_simulated(total_cores=total_cores,
                              schedule=spec.schedule)
    profile = calib.profile(sim, total_cores=total_cores,
                            metric=spec.metric, reference=reference,
                            label=f"{app} serve calibration")

    solo = builder()
    run = solo.run_threaded()
    baseline_wall_s = max(run.duration, 1e-6)
    return {
        "app": app, "size": size, "builder": builder, "metric": metric,
        "profile": profile, "baseline_wall_s": baseline_wall_s,
    }


def _make_policy(name: str, profile: RuntimeAccuracyProfile,
                 baseline_wall_s: float) -> ServePolicy:
    if name == "gain":
        return MarginalGainPolicy(profile, baseline_wall_s)
    if name in ("fair", "fifo"):
        return FairSharePolicy()
    raise ValueError(f"unknown serve policy {name!r}; "
                     f"pick from ('fair', 'gain')")


def run_serve_bench(app: str = "2dconv",
                    loads: tuple[float, ...] | list[float] = (),
                    n_requests: int = 24,
                    slots: int = 4,
                    queue_limit: int = 8,
                    size: int = 32,
                    policy: str = "fair",
                    executor: str = "threaded",
                    deadline_factor: float = 8.0,
                    target_db: float | None = None,
                    seed: int = 0,
                    wait_s: float = 0.0,
                    quantum_s: float = 0.02,
                    progress: Callable[[str], None] | None = None,
                    ) -> dict[str, Any]:
    """Sweep offered load; return the ``BENCH_serve.json`` payload.

    ``loads`` are offered arrival rates in requests/s; empty = a
    default sweep derived from the measured per-request service time
    (under-, near-, and over-saturation).  Each request carries a
    deadline of ``deadline_factor * baseline_wall_s`` (queue wait
    included) and, optionally, a ``target_db`` quality objective.
    """
    say = progress or (lambda _msg: None)
    say(f"calibrating {app} (size={size}) ...")
    calib = calibrate_app(app=app, size=size, seed=seed + 7)
    baseline = calib["baseline_wall_s"]
    if not loads:
        # Service capacity ≈ slots / service_time; sweep around it.
        capacity = slots / baseline
        loads = (0.5 * capacity, 1.5 * capacity, 4.0 * capacity)
    say(f"baseline_wall_s={baseline:.4f}s -> "
        f"loads {[round(x, 2) for x in loads]} rps")

    slo = SLO(deadline_s=deadline_factor * baseline, target_db=target_db)
    sweep: list[dict[str, Any]] = []
    for load in loads:
        server = AnytimeServer(
            slots=slots, queue_limit=queue_limit, executor=executor,
            policy=_make_policy(policy, calib["profile"], baseline),
            quantum_s=quantum_s)
        with server:
            sessions = run_open_loop(
                server, lambda i: calib["builder"], n_requests,
                rate_hz=load, slo=slo,
                metric=lambda i: calib["metric"],
                wait_s=wait_s, seed=seed,
                name_prefix=f"load{load:.0f}")
            server.drain(timeout_s=max(120.0,
                                       4 * n_requests * baseline))
        summary = summarize(sessions)
        stats = server.stats()
        sweep.append({
            "offered_rps": load,
            **summary,
            "preempt_count": stats["preemptions"],
            "resume_count": stats["resumes"],
        })
        say(f"load {load:.2f} rps: "
            f"p50={summary['latency_p50_s']:.3f}s "
            f"p99={summary['latency_p99_s']:.3f}s "
            f"goodput={summary['throughput_rps']:.2f} rps "
            f"shed={summary['shed']}")

    final_snr = calib["profile"].final_snr_db
    return {
        "bench": "serve",
        "app": app,
        "size": size,
        "cpu_count": os.cpu_count(),
        "slots": slots,
        "queue_limit": queue_limit,
        "n_requests": n_requests,
        "policy": policy,
        "executor": executor,
        "deadline_s": slo.deadline_s,
        "target_db": target_db,
        "baseline_wall_s": baseline,
        "calibration_points": len(calib["profile"]),
        "calibration_final_snr_db": (None if math.isinf(final_snr)
                                     else final_snr),
        "sweep": sweep,
    }


def _run_fleet_leg(workers: int, worker_config: dict[str, Any],
                   specs: list[tuple[str, int, int]],
                   slo: dict[str, Any],
                   drain_timeout_s: float,
                   endpoints: list[tuple[str, int]] | None = None,
                   ) -> dict[str, Any]:
    """One fleet workload: burst-submit ``specs``, drain, summarize.

    With ``endpoints`` the router connects to externally launched TCP
    workers instead of forking its own; either way the summary gains a
    ``digests`` map (seed → sorted final value digests) so transport
    legs can be compared bit-exactly.
    """
    from .router import FleetRouter, summarize_fleet

    with FleetRouter(workers=workers, endpoints=endpoints,
                     worker_config=worker_config) as fleet:
        started = _time.monotonic()
        requests = [fleet.submit(app, size=size, seed=seed, slo=slo)
                    for app, size, seed in specs]
        if not fleet.drain(timeout_s=drain_timeout_s):
            raise RuntimeError(f"fleet({workers}) did not drain within "
                               f"{drain_timeout_s}s")
        wall_s = _time.monotonic() - started
        summary = summarize_fleet(requests, wall_s=wall_s)
        summary["router"] = dict(fleet.counters)
        digests: dict[str, set[str]] = {}
        for request in requests:
            if not request.done:
                continue
            out = request.result(timeout_s=0.0)
            if out["state"] == "completed" and out.get("final") \
                    and out.get("value_digest"):
                digests.setdefault(str(request.seed), set()).add(
                    out["value_digest"])
        summary["digests"] = {seed: sorted(seen)
                              for seed, seen in sorted(digests.items())}
    return summary


def run_fleet_bench(app: str = "2dconv",
                    size: int = 24,
                    n_requests: int = 24,
                    workers: tuple[int, ...] | list[int] = (1, 2),
                    slots: int = 2,
                    distinct: int = 6,
                    deadline_factor: float = 40.0,
                    executor: str = "threaded",
                    seed: int = 0,
                    progress: Callable[[str], None] | None = None,
                    ) -> dict[str, Any]:
    """Two fleet experiments; returns the ``BENCH_fleet.json`` payload.

    **Scaling leg** — ``n_requests`` *distinct* specs (no coalescing
    opportunity) burst-submitted at saturation against each fleet size
    in ``workers``; goodput should scale with workers since each worker
    is its own process.

    **Coalescing leg** — the same request count spread over only
    ``distinct`` unique specs (duplicate-heavy), run twice on a 2-worker
    fleet with coalescing on and off; with it on, duplicates share runs
    (``coalesced + memo_hits > 0``) and mean latency drops.

    **Transport leg** — the duplicate-heavy workload again on a
    2-worker localhost *TCP* fleet (the cross-host wire path:
    connect + length-prefixed frames instead of fork + socketpair).
    ``transport.digests_match`` asserts the TCP fleet sealed exactly
    the same per-seed finals as the AF_UNIX coalescing leg, and the
    relative goodput quantifies the TCP tax.
    """
    say = progress or (lambda _msg: None)
    say(f"calibrating {app} (size={size}) ...")
    calib = calibrate_app(app=app, size=size, seed=seed + 7)
    baseline = calib["baseline_wall_s"]
    slo = {"deadline_s": deadline_factor * baseline}
    drain_timeout_s = max(120.0, 6 * n_requests * baseline)
    base_config = {"slots": slots, "queue_limit": max(64, n_requests),
                   "executor": executor}

    scaling: list[dict[str, Any]] = []
    for n in workers:
        specs = [(app, size, seed * 1000 + i) for i in range(n_requests)]
        leg = _run_fleet_leg(n, {**base_config, "coalesce": False},
                             specs, slo, drain_timeout_s)
        leg["workers"] = n
        scaling.append(leg)
        say(f"scaling: {n} worker(s): "
            f"goodput={leg['goodput_rps']:.2f} rps "
            f"p50={leg['latency_p50_s']:.3f}s "
            f"completed={leg['completed']}/{leg['requests']}")
    scaling_ratio = (scaling[-1]["goodput_rps"] / scaling[0]["goodput_rps"]
                     if len(scaling) > 1 and scaling[0]["goodput_rps"] > 0
                     else None)

    dup_specs = [(app, size, seed * 1000 + i % distinct)
                 for i in range(n_requests)]
    coalesce_legs = {}
    for enabled in (True, False):
        leg = _run_fleet_leg(
            2, {**base_config, "coalesce": enabled, "memo_ttl_s": 5.0},
            dup_specs, slo, drain_timeout_s)
        coalesce_legs["on" if enabled else "off"] = leg
        say(f"coalesce={'on' if enabled else 'off'}: "
            f"shared={leg['coalesced']} memo={leg['memo_hits']} "
            f"mean={leg['latency_mean_s']:.3f}s "
            f"goodput={leg['goodput_rps']:.2f} rps")

    from .transport import spawn_local_tcp_worker
    tcp_config = {**base_config, "coalesce": True, "memo_ttl_s": 5.0}
    procs, endpoints = [], []
    try:
        for _ in range(2):
            process, endpoint = spawn_local_tcp_worker(tcp_config)
            procs.append(process)
            endpoints.append(endpoint)
        tcp_leg = _run_fleet_leg(2, tcp_config, dup_specs, slo,
                                 drain_timeout_s, endpoints=endpoints)
    finally:
        for process in procs:
            if process.is_alive():
                process.terminate()
            process.join(timeout=5.0)
    unix_leg = coalesce_legs["on"]
    digests_match = tcp_leg["digests"] == unix_leg["digests"]
    tcp_relative = (tcp_leg["goodput_rps"] / unix_leg["goodput_rps"]
                    if unix_leg["goodput_rps"] > 0 else None)
    say(f"transport=tcp: shared={tcp_leg['coalesced']} "
        f"memo={tcp_leg['memo_hits']} "
        f"goodput={tcp_leg['goodput_rps']:.2f} rps "
        f"({'digests match unix' if digests_match else 'DIGEST MISMATCH'})")

    return {
        "bench": "fleet",
        "app": app,
        "size": size,
        "cpu_count": os.cpu_count(),
        "n_requests": n_requests,
        "slots": slots,
        "distinct": distinct,
        "executor": executor,
        "deadline_s": slo["deadline_s"],
        "baseline_wall_s": baseline,
        "scaling": scaling,
        "scaling_ratio": scaling_ratio,
        "coalescing": coalesce_legs,
        "transport": {
            "tcp": tcp_leg,
            "digests_match": digests_match,
            "tcp_goodput_relative": tcp_relative,
        },
    }


def compare_serve_baseline(fresh: dict[str, Any],
                           baseline: dict[str, Any],
                           tolerance: float = 0.25,
                           wall_tolerance: float = 0.60,
                           ) -> list[str]:
    """Perf-gate comparison for ``BENCH_serve.json``; returns regression
    descriptions (empty = pass).

    The sweep's offered loads are derived from the measured per-request
    service time, so the *protocol* outcomes at each sweep point —
    completions, SLO attainment — are machine-independent and always
    checked (``tolerance`` band).  Raw latency and goodput are only
    meaningful on the same machine class, so those checks
    (``wall_tolerance`` band) apply only when ``cpu_count`` matches the
    baseline.
    """
    problems: list[str] = []
    same_machine = fresh.get("cpu_count") == baseline.get("cpu_count")
    base_sweep = baseline.get("sweep", [])
    fresh_sweep = fresh.get("sweep", [])
    if len(fresh_sweep) < len(base_sweep):
        problems.append(f"sweep shrank: {len(fresh_sweep)} points vs "
                        f"baseline {len(base_sweep)}")
    for i, (base, cur) in enumerate(zip(base_sweep, fresh_sweep)):
        point = f"sweep[{i}]"
        b_done, f_done = base.get("completed", 0), cur.get("completed", 0)
        if f_done < b_done * (1.0 - tolerance):
            problems.append(
                f"{point}: completions regressed {f_done} vs baseline "
                f"{b_done} (tolerance {tolerance:.0%})")
        b_slo, f_slo = base.get("slo_attainment"), cur.get("slo_attainment")
        if isinstance(b_slo, (int, float)) and math.isfinite(b_slo) \
                and isinstance(f_slo, (int, float)) \
                and math.isfinite(f_slo) \
                and f_slo < b_slo * (1.0 - tolerance):
            problems.append(
                f"{point}: SLO attainment fell to {f_slo:.2f} vs "
                f"baseline {b_slo:.2f} (tolerance {tolerance:.0%})")
        if same_machine:
            b_p50, f_p50 = base.get("latency_p50_s"), \
                cur.get("latency_p50_s")
            if isinstance(b_p50, (int, float)) and math.isfinite(b_p50) \
                    and b_p50 > 0 and isinstance(f_p50, (int, float)) \
                    and f_p50 > b_p50 * (1.0 + wall_tolerance):
                problems.append(
                    f"{point}: p50 latency regressed {f_p50:.3f}s vs "
                    f"baseline {b_p50:.3f}s "
                    f"(tolerance {wall_tolerance:.0%})")
            b_tp = base.get("throughput_rps")
            f_tp = cur.get("throughput_rps")
            if isinstance(b_tp, (int, float)) and b_tp > 0 \
                    and isinstance(f_tp, (int, float)) \
                    and f_tp < b_tp * (1.0 - wall_tolerance):
                problems.append(
                    f"{point}: goodput regressed {f_tp:.2f} rps vs "
                    f"baseline {b_tp:.2f} rps "
                    f"(tolerance {wall_tolerance:.0%})")
    return problems
