"""The anytime serving layer: many requests, few slots, every answer valid.

:class:`AnytimeServer` multiplexes concurrent automaton runs over a
bounded pool of executor slots.  It inverts the repo's original control
flow: executors no longer own the run loop — each admitted request is
``launch()``-ed into a :class:`~repro.core.executor.RunHandle` and
becomes a schedulable resource the server can pause, resume, stop and
harvest at any tick.  The anytime properties are what make this serving
model cheap and safe:

* **Preemption is free of bookkeeping.**  Pausing a run needs no
  checkpoint: its output buffer already holds a sealed-on-demand valid
  approximation (Property 3), so a preempted request can be resumed,
  finished early, or abandoned with whatever quality it reached.
* **Deadlines are exact, not best-effort.**  A request stopped at its
  SLO deadline returns its newest output version — degraded, never
  invalid.
* **Quality-aware scheduling has a calibrated currency.**  With a
  :class:`~repro.serve.scheduler.MarginalGainPolicy`, slots flow to the
  requests whose accuracy profile still climbs steeply, and away from
  requests past their target dB.

Lifecycle (all transitions traced as ``server.*`` events)::

    submit ──enqueue──> QUEUED ──admit──> RUNNING ⇄ PREEMPTED
        └──shed (queue full)──> SHED         └──> COMPLETED/…

The scheduler thread ticks every ``tick_s``: it harvests finished and
expired runs, fills free slots from the ready pool (queued + preempted,
policy-ranked, with a starvation guard), and preempts past-quantum
runners when ready work would gain more.  Admission applies
backpressure (``submit(wait_s=…)`` blocks while the queue is full) and
sheds what it cannot hold.
"""

from __future__ import annotations

import itertools
import threading
import time as _time
import weakref
from collections import deque
from typing import Any, Callable

from ..core.buffer import Snapshot
from ..core.faults import FaultInjector, FaultPolicy
from ..core.tracing import TraceEvent, TraceSink
from .scheduler import FairSharePolicy, ServePolicy
from .session import Session, SessionState, TERMINAL_STATES
from .slo import SLO

__all__ = ["AnytimeServer", "shutdown_all_servers"]

_EXECUTORS = ("threaded", "process")

# Live servers, so test harnesses (the conftest watchdog) can reap
# serving threads that a failing test left behind.
_LIVE_SERVERS: "weakref.WeakSet[AnytimeServer]" = weakref.WeakSet()


def shutdown_all_servers(timeout_s: float = 5.0) -> int:
    """Shut down every live server (best effort); returns how many."""
    count = 0
    for server in list(_LIVE_SERVERS):
        try:
            server.shutdown(timeout_s=timeout_s)
            count += 1
        except Exception:
            pass
    return count


class AnytimeServer:
    """Serve concurrent anytime requests over ``slots`` executor slots.

    Parameters
    ----------
    slots:
        How many requests run concurrently (each admitted run uses one
        slot, regardless of its internal stage count).
    queue_limit:
        Bound on the admission queue; submissions beyond it are shed
        (after ``wait_s`` of backpressure, if the caller asked for any).
    executor:
        ``"threaded"`` (in-process stage threads) or ``"process"``
        (one forked worker per stage; POSIX only).
    policy:
        Slot-allocation policy; default :class:`FairSharePolicy`.
    quantum_s:
        Minimum slot tenure before a run becomes preemptible.
    tick_s:
        Scheduler tick period.
    starvation_s:
        Hard fairness override: a ready request older than this is
        granted the next slot regardless of policy ranking.  Defaults
        to ``50 * quantum_s``.
    default_faults:
        Fault policy applied to requests that do not bring their own;
        defaults to per-request graceful degradation so one faulty
        request cannot take the server down with a strict-mode raise.
    trace:
        Optional :class:`~repro.core.tracing.TraceSink` receiving
        ``server.*`` events (stage = request name) alongside whatever
        per-run events the executors emit.
    grace_s:
        How long a harvest waits for a stopped run to wind down.
    """

    def __init__(self, slots: int = 4, queue_limit: int = 16,
                 executor: str = "threaded",
                 policy: ServePolicy | None = None,
                 quantum_s: float = 0.05,
                 tick_s: float = 0.005,
                 starvation_s: float | None = None,
                 default_faults: FaultPolicy | dict[str, FaultPolicy]
                 | None = None,
                 injector: FaultInjector | None = None,
                 trace: TraceSink | None = None,
                 grace_s: float = 5.0) -> None:
        if slots <= 0:
            raise ValueError(f"slots must be positive: {slots}")
        if queue_limit < 0:
            raise ValueError(f"queue_limit cannot be negative: {queue_limit}")
        if executor not in _EXECUTORS:
            raise ValueError(
                f"unknown executor {executor!r}; pick from {_EXECUTORS}")
        if quantum_s <= 0 or tick_s <= 0:
            raise ValueError("quantum_s and tick_s must be positive")
        self.slots = slots
        self.queue_limit = queue_limit
        self.executor = executor
        self.policy = policy or FairSharePolicy()
        self.quantum_s = quantum_s
        self.tick_s = tick_s
        self.starvation_s = (starvation_s if starvation_s is not None
                             else 50.0 * quantum_s)
        self._default_faults = (default_faults if default_faults is not None
                                else FaultPolicy(on_failure="degrade"))
        self._injector = injector
        self._sink = trace
        self._grace_s = grace_s

        self._lock = threading.RLock()
        self._space = threading.Condition(self._lock)
        self._queue: deque[Session] = deque()
        self._scheduled: list[Session] = []   # RUNNING + PREEMPTED
        self._finished: list[Session] = []
        self._ids = itertools.count(1)
        self._accepting = False
        self._stop_loop = False
        self._thread: threading.Thread | None = None
        self._t0 = _time.monotonic()
        self.counters = {
            "submitted": 0, "admitted": 0, "shed": 0, "completed": 0,
            "cancelled": 0, "failed": 0, "preemptions": 0, "resumes": 0,
        }

    # -- lifecycle -------------------------------------------------------

    def start(self) -> "AnytimeServer":
        """Start the scheduler thread and begin accepting requests."""
        with self._lock:
            if self._thread is not None:
                raise RuntimeError("server already started")
            self._accepting = True
            self._stop_loop = False
            self._thread = threading.Thread(
                target=self._loop, name="anytime-server", daemon=True)
            self._thread.start()
        _LIVE_SERVERS.add(self)
        return self

    def __enter__(self) -> "AnytimeServer":
        return self.start()

    def __exit__(self, *exc: Any) -> None:
        self.shutdown()

    def drain(self, timeout_s: float | None = None) -> bool:
        """Stop accepting, let in-flight work finish; True if it did."""
        with self._lock:
            self._accepting = False
            self._space.notify_all()
        deadline = (None if timeout_s is None
                    else _time.monotonic() + timeout_s)
        while True:
            with self._lock:
                if not self._queue and not self._scheduled:
                    return True
            if deadline is not None and _time.monotonic() >= deadline:
                return False
            _time.sleep(self.tick_s)

    def shutdown(self, timeout_s: float = 10.0) -> None:
        """Cancel everything in flight and stop the scheduler thread.

        Idempotent; safe to call on a server that never started.  Every
        non-terminal session is terminalized (CANCELLED), so no client
        blocks forever on :meth:`Session.result`.
        """
        with self._lock:
            self._accepting = False
            self._stop_loop = True
            thread = self._thread
            self._space.notify_all()
        if thread is not None:
            thread.join(timeout=timeout_s)
        with self._lock:
            now = _time.monotonic()
            while self._queue:
                session = self._queue.popleft()
                session._terminalize(SessionState.CANCELLED,
                                     session.snapshot(), now,
                                     interrupted=True)
                self.counters["cancelled"] += 1
                self._trace("server.cancel", session, now)
                self._finished.append(session)
            for session in list(self._scheduled):
                self._finish(session, SessionState.CANCELLED, now,
                             interrupted=True)
            self._thread = None
        _LIVE_SERVERS.discard(self)

    # -- client API ------------------------------------------------------

    def submit(self, builder: Callable[[], Any], slo: SLO | None = None,
               *, metric: Callable[[Any], float] | None = None,
               name: str | None = None,
               faults: FaultPolicy | dict[str, FaultPolicy] | None = None,
               wait_s: float = 0.0) -> Session:
        """Submit one request; returns its :class:`Session` immediately.

        ``builder`` is a zero-argument callable producing a *fresh*
        :class:`~repro.core.automaton.AnytimeAutomaton` (automata are
        single-use; the server builds at admission time so shed requests
        cost nothing).  ``metric`` maps an output value to dB — required
        for ``target_db`` SLOs and for accuracy-at-interrupt accounting.
        ``wait_s`` is the backpressure budget: how long to block while
        the admission queue is full before giving up; on a still-full
        queue the request is returned in the terminal ``SHED`` state.
        """
        slo = slo or SLO()
        now = _time.monotonic()
        with self._lock:
            self.counters["submitted"] += 1
            sid = next(self._ids)
            session = Session(
                sid=sid, name=name or f"req-{sid}", builder=builder,
                slo=slo, metric=metric, submitted_at=now,
                faults=faults if faults is not None
                else self._default_faults)
            if not self._accepting:
                self._shed(session, now, reason="not-accepting")
                return session
            if len(self._queue) >= self.queue_limit and wait_s > 0.0:
                deadline = now + wait_s
                while (len(self._queue) >= self.queue_limit
                       and self._accepting):
                    remaining = deadline - _time.monotonic()
                    if remaining <= 0:
                        break
                    self._space.wait(timeout=remaining)
            if not self._accepting:
                self._shed(session, _time.monotonic(),
                           reason="not-accepting")
                return session
            if len(self._queue) >= self.queue_limit:
                self._shed(session, _time.monotonic(), reason="queue-full")
                return session
            session._ready_since = _time.monotonic()
            self._queue.append(session)
            self._trace("server.enqueue", session, session._ready_since,
                        queue_depth=len(self._queue))
            return session

    def sessions(self) -> list[Session]:
        with self._lock:
            return list(self._queue) + list(self._scheduled) \
                + list(self._finished)

    def stats(self) -> dict[str, Any]:
        with self._lock:
            running = sum(1 for s in self._scheduled
                          if s.state is SessionState.RUNNING)
            return {
                **self.counters,
                "queued": len(self._queue),
                "running": running,
                "preempted": len(self._scheduled) - running,
                "finished": len(self._finished),
                "slots": self.slots,
                "queue_limit": self.queue_limit,
                "policy": self.policy.name,
                "executor": self.executor,
            }

    # -- scheduler thread ------------------------------------------------

    def _loop(self) -> None:
        while True:
            with self._lock:
                if self._stop_loop:
                    return
                try:
                    self._tick(_time.monotonic())
                except Exception:
                    # A tick must never kill the serving thread; broken
                    # sessions are failed individually in _tick.
                    pass
            _time.sleep(self.tick_s)

    def _tick(self, now: float) -> None:
        self._harvest(now)
        self._fill_slots(now)
        self._preempt(now)

    def _harvest(self, now: float) -> None:
        """Retire runs that ended, expired, got cancelled or met target."""
        for session in [s for s in self._queue if s._cancel_requested]:
            self._queue.remove(session)
            self._space.notify_all()
            session._terminalize(SessionState.CANCELLED,
                                 session.snapshot(), now, interrupted=True)
            self.counters["cancelled"] += 1
            self._trace("server.cancel", session, now)
            self._finished.append(session)
        for session in list(self._scheduled):
            if session._cancel_requested:
                self._finish(session, SessionState.CANCELLED, now,
                             interrupted=True)
                continue
            assert session._handle is not None
            if session._handle.finished:
                self._finish(session, SessionState.COMPLETED, now)
                continue
            if session.deadline_passed(now):
                self._finish(session, SessionState.COMPLETED, now,
                             interrupted=True)
                continue
            if (session.state is SessionState.RUNNING
                    and session.metric is not None
                    and session.slo.target_db is not None):
                snap = session._handle.snapshot()
                if snap.version > session._last_version \
                        and snap.value is not None:
                    session._last_version = snap.version
                    try:
                        session._last_snr = float(session.metric(snap.value))
                    except Exception:
                        session._last_snr = None
                if session.target_met():
                    self._finish(session, SessionState.COMPLETED, now,
                                 interrupted=True)

    def _ready(self) -> list[Session]:
        return list(self._queue) + [
            s for s in self._scheduled
            if s.state is SessionState.PREEMPTED]

    def _running(self) -> list[Session]:
        return [s for s in self._scheduled
                if s.state is SessionState.RUNNING]

    def _fill_slots(self, now: float) -> None:
        free = self.slots - len(self._running())
        while free > 0:
            ready = self._ready()
            if not ready:
                return
            starving = [s for s in ready
                        if now - s._ready_since >= self.starvation_s]
            if starving:
                chosen = min(starving, key=lambda s: s._ready_since)
            else:
                chosen = self.policy.rank_ready(ready, now)[0]
            self._grant(chosen, now)
            free -= 1

    def _preempt(self, now: float) -> None:
        """Rotate a past-quantum runner out when ready work wants in."""
        ready = self._ready()
        if not ready or self.slots > len(self._running()):
            return
        candidates = [
            s for s in self._running()
            if s._dispatched_at is not None
            and now - s._dispatched_at >= self.quantum_s]
        victim = self.policy.pick_victim(candidates, ready, now)
        if victim is None:
            return
        assert victim._handle is not None
        victim._handle.pause()
        victim._run_s += now - (victim._dispatched_at or now)
        victim._dispatched_at = None
        victim._ready_since = now
        victim._state = SessionState.PREEMPTED
        victim._preemptions += 1
        self.counters["preemptions"] += 1
        self._trace("server.preempt", victim, now,
                    run_s=round(victim._run_s, 6))
        self._fill_slots(now)

    def _grant(self, session: Session, now: float) -> None:
        """Give one slot to a ready session (launch or resume)."""
        if session.state is SessionState.PREEMPTED:
            assert session._handle is not None
            session._handle.resume()
            session._state = SessionState.RUNNING
            session._dispatched_at = now
            self.counters["resumes"] += 1
            self._trace("server.resume", session, now)
            return
        self._queue.remove(session)
        self._space.notify_all()
        try:
            automaton = session.builder()
            stop = session.slo.stop_condition(
                now - session.submitted_at, session.metric)
            if self.executor == "process":
                handle = automaton.launch_processes(
                    stop=stop, faults=session.faults,
                    injector=self._injector, trace=self._sink,
                    grace_s=self._grace_s)
            else:
                handle = automaton.launch_threaded(
                    stop=stop, faults=session.faults,
                    injector=self._injector, trace=self._sink)
        except Exception as exc:
            session._terminalize(
                SessionState.FAILED, session.snapshot(), now,
                errors=(f"{type(exc).__name__}: {exc}",))
            self.counters["failed"] += 1
            self._trace("server.complete", session, now, state="failed")
            self._finished.append(session)
            return
        session._handle = handle
        session._state = SessionState.RUNNING
        session._first_run_at = now
        session._dispatched_at = now
        self.counters["admitted"] += 1
        self._scheduled.append(session)
        self._trace("server.admit", session, now,
                    queued_s=round(now - session.submitted_at, 6))

    def _finish(self, session: Session, state: SessionState, now: float,
                interrupted: bool = False) -> None:
        """Stop, harvest and terminalize a scheduled session."""
        handle = session._handle
        assert handle is not None
        if not handle.finished:
            # Deadline, met target, or cancellation of a live run: stop
            # it now so the harvest below is bounded by wind-down time,
            # not by grace_s.  (A naturally finished run is left alone
            # so its result is not misreported as stopped early.)
            handle.request_stop()
        if session._dispatched_at is not None:
            session._run_s += now - session._dispatched_at
            session._dispatched_at = None
        run_result = None
        errors: tuple[str, ...] = ()
        degraded = False
        try:
            run_result = handle.result(timeout_s=self._grace_s)
            interrupted = interrupted or run_result.stopped_early
            degraded = bool(run_result.degraded_stages
                            or run_result.failed_stages)
            errors = tuple(f"{stage}: {exc!r}"
                           for stage, exc in run_result.errors)
        except Exception as exc:
            errors = (f"{type(exc).__name__}: {exc}",)
        snapshot = handle.snapshot()
        snr = None
        if session.metric is not None and snapshot.value is not None:
            try:
                snr = float(session.metric(snapshot.value))
            except Exception:
                snr = None
        if state is SessionState.COMPLETED and snapshot.version == 0:
            # Never produced an output version: that is a failure, not
            # an approximation.
            state = SessionState.FAILED
        self._scheduled.remove(session)
        session._terminalize(state, snapshot, now, snr_db=snr,
                             interrupted=interrupted, degraded=degraded,
                             errors=errors, run_result=run_result)
        key = {SessionState.COMPLETED: "completed",
               SessionState.CANCELLED: "cancelled",
               SessionState.FAILED: "failed"}.get(state)
        if key:
            self.counters[key] += 1
        kind = ("server.cancel" if state is SessionState.CANCELLED
                else "server.complete")
        self._trace(kind, session, now, state=state.value,
                    version=snapshot.version,
                    latency_s=round(now - session.submitted_at, 6))
        self._finished.append(session)

    def _shed(self, session: Session, now: float, reason: str) -> None:
        session._terminalize(SessionState.SHED, session.snapshot(), now)
        self.counters["shed"] += 1
        self._trace("server.shed", session, now, reason=reason,
                    queue_depth=len(self._queue))
        self._finished.append(session)

    def _trace(self, kind: str, session: Session, now: float,
               **extra: Any) -> None:
        if self._sink is None:
            return
        try:
            self._sink.emit(TraceEvent(
                ts=now - self._t0, kind=kind, stage=session.name,
                args={"sid": session.sid, **extra}))
        except Exception:
            pass
