"""The anytime serving layer: many requests, few slots, every answer valid.

:class:`AnytimeServer` multiplexes concurrent automaton runs over a
bounded pool of executor slots.  It inverts the repo's original control
flow: executors no longer own the run loop — each admitted request is
``launch()``-ed into a :class:`~repro.core.executor.RunHandle` and
becomes a schedulable resource the server can pause, resume, stop and
harvest at any tick.  The anytime properties are what make this serving
model cheap and safe:

* **Preemption is free of bookkeeping.**  Pausing a run needs no
  checkpoint: its output buffer already holds a sealed-on-demand valid
  approximation (Property 3), so a preempted request can be resumed,
  finished early, or abandoned with whatever quality it reached.
* **Deadlines are exact, not best-effort.**  A request stopped at its
  SLO deadline returns its newest output version — degraded, never
  invalid.
* **Quality-aware scheduling has a calibrated currency.**  With a
  :class:`~repro.serve.scheduler.MarginalGainPolicy`, slots flow to the
  requests whose accuracy profile still climbs steeply, and away from
  requests past their target dB.

Lifecycle (all transitions traced as ``server.*`` events)::

    submit ──enqueue──> QUEUED ──admit──> RUNNING ⇄ PREEMPTED
        └──shed (queue full)──> SHED         └──> COMPLETED/…

The scheduler thread ticks every ``tick_s``: it harvests finished and
expired runs, fills free slots from the ready pool (queued + preempted,
policy-ranked, with a starvation guard), and preempts past-quantum
runners when ready work would gain more.  Admission applies
backpressure (``submit(wait_s=…)`` blocks while the queue is full) and
sheds what it cannot hold.
"""

from __future__ import annotations

import itertools
import os
import threading
import time as _time
import weakref
from collections import deque
from typing import Any, Callable

from ..core.buffer import Snapshot
from ..core.faults import FaultInjector, FaultPolicy
from ..core.tracing import TraceEvent, TraceSink
from .scheduler import FairSharePolicy, ServePolicy
from .session import Session, SessionState, TERMINAL_STATES
from .slo import SLO

__all__ = ["AnytimeServer", "shutdown_all_servers"]

_EXECUTORS = ("threaded", "process")

# Live servers, so test harnesses (the conftest watchdog) can reap
# serving threads that a failing test left behind.
_LIVE_SERVERS: "weakref.WeakSet[AnytimeServer]" = weakref.WeakSet()


def shutdown_all_servers(timeout_s: float = 5.0) -> int:
    """Shut down every live server (best effort); returns how many."""
    count = 0
    for server in list(_LIVE_SERVERS):
        try:
            server.shutdown(timeout_s=timeout_s)
            count += 1
        except Exception:
            pass
    return count


class AnytimeServer:
    """Serve concurrent anytime requests over ``slots`` executor slots.

    Parameters
    ----------
    slots:
        How many requests run concurrently (each admitted run uses one
        slot, regardless of its internal stage count).
    queue_limit:
        Bound on the admission queue; submissions beyond it are shed
        (after ``wait_s`` of backpressure, if the caller asked for any).
    executor:
        ``"threaded"`` (in-process stage threads) or ``"process"``
        (one forked worker per stage; POSIX only).
    policy:
        Slot-allocation policy; default :class:`FairSharePolicy`.
    quantum_s:
        Minimum slot tenure before a run becomes preemptible.
    tick_s:
        Scheduler tick period.
    starvation_s:
        Hard fairness override: a ready request older than this is
        granted the next slot regardless of policy ranking.  Defaults
        to ``50 * quantum_s``.
    default_faults:
        Fault policy applied to requests that do not bring their own;
        defaults to per-request graceful degradation so one faulty
        request cannot take the server down with a strict-mode raise.
    trace:
        Optional :class:`~repro.core.tracing.TraceSink` receiving
        ``server.*`` events (stage = request name) alongside whatever
        per-run events the executors emit.
    grace_s:
        How long a harvest waits for a stopped run to wind down.
    coalesce:
        Whether requests submitted with the same ``key`` share one run
        (see :meth:`submit`).  Subscribers detach individually at their
        own deadline/target with a pinned sealed snapshot; the run keeps
        its slot until its most-demanding live subscriber is satisfied.
    memo_ttl_s:
        How long a recently-sealed *final* result answers repeat
        requests for the same ``key`` without running at all (0 =
        memoization off).  Only precise (``final``) snapshots are
        memoized, so a memo hit is never a silent quality downgrade.
    resume_dir:
        Directory for run checkpoints (:mod:`repro.ckpt`); enables
        suspend-and-resume serving.  With it set, (a) preemption
        *suspends*: the victim's run is checkpointed to disk and its
        executor torn down entirely (threads/processes reclaimed, not
        just paused), and a later slot grant restores the run from the
        checkpoint with no lost progress; (b) a queue-full submission
        parks as ``RESUMABLE`` and re-queues when space frees instead
        of dying ``SHED``.  None (the default) keeps the original
        pause-in-memory preemption and terminal sheds.
    """

    def __init__(self, slots: int = 4, queue_limit: int = 16,
                 executor: str = "threaded",
                 policy: ServePolicy | None = None,
                 quantum_s: float = 0.05,
                 tick_s: float = 0.005,
                 starvation_s: float | None = None,
                 default_faults: FaultPolicy | dict[str, FaultPolicy]
                 | None = None,
                 injector: FaultInjector | None = None,
                 trace: TraceSink | None = None,
                 grace_s: float = 5.0,
                 coalesce: bool = True,
                 memo_ttl_s: float = 0.0,
                 resume_dir: str | None = None) -> None:
        if slots <= 0:
            raise ValueError(f"slots must be positive: {slots}")
        if queue_limit < 0:
            raise ValueError(f"queue_limit cannot be negative: {queue_limit}")
        if executor not in _EXECUTORS:
            raise ValueError(
                f"unknown executor {executor!r}; pick from {_EXECUTORS}")
        if quantum_s <= 0 or tick_s <= 0:
            raise ValueError("quantum_s and tick_s must be positive")
        self.slots = slots
        self.queue_limit = queue_limit
        self.executor = executor
        self.policy = policy or FairSharePolicy()
        self.quantum_s = quantum_s
        self.tick_s = tick_s
        self.starvation_s = (starvation_s if starvation_s is not None
                             else 50.0 * quantum_s)
        self._default_faults = (default_faults if default_faults is not None
                                else FaultPolicy(on_failure="degrade"))
        self._injector = injector
        self._sink = trace
        self._grace_s = grace_s
        if memo_ttl_s < 0:
            raise ValueError(f"memo_ttl_s cannot be negative: {memo_ttl_s}")
        self.coalesce = bool(coalesce)
        self.memo_ttl_s = float(memo_ttl_s)
        self._memo: dict[str, tuple[float, Snapshot]] = {}
        self.resume_dir = resume_dir
        if resume_dir is not None:
            os.makedirs(resume_dir, exist_ok=True)

        self._lock = threading.RLock()
        self._space = threading.Condition(self._lock)
        self._queue: deque[Session] = deque()
        self._scheduled: list[Session] = []   # RUNNING+PREEMPTED+RESUMABLE
        self._parked: deque[Session] = deque()  # would-be-shed, waiting
        self._finished: list[Session] = []
        self._ids = itertools.count(1)
        self._accepting = False
        self._stop_loop = False
        self._thread: threading.Thread | None = None
        self._t0 = _time.monotonic()
        self.counters = {
            "submitted": 0, "admitted": 0, "shed": 0, "completed": 0,
            "cancelled": 0, "failed": 0, "preemptions": 0, "resumes": 0,
            "coalesced": 0, "memo_hits": 0, "detaches": 0,
            "promotions": 0,
            "parked": 0, "requeued": 0, "suspends": 0, "restores": 0,
        }

    # -- lifecycle -------------------------------------------------------

    def start(self) -> "AnytimeServer":
        """Start the scheduler thread and begin accepting requests."""
        loader = getattr(self.policy, "load_profile", None)
        if callable(loader):
            try:
                loader()
            except Exception:
                pass   # a stale/corrupt profile never blocks serving
        with self._lock:
            if self._thread is not None:
                raise RuntimeError("server already started")
            self._accepting = True
            self._stop_loop = False
            self._thread = threading.Thread(
                target=self._loop, name="anytime-server", daemon=True)
            self._thread.start()
        _LIVE_SERVERS.add(self)
        return self

    def __enter__(self) -> "AnytimeServer":
        return self.start()

    def __exit__(self, *exc: Any) -> None:
        self.shutdown()

    def drain(self, timeout_s: float | None = None) -> bool:
        """Stop accepting, let in-flight work finish; True if it did."""
        with self._lock:
            self._accepting = False
            self._space.notify_all()
        deadline = (None if timeout_s is None
                    else _time.monotonic() + timeout_s)
        while True:
            with self._lock:
                if not self._queue and not self._scheduled \
                        and not self._parked:
                    return True
            if deadline is not None and _time.monotonic() >= deadline:
                return False
            _time.sleep(self.tick_s)

    def shutdown(self, timeout_s: float = 10.0) -> None:
        """Cancel everything in flight and stop the scheduler thread.

        Idempotent; safe to call on a server that never started.  Every
        non-terminal session is terminalized (CANCELLED), so no client
        blocks forever on :meth:`Session.result`.
        """
        with self._lock:
            self._accepting = False
            self._stop_loop = True
            thread = self._thread
            self._space.notify_all()
        if thread is not None:
            thread.join(timeout=timeout_s)
        with self._lock:
            now = _time.monotonic()
            while self._queue or self._parked:
                session = (self._queue.popleft() if self._queue
                           else self._parked.popleft())
                for follower in list(session._followers):
                    self._detach(session, follower,
                                 SessionState.CANCELLED, now)
                session._terminalize(SessionState.CANCELLED,
                                     session.snapshot(), now,
                                     interrupted=True)
                self.counters["cancelled"] += 1
                self._trace("server.cancel", session, now)
                self._finished.append(session)
            for session in list(self._scheduled):
                if session._handle is None:
                    self._finish_parked(session, SessionState.CANCELLED,
                                        now)
                else:
                    self._finish(session, SessionState.CANCELLED, now,
                                 interrupted=True)
            self._thread = None
        _LIVE_SERVERS.discard(self)
        saver = getattr(self.policy, "save_profile", None)
        if callable(saver):
            try:
                saver()
            except Exception:
                pass

    # -- client API ------------------------------------------------------

    def submit(self, builder: Callable[[], Any], slo: SLO | None = None,
               *, metric: Callable[[Any], float] | None = None,
               name: str | None = None,
               faults: FaultPolicy | dict[str, FaultPolicy] | None = None,
               wait_s: float = 0.0,
               key: str | None = None,
               trace: TraceSink | None = None) -> Session:
        """Submit one request; returns its :class:`Session` immediately.

        ``builder`` is a zero-argument callable producing a *fresh*
        :class:`~repro.core.automaton.AnytimeAutomaton` (automata are
        single-use; the server builds at admission time so shed requests
        cost nothing).  ``metric`` maps an output value to dB — required
        for ``target_db`` SLOs and for accuracy-at-interrupt accounting.
        ``wait_s`` is the backpressure budget: how long to block while
        the admission queue is full before giving up; on a still-full
        queue the request is returned in the terminal ``SHED`` state.

        ``key`` is the request's work identity (canonically
        :func:`repro.serve.digest.input_digest`).  When coalescing is
        on, a keyed request whose key matches a queued or running
        request attaches to that run as a *subscriber* instead of
        consuming queue space and a slot of its own; it detaches at its
        own deadline/target with a pinned sealed snapshot.  A keyed
        request matching a fresh memoized final result completes
        immediately without running.

        ``trace`` attaches a per-request sink (e.g. a conformance
        :class:`~repro.check.invariants.Checker`) to this request's own
        runs, overriding the server-wide sink; it sees nothing when the
        request is answered by coalescing or the memo.
        """
        slo = slo or SLO()
        now = _time.monotonic()
        with self._lock:
            self.counters["submitted"] += 1
            sid = next(self._ids)
            session = Session(
                sid=sid, name=name or f"req-{sid}", builder=builder,
                slo=slo, metric=metric, submitted_at=now, key=key,
                trace=trace,
                faults=faults if faults is not None
                else self._default_faults)
            if not self._accepting:
                self._shed(session, now, reason="not-accepting")
                return session
            if self.coalesce and key is not None:
                if self._memo_answer(session, now):
                    return session
                host = self._find_host(key)
                if host is not None:
                    self._attach(session, host, now)
                    return session
            if len(self._queue) >= self.queue_limit and wait_s > 0.0:
                deadline = now + wait_s
                while (len(self._queue) >= self.queue_limit
                       and self._accepting):
                    remaining = deadline - _time.monotonic()
                    if remaining <= 0:
                        break
                    self._space.wait(timeout=remaining)
            if not self._accepting:
                self._shed(session, _time.monotonic(),
                           reason="not-accepting")
                return session
            if self.coalesce and key is not None:
                # a matching run may have appeared while we waited
                host = self._find_host(key)
                if host is not None:
                    self._attach(session, host, _time.monotonic())
                    return session
            if len(self._queue) >= self.queue_limit:
                if self.resume_dir is not None:
                    self._park(session, _time.monotonic())
                else:
                    self._shed(session, _time.monotonic(),
                               reason="queue-full")
                return session
            session._ready_since = _time.monotonic()
            self._queue.append(session)
            self._trace("server.enqueue", session, session._ready_since,
                        queue_depth=len(self._queue))
            return session

    # -- coalescing ------------------------------------------------------

    def _memo_answer(self, session: Session, now: float) -> bool:
        """Serve a keyed request from the sealed-results memo; True if
        answered.  Expired entries are evicted on the way."""
        if self.memo_ttl_s <= 0 or session.key is None:
            return False
        entry = self._memo.get(session.key)
        if entry is None:
            return False
        expires_at, snapshot = entry
        if now >= expires_at:
            del self._memo[session.key]
            return False
        snr = self._snr_of(session, snapshot)
        session._memo_hit = True
        session._terminalize(SessionState.COMPLETED, snapshot, now,
                             snr_db=snr)
        self.counters["completed"] += 1
        self.counters["memo_hits"] += 1
        self._trace("server.memo_hit", session, now,
                    version=snapshot.version)
        self._finished.append(session)
        return True

    def _find_host(self, key: str) -> Session | None:
        """A live same-key session whose run this request can join."""
        for session in self._scheduled:
            if session.key == key and not session._cancel_requested:
                return session
        for session in self._queue:
            if session.key == key and not session._cancel_requested:
                return session
        return None

    def _attach(self, session: Session, host: Session,
                now: float) -> None:
        """Attach ``session`` as a subscriber of ``host``'s run."""
        session._primary = host
        session._coalesced = True
        if host.state in (SessionState.RUNNING, SessionState.PREEMPTED):
            session._state = host.state
            session._first_run_at = now
        host._followers.append(session)
        self.counters["coalesced"] += 1
        self._trace("server.coalesce", session, now, primary=host.name,
                    subscribers=1 + len(host._followers))

    def _detach(self, primary: Session, follower: Session,
                state: SessionState, now: float,
                interrupted: bool = True) -> None:
        """Terminalize one subscriber with a pinned sealed snapshot;
        the shared run is untouched."""
        primary._followers.remove(follower)
        snapshot = primary.snapshot()
        resolved = state
        if state is SessionState.COMPLETED and snapshot.version == 0:
            resolved = SessionState.FAILED
        snr = self._snr_of(follower, snapshot)
        follower._terminalize(resolved, snapshot, now, snr_db=snr,
                              interrupted=interrupted)
        key = {SessionState.COMPLETED: "completed",
               SessionState.CANCELLED: "cancelled",
               SessionState.FAILED: "failed"}.get(resolved)
        if key:
            self.counters[key] += 1
        self.counters["detaches"] += 1
        self._trace("server.detach", follower, now, state=resolved.value,
                    primary=primary.name, version=snapshot.version)
        self._finished.append(follower)

    def _snr_of(self, session: Session,
                snapshot: Snapshot) -> float | None:
        if session.metric is None or snapshot.value is None:
            return None
        try:
            return float(session.metric(snapshot.value))
        except Exception:
            return None

    def _memoize(self, key: str | None, snapshot: Snapshot,
                 now: float) -> None:
        if key is None or self.memo_ttl_s <= 0 or not snapshot.final:
            return
        self._memo[key] = (now + self.memo_ttl_s, snapshot)

    def sessions(self) -> list[Session]:
        with self._lock:
            out: list[Session] = []
            for session in (list(self._queue) + list(self._scheduled)
                            + list(self._parked)):
                out.append(session)
                out.extend(session._followers)
            return out + list(self._finished)

    def stats(self) -> dict[str, Any]:
        with self._lock:
            running = sum(1 for s in self._scheduled
                          if s.state is SessionState.RUNNING)
            resumable = sum(1 for s in self._scheduled
                            if s.state is SessionState.RESUMABLE)
            return {
                **self.counters,
                "queued": len(self._queue),
                "running": running,
                "preempted": len(self._scheduled) - running - resumable,
                "resumable": resumable + len(self._parked),
                "finished": len(self._finished),
                "subscribers": sum(
                    len(s._followers)
                    for s in list(self._queue) + self._scheduled),
                "memo_size": len(self._memo),
                "slots": self.slots,
                "queue_limit": self.queue_limit,
                "policy": self.policy.name,
                "executor": self.executor,
            }

    # -- scheduler thread ------------------------------------------------

    def _loop(self) -> None:
        while True:
            with self._lock:
                if self._stop_loop:
                    return
                try:
                    self._tick(_time.monotonic())
                except Exception:
                    # A tick must never kill the serving thread; broken
                    # sessions are failed individually in _tick.
                    pass
            _time.sleep(self.tick_s)

    def _tick(self, now: float) -> None:
        if self._memo:
            for key in [k for k, (expires_at, _) in self._memo.items()
                        if now >= expires_at]:
                del self._memo[key]
        self._harvest(now)
        self._unpark(now)
        self._fill_slots(now)
        self._preempt(now)

    def _harvest(self, now: float) -> None:
        """Retire runs that ended, expired, got cancelled or met
        target, and detach coalesced subscribers whose own SLO
        resolved."""
        for session in list(self._queue):
            for follower in [f for f in session._followers
                             if f._cancel_requested]:
                self._detach(session, follower, SessionState.CANCELLED,
                             now)
            if not session._cancel_requested:
                continue
            self._queue.remove(session)
            self._space.notify_all()
            live = [f for f in session._followers
                    if not f._cancel_requested]
            if live:
                # the queued run still has subscribers: the first
                # becomes the queued primary, the request survives
                self._promote(session, live, now, into_queue=True)
            session._followers = []
            session._terminalize(SessionState.CANCELLED,
                                 session.snapshot(), now, interrupted=True)
            self.counters["cancelled"] += 1
            self._trace("server.cancel", session, now)
            self._finished.append(session)
        for session in list(self._scheduled):
            for follower in list(session._followers):
                if follower._cancel_requested:
                    self._detach(session, follower,
                                 SessionState.CANCELLED, now)
                elif follower.deadline_passed(now):
                    self._detach(session, follower,
                                 SessionState.COMPLETED, now)
            if session._handle is None:
                # suspended to disk: no run to harvest; resolve the
                # session-level outcomes the pinned snapshot can answer
                if session._cancel_requested:
                    self._finish_parked(session, SessionState.CANCELLED,
                                        now)
                elif session.deadline_passed(now) or session.target_met():
                    self._finish_parked(session, SessionState.COMPLETED,
                                        now)
                continue
            if session._cancel_requested:
                self._finish(session, SessionState.CANCELLED, now,
                             interrupted=True, whole_run=False)
                continue
            assert session._handle is not None
            if session._handle.finished:
                self._finish(session, SessionState.COMPLETED, now)
                continue
            if session.deadline_passed(now):
                self._finish(session, SessionState.COMPLETED, now,
                             interrupted=True, whole_run=False)
                continue
            if session.state is not SessionState.RUNNING:
                continue
            subscribers = [session] + session._followers
            if any(s.metric is not None and s.slo.target_db is not None
                   for s in subscribers):
                snap = session._handle.snapshot()
                for s in subscribers:
                    if s.metric is None or s.slo.target_db is None:
                        continue
                    if snap.version > s._last_version \
                            and snap.value is not None:
                        s._last_version = snap.version
                        try:
                            s._last_snr = float(s.metric(snap.value))
                        except Exception:
                            s._last_snr = None
            for follower in list(session._followers):
                if follower.target_met():
                    self._detach(session, follower,
                                 SessionState.COMPLETED, now)
            if session.target_met():
                self._finish(session, SessionState.COMPLETED, now,
                             interrupted=True, whole_run=False)

    def _ready(self) -> list[Session]:
        return list(self._queue) + [
            s for s in self._scheduled
            if s.state in (SessionState.PREEMPTED,
                           SessionState.RESUMABLE)]

    def _running(self) -> list[Session]:
        return [s for s in self._scheduled
                if s.state is SessionState.RUNNING]

    def _fill_slots(self, now: float) -> None:
        free = self.slots - len(self._running())
        while free > 0:
            ready = self._ready()
            if not ready:
                return
            starving = [s for s in ready
                        if now - s._ready_since >= self.starvation_s]
            if starving:
                chosen = min(starving, key=lambda s: s._ready_since)
            else:
                chosen = self.policy.rank_ready(ready, now)[0]
            self._grant(chosen, now)
            free -= 1

    def _preempt(self, now: float) -> None:
        """Rotate a past-quantum runner out when ready work wants in."""
        ready = self._ready()
        if not ready or self.slots > len(self._running()):
            return
        candidates = [
            s for s in self._running()
            if s._dispatched_at is not None
            and now - s._dispatched_at >= self.quantum_s]
        victim = self.policy.pick_victim(candidates, ready, now)
        if victim is None:
            return
        assert victim._handle is not None
        if self.resume_dir is not None and self._suspend(victim, now):
            self._fill_slots(now)
            return
        victim._handle.pause()
        victim._run_s += now - (victim._dispatched_at or now)
        victim._dispatched_at = None
        victim._ready_since = now
        victim._state = SessionState.PREEMPTED
        for follower in victim._followers:
            follower._state = SessionState.PREEMPTED
        victim._preemptions += 1
        self.counters["preemptions"] += 1
        self._trace("server.preempt", victim, now,
                    run_s=round(victim._run_s, 6))
        self._fill_slots(now)

    # -- suspend-and-resume (resume_dir mode) ----------------------------

    def _ckpt_file(self, session: Session) -> str:
        """Checkpoint path of a session: keyed requests get a stable
        key-derived name (so a fleet router can find a dead worker's
        checkpoints), anonymous ones their name+sid."""
        assert self.resume_dir is not None
        base = (session.key.replace(":", "_").replace("/", "_")
                if session.key is not None
                else f"{session.name}-{session.sid}")
        return os.path.join(self.resume_dir, f"{base}.rck")

    def _discard_ckpt(self, session: Session) -> None:
        if session._ckpt_path is not None:
            try:
                os.unlink(session._ckpt_path)
            except OSError:
                pass
        session._ckpt_path = None
        session._parked_snapshot = None

    def _park(self, session: Session, now: float) -> None:
        """Hold a would-be-shed submission as RESUMABLE; it re-queues
        at the next tick with admission space."""
        session._state = SessionState.RESUMABLE
        session._ready_since = now
        self._parked.append(session)
        self.counters["parked"] += 1
        self._trace("server.park", session, now,
                    parked_depth=len(self._parked))

    def _unpark(self, now: float) -> None:
        while self._parked and len(self._queue) < self.queue_limit:
            session = self._parked.popleft()
            if session._cancel_requested:
                session._terminalize(SessionState.CANCELLED,
                                     session.snapshot(), now,
                                     interrupted=True)
                self.counters["cancelled"] += 1
                self._trace("server.cancel", session, now)
                self._finished.append(session)
                continue
            session._state = SessionState.QUEUED
            session._ready_since = now
            self._queue.append(session)
            self.counters["requeued"] += 1
            self._trace("server.requeue", session, now,
                        queue_depth=len(self._queue))

    def _suspend(self, session: Session, now: float) -> bool:
        """Checkpoint a running session to disk and tear its executor
        down entirely, turning paused-in-memory preemption into
        RESUMABLE-on-disk.  False = checkpoint failed; the caller falls
        back to a plain pause."""
        handle = session._handle
        assert handle is not None
        if handle.finished:
            return False   # harvest will complete it next tick
        path = self._ckpt_file(session)
        try:
            handle.checkpoint(path)
        except Exception:
            try:
                os.unlink(path)
            except OSError:
                pass
            return False
        try:
            if not handle.finished:
                handle.request_stop()
            handle.result(timeout_s=self._grace_s)
        except Exception:
            pass   # the executor is being discarded either way
        session._parked_snapshot = handle.snapshot()
        session._handle = None
        session._ckpt_path = path
        session._run_s += now - (session._dispatched_at or now)
        session._dispatched_at = None
        session._ready_since = now
        session._state = SessionState.RESUMABLE
        for follower in session._followers:
            follower._state = SessionState.RESUMABLE
        session._preemptions += 1
        self.counters["preemptions"] += 1
        self.counters["suspends"] += 1
        self._trace("server.suspend", session, now, path=path,
                    version=session._parked_snapshot.version)
        return True

    def _finish_parked(self, session: Session, state: SessionState,
                       now: float) -> None:
        """Terminalize a suspended (checkpoint-on-disk) session without
        relaunching it: the snapshot pinned at suspend time is its
        answer, and every subscriber settles on it too."""
        snapshot = session._parked_snapshot or session.snapshot()
        resolved = state
        if state is SessionState.COMPLETED and snapshot.version == 0:
            resolved = SessionState.FAILED
        if session in self._scheduled:
            self._scheduled.remove(session)
        for follower in list(session._followers):
            f_state = (SessionState.CANCELLED
                       if follower._cancel_requested else resolved)
            follower._terminalize(
                f_state, snapshot, now,
                snr_db=self._snr_of(follower, snapshot),
                interrupted=True)
            f_key = {SessionState.COMPLETED: "completed",
                     SessionState.CANCELLED: "cancelled",
                     SessionState.FAILED: "failed"}.get(f_state)
            if f_key:
                self.counters[f_key] += 1
            self.counters["detaches"] += 1
            self._trace("server.detach", follower, now,
                        state=f_state.value, primary=session.name,
                        version=snapshot.version)
            self._finished.append(follower)
        session._followers = []
        self._discard_ckpt(session)
        session._terminalize(resolved, snapshot, now,
                             snr_db=self._snr_of(session, snapshot),
                             interrupted=True)
        key = {SessionState.COMPLETED: "completed",
               SessionState.CANCELLED: "cancelled",
               SessionState.FAILED: "failed"}.get(resolved)
        if key:
            self.counters[key] += 1
        kind = ("server.cancel" if resolved is SessionState.CANCELLED
                else "server.complete")
        self._trace(kind, session, now, state=resolved.value,
                    version=snapshot.version,
                    latency_s=round(now - session.submitted_at, 6))
        self._finished.append(session)

    def _grant(self, session: Session, now: float) -> None:
        """Give one slot to a ready session (launch, resume, or
        restore-from-checkpoint)."""
        if session.state is SessionState.PREEMPTED:
            assert session._handle is not None
            session._handle.resume()
            session._state = SessionState.RUNNING
            for follower in session._followers:
                follower._state = SessionState.RUNNING
            session._dispatched_at = now
            self.counters["resumes"] += 1
            self._trace("server.resume", session, now)
            return
        from_ckpt = session._ckpt_path
        if from_ckpt is None:
            self._queue.remove(session)
            self._space.notify_all()
        try:
            if from_ckpt is not None:
                from ..core.automaton import AnytimeAutomaton
                automaton = AnytimeAutomaton.restore(
                    from_ckpt, builder=session.builder)
            else:
                automaton = session.builder()
            if self.coalesce and session.key is not None:
                # A shared run must outlive the primary whenever a
                # later subscriber still needs it, so keyed runs carry
                # no compiled stop condition; each subscriber's
                # deadline/target is enforced at harvest instead.
                stop = None
            else:
                stop = session.slo.stop_condition(
                    now - session.submitted_at, session.metric)
            sink = session.trace if session.trace is not None \
                else self._sink
            if self.executor == "process":
                handle = automaton.launch_processes(
                    stop=stop, faults=session.faults,
                    injector=self._injector, trace=sink,
                    grace_s=self._grace_s)
            else:
                handle = automaton.launch_threaded(
                    stop=stop, faults=session.faults,
                    injector=self._injector, trace=sink)
        except Exception as exc:
            # a broken builder (or unreadable checkpoint) fails only
            # this request; subscribers get requeued under their own
            # builders
            live = [f for f in session._followers
                    if not f._cancel_requested]
            for follower in list(session._followers):
                if follower._cancel_requested:
                    self._detach(session, follower,
                                 SessionState.CANCELLED, now)
            if live:
                self._promote(session, live, now, into_queue=True)
            session._followers = []
            if session in self._scheduled:
                self._scheduled.remove(session)
            self._discard_ckpt(session)
            session._terminalize(
                SessionState.FAILED, session.snapshot(), now,
                errors=(f"{type(exc).__name__}: {exc}",))
            self.counters["failed"] += 1
            self._trace("server.complete", session, now, state="failed")
            self._finished.append(session)
            return
        session._handle = handle
        session._state = SessionState.RUNNING
        if session._first_run_at is None:
            session._first_run_at = now
        session._dispatched_at = now
        for follower in session._followers:
            follower._state = SessionState.RUNNING
            if follower._first_run_at is None:
                follower._first_run_at = now
        if from_ckpt is not None:
            # the run is back in memory; its on-disk state is consumed
            self._discard_ckpt(session)
            session._restores += 1
            self.counters["restores"] += 1
            self._trace("server.restore_ckpt", session, now)
            return
        self.counters["admitted"] += 1
        self._scheduled.append(session)
        self._trace("server.admit", session, now,
                    queued_s=round(now - session.submitted_at, 6))

    def _promote(self, session: Session, live: list[Session],
                 now: float, into_queue: bool = False) -> Session:
        """Hand the session's run (or queue position) to its first live
        subscriber.  ``session._followers`` must already equal ``live``
        (cancelled stragglers detached); the caller terminalizes
        ``session`` itself afterwards."""
        heir = live[0]
        heir._primary = None
        heir._followers = list(live[1:])
        for follower in heir._followers:
            follower._primary = heir
        session._followers = []
        if into_queue:
            heir._state = SessionState.QUEUED
            heir._ready_since = now
            self._queue.append(heir)
        else:
            heir._handle = session._handle
            heir._state = session._state
            heir._dispatched_at = session._dispatched_at
            heir._run_s = session._run_s
            heir._ready_since = session._ready_since
            if heir._first_run_at is None:
                heir._first_run_at = now
            self._scheduled[self._scheduled.index(session)] = heir
        self.counters["promotions"] += 1
        self._trace("server.promote", heir, now, primary=session.name,
                    queued=into_queue)
        return heir

    def _finish(self, session: Session, state: SessionState, now: float,
                interrupted: bool = False,
                whole_run: bool = True) -> None:
        """Stop, harvest and terminalize a scheduled session.

        ``whole_run=False`` means only *this* subscriber's SLO resolved
        (deadline, target, cancel): if other live subscribers share the
        run, the session detaches with a pinned snapshot and the run is
        promoted to the next subscriber instead of being stopped — the
        run continues until its most-demanding live subscriber is
        satisfied.
        """
        handle = session._handle
        assert handle is not None
        if not whole_run:
            live = [f for f in session._followers
                    if not f._cancel_requested]
            for follower in list(session._followers):
                if follower._cancel_requested:
                    self._detach(session, follower,
                                 SessionState.CANCELLED, now)
            if live:
                self._promote(session, live, now)
                snapshot = handle.snapshot()
                resolved = state
                if state is SessionState.COMPLETED \
                        and snapshot.version == 0:
                    resolved = SessionState.FAILED
                if session._dispatched_at is not None:
                    session._dispatched_at = None
                session._handle = None
                session._terminalize(
                    resolved, snapshot, now,
                    snr_db=self._snr_of(session, snapshot),
                    interrupted=True)
                key = {SessionState.COMPLETED: "completed",
                       SessionState.CANCELLED: "cancelled",
                       SessionState.FAILED: "failed"}.get(resolved)
                if key:
                    self.counters[key] += 1
                self.counters["detaches"] += 1
                kind = ("server.cancel"
                        if resolved is SessionState.CANCELLED
                        else "server.detach")
                self._trace(kind, session, now, state=resolved.value,
                            version=snapshot.version,
                            latency_s=round(now - session.submitted_at,
                                            6))
                self._finished.append(session)
                return
        if not handle.finished:
            # Deadline, met target, or cancellation of a live run: stop
            # it now so the harvest below is bounded by wind-down time,
            # not by grace_s.  (A naturally finished run is left alone
            # so its result is not misreported as stopped early.)
            handle.request_stop()
        if session._dispatched_at is not None:
            session._run_s += now - session._dispatched_at
            session._dispatched_at = None
        run_result = None
        errors: tuple[str, ...] = ()
        degraded = False
        try:
            run_result = handle.result(timeout_s=self._grace_s)
            interrupted = interrupted or run_result.stopped_early
            degraded = bool(run_result.degraded_stages
                            or run_result.failed_stages)
            errors = tuple(f"{stage}: {exc!r}"
                           for stage, exc in run_result.errors)
        except Exception as exc:
            errors = (f"{type(exc).__name__}: {exc}",)
        snapshot = handle.snapshot()
        snr = None
        if session.metric is not None and snapshot.value is not None:
            try:
                snr = float(session.metric(snapshot.value))
            except Exception:
                snr = None
        if state is SessionState.COMPLETED and snapshot.version == 0:
            # Never produced an output version: that is a failure, not
            # an approximation.
            state = SessionState.FAILED
        self._scheduled.remove(session)
        # the whole run is over: every remaining subscriber settles on
        # the same sealed snapshot (identical work, one answer)
        for follower in list(session._followers):
            f_state = (SessionState.CANCELLED
                       if follower._cancel_requested else state)
            f_snr = (snr if follower.metric is session.metric
                     else self._snr_of(follower, snapshot))
            follower._terminalize(
                f_state, snapshot, now, snr_db=f_snr,
                interrupted=(interrupted
                             or f_state is SessionState.CANCELLED),
                degraded=degraded)
            f_key = {SessionState.COMPLETED: "completed",
                     SessionState.CANCELLED: "cancelled",
                     SessionState.FAILED: "failed"}.get(f_state)
            if f_key:
                self.counters[f_key] += 1
            self.counters["detaches"] += 1
            self._trace("server.detach", follower, now,
                        state=f_state.value, primary=session.name,
                        version=snapshot.version)
            self._finished.append(follower)
        session._followers = []
        if state is SessionState.COMPLETED and not interrupted:
            self._memoize(session.key, snapshot, now)
        session._terminalize(state, snapshot, now, snr_db=snr,
                             interrupted=interrupted, degraded=degraded,
                             errors=errors, run_result=run_result)
        key = {SessionState.COMPLETED: "completed",
               SessionState.CANCELLED: "cancelled",
               SessionState.FAILED: "failed"}.get(state)
        if key:
            self.counters[key] += 1
        kind = ("server.cancel" if state is SessionState.CANCELLED
                else "server.complete")
        self._trace(kind, session, now, state=state.value,
                    version=snapshot.version,
                    latency_s=round(now - session.submitted_at, 6))
        self._finished.append(session)

    def _shed(self, session: Session, now: float, reason: str) -> None:
        session._terminalize(SessionState.SHED, session.snapshot(), now)
        self.counters["shed"] += 1
        self._trace("server.shed", session, now, reason=reason,
                    queue_depth=len(self._queue))
        self._finished.append(session)

    def _trace(self, kind: str, session: Session, now: float,
               **extra: Any) -> None:
        if self._sink is None:
            return
        try:
            self._sink.emit(TraceEvent(
                ts=now - self._t0, kind=kind, stage=session.name,
                args={"sid": session.sid, **extra}))
        except Exception:
            pass
