"""Asyncio front end: external clients for a fleet, over TCP.

:class:`AioFrontend` is a single-threaded event-loop server that
accepts external client connections speaking the same length-prefixed
JSON frame protocol as the fleet data plane (:mod:`repro.serve.fleet`)
and bridges them to a :class:`~repro.serve.router.FleetRouter`:

* **Per-connection backpressure.**  Each connection may have at most
  ``max_pending_per_conn`` requests in flight; the frame reader stops
  consuming (and therefore stops ACKing TCP) until one completes, so a
  firehose client is throttled at the socket instead of ballooning the
  router's queues.
* **Idle timeouts.**  A connection with nothing in flight and no frame
  for ``idle_timeout_s`` is told ``bye`` and closed.
* **Graceful drain.**  ``SIGTERM``/``SIGINT`` (see :func:`serve_front`)
  or :meth:`AioFrontend.stop` stops accepting connections, rejects new
  submits with ``state="draining"``, waits for in-flight requests to
  finish delivering, then closes.

Client-bound ops mirror the fleet's: ``ack`` (admission echo), ``done``
(terminal result payload — the router's, including ``value_digest``,
``memo_hit`` and ``fleet_memo``), ``stats``, ``error``, ``bye``.
Worker-bound ops accepted: ``submit`` (``rid`` chosen by the client),
``stats``, ``bye``.  Oversized, truncated, or non-JSON frames get a
structured ``error`` (when the socket still writes) and a close —
never a hang.

:class:`AioFleetClient` is the matching client used by the tests, the
tutorial, and the CI smoke.

The bridge between the router's worker threads and the loop is
:meth:`FleetRequest.add_done_callback` → ``loop.call_soon_threadsafe``;
the front end itself never blocks the loop on router work
(``submit``/``aggregate_stats`` run in the default executor).
"""

from __future__ import annotations

import asyncio
import functools
import json
import signal
import struct
from typing import Any

from .fleet import MAX_FRAME
from .router import FleetRequest, FleetRouter

__all__ = ["AioFrontend", "AioFleetClient", "serve_front"]

_LEN = struct.Struct(">I")


def _pack(obj: dict[str, Any]) -> bytes:
    payload = json.dumps(obj, separators=(",", ":")).encode()
    return _LEN.pack(len(payload)) + payload


async def _read_frame(reader: asyncio.StreamReader,
                      max_frame: int) -> dict[str, Any]:
    """One frame; raises IncompleteReadError on EOF/truncation and
    ValueError on protocol violations (oversized / non-JSON)."""
    header = await reader.readexactly(_LEN.size)
    (length,) = _LEN.unpack(header)
    if length > max_frame:
        raise ValueError(f"declared frame length {length} exceeds "
                         f"max_frame {max_frame}")
    payload = await reader.readexactly(length)
    try:
        msg = json.loads(payload.decode())
    except (ValueError, UnicodeDecodeError) as exc:
        raise ValueError(f"frame payload is not JSON: {exc}") from exc
    if not isinstance(msg, dict):
        raise ValueError("frame payload is not a JSON object")
    return msg


class AioFrontend:
    """Event-loop server bridging external TCP clients to a router."""

    def __init__(self, router: FleetRouter,
                 host: str = "127.0.0.1", port: int = 0, *,
                 max_pending_per_conn: int = 8,
                 idle_timeout_s: float = 60.0,
                 drain_timeout_s: float = 30.0,
                 max_frame: int = MAX_FRAME) -> None:
        self.router = router
        self.host = host
        self.port = port
        self.max_pending_per_conn = int(max_pending_per_conn)
        self.idle_timeout_s = float(idle_timeout_s)
        self.drain_timeout_s = float(drain_timeout_s)
        self.max_frame = int(max_frame)
        self.counters = {"connections": 0, "submits": 0, "dones": 0,
                         "rejected": 0, "frame_errors": 0,
                         "idle_closes": 0}
        self._server: asyncio.AbstractServer | None = None
        self._draining = False
        self._conn_tasks: set[asyncio.Task] = set()
        self._pending_total = 0
        self._all_drained = asyncio.Event()
        self._all_drained.set()

    async def start(self) -> tuple[str, int]:
        """Bind and start serving; returns the actual ``(host, port)``
        (useful with port 0)."""
        self._server = await asyncio.start_server(
            self._on_connection, self.host, self.port)
        sockname = self._server.sockets[0].getsockname()
        self.host, self.port = sockname[0], sockname[1]
        return self.host, self.port

    async def stop(self, drain_timeout_s: float | None = None) -> bool:
        """Graceful drain: stop accepting, refuse new submits, wait
        (bounded) for in-flight requests to deliver, close every
        connection.  True if the drain completed cleanly."""
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        timeout = (self.drain_timeout_s if drain_timeout_s is None
                   else drain_timeout_s)
        clean = True
        try:
            await asyncio.wait_for(self._all_drained.wait(),
                                   timeout=timeout)
        except asyncio.TimeoutError:
            clean = False
        for task in list(self._conn_tasks):
            task.cancel()
        if self._conn_tasks:
            await asyncio.gather(*self._conn_tasks,
                                 return_exceptions=True)
        return clean

    # -- internals --------------------------------------------------------

    def _pending_delta(self, delta: int) -> None:
        self._pending_total += delta
        if self._pending_total <= 0:
            self._all_drained.set()
        else:
            self._all_drained.clear()

    async def _on_connection(self, reader: asyncio.StreamReader,
                             writer: asyncio.StreamWriter) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
            task.add_done_callback(self._conn_tasks.discard)
        self.counters["connections"] += 1
        loop = asyncio.get_running_loop()
        pending: dict[int, FleetRequest] = {}
        done_queue: asyncio.Queue = asyncio.Queue()

        async def send(obj: dict[str, Any]) -> None:
            writer.write(_pack(obj))
            await writer.drain()

        def bridge(rid: int, request: FleetRequest) -> None:
            # runs on a router worker/reader thread
            loop.call_soon_threadsafe(done_queue.put_nowait,
                                      (rid, request))

        async def flush_done(block: bool) -> int:
            flushed = 0
            while pending:
                if block:
                    rid, request = await done_queue.get()
                else:
                    try:
                        rid, request = done_queue.get_nowait()
                    except asyncio.QueueEmpty:
                        break
                if pending.pop(rid, None) is None:
                    continue
                self._pending_delta(-1)
                payload = dict(request.result(timeout_s=0.0))
                payload["op"] = "done"
                payload["rid"] = rid
                self.counters["dones"] += 1
                await send(payload)
                flushed += 1
                if block:
                    break
            return flushed

        try:
            while True:
                read = asyncio.ensure_future(
                    _read_frame(reader, self.max_frame))
                idle_since = loop.time()
                while not read.done():
                    # serve completed results while waiting for the
                    # next frame; enforce the idle timeout only when
                    # nothing is in flight
                    await flush_done(block=False)
                    if pending:
                        timeout = 0.05
                    else:
                        timeout = (idle_since + self.idle_timeout_s
                                   - loop.time())
                        if timeout <= 0:
                            read.cancel()
                            self.counters["idle_closes"] += 1
                            try:
                                await send({"op": "bye",
                                            "reason": "idle-timeout"})
                            except (ConnectionError, OSError):
                                pass
                            return
                    await asyncio.wait([read], timeout=timeout)
                try:
                    msg = read.result()
                except (asyncio.IncompleteReadError, ConnectionError):
                    return          # clean EOF or mid-frame disconnect
                except ValueError as exc:
                    self.counters["frame_errors"] += 1
                    try:
                        await send({"op": "error", "error": str(exc)})
                    except (ConnectionError, OSError):
                        pass
                    return
                op = msg.get("op")
                if op == "submit":
                    rid = int(msg.get("rid", 0))
                    if self._draining:
                        self.counters["rejected"] += 1
                        await send({"op": "ack", "rid": rid,
                                    "state": "draining"})
                        continue
                    while len(pending) >= self.max_pending_per_conn:
                        # backpressure: stop reading frames until a
                        # slot frees (TCP pushes back on the client)
                        await flush_done(block=True)
                    try:
                        request = await loop.run_in_executor(
                            None, functools.partial(
                                self.router.submit, msg["app"],
                                size=int(msg.get("size", 32)),
                                seed=int(msg.get("seed", 0)),
                                slo=msg.get("slo"),
                                wait_s=float(msg.get("wait_s", 0.0))))
                    except Exception as exc:
                        # a bad spec fails only this request
                        await send({"op": "done", "rid": rid,
                                    "state": "failed",
                                    "errors": [f"{type(exc).__name__}:"
                                               f" {exc}"]})
                        continue
                    pending[rid] = request
                    self._pending_delta(+1)
                    self.counters["submits"] += 1
                    await send({"op": "ack", "rid": rid,
                                "state": "accepted",
                                "pending": len(pending)})
                    request.add_done_callback(
                        functools.partial(bridge, rid))
                elif op == "stats":
                    stats = await loop.run_in_executor(
                        None, self.router.aggregate_stats)
                    await send({"op": "stats", "rid": msg.get("rid"),
                                "stats": stats,
                                "frontend": dict(self.counters)})
                elif op in ("bye", "shutdown"):
                    while pending:
                        await flush_done(block=True)
                    await send({"op": "bye"})
                    return
                # unknown ops ignored: forward compatibility
        except asyncio.CancelledError:
            raise
        except (ConnectionError, OSError):
            return
        finally:
            for rid in list(pending):
                pending.pop(rid, None)
                self._pending_delta(-1)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass


class AioFleetClient:
    """Async client for :class:`AioFrontend` (tests / tutorial / CI).

    ``submit`` returns once the front end ACKs and resolves to an
    awaitable future of the terminal ``done`` payload.
    """

    def __init__(self, reader: asyncio.StreamReader,
                 writer: asyncio.StreamWriter,
                 max_frame: int = MAX_FRAME) -> None:
        self._reader = reader
        self._writer = writer
        self._max_frame = max_frame
        self._rids = iter(range(1, 1 << 31))
        self._acks: dict[int, asyncio.Future] = {}
        self._dones: dict[int, asyncio.Future] = {}
        self._stats: list[asyncio.Future] = []
        self._closed = asyncio.get_running_loop().create_future()
        self._task = asyncio.ensure_future(self._read_loop())

    @classmethod
    async def connect(cls, host: str, port: int,
                      **kwargs: Any) -> "AioFleetClient":
        reader, writer = await asyncio.open_connection(host, port)
        return cls(reader, writer, **kwargs)

    async def _read_loop(self) -> None:
        error: Exception | None = None
        try:
            while True:
                msg = await _read_frame(self._reader, self._max_frame)
                op = msg.get("op")
                if op == "ack":
                    fut = self._acks.pop(int(msg.get("rid", 0)), None)
                    if fut is not None and not fut.done():
                        fut.set_result(msg)
                elif op == "done":
                    fut = self._dones.pop(int(msg.get("rid", 0)), None)
                    if fut is not None and not fut.done():
                        fut.set_result(msg)
                elif op == "stats":
                    if self._stats:
                        fut = self._stats.pop(0)
                        if not fut.done():
                            fut.set_result(msg)
                elif op == "error":
                    error = RuntimeError(msg.get("error", "protocol"))
                    return
                elif op == "bye":
                    return
        except (asyncio.IncompleteReadError, ConnectionError):
            return
        except ValueError as exc:
            error = exc
            return
        finally:
            eof = error or ConnectionError("frontend closed")
            for table in (self._acks, self._dones):
                for fut in table.values():
                    if not fut.done():
                        fut.set_exception(eof)
                table.clear()
            for fut in self._stats:
                if not fut.done():
                    fut.set_exception(eof)
            self._stats.clear()
            if not self._closed.done():
                if error is not None:
                    self._closed.set_exception(error)
                else:
                    self._closed.set_result(None)

    async def _send(self, obj: dict[str, Any]) -> None:
        self._writer.write(_pack(obj))
        await self._writer.drain()

    async def submit(self, app: str, size: int = 32, seed: int = 0,
                     slo: dict[str, Any] | None = None,
                     wait_s: float = 0.0) -> asyncio.Future:
        """Submit one spec; returns after the ACK with a future that
        resolves to the ``done`` payload."""
        loop = asyncio.get_running_loop()
        rid = next(self._rids)
        ack_fut = self._acks[rid] = loop.create_future()
        done = self._dones[rid] = loop.create_future()
        await self._send({"op": "submit", "rid": rid, "app": app,
                          "size": size, "seed": seed, "slo": slo,
                          "wait_s": wait_s})
        ack = await ack_fut
        if ack.get("state") != "accepted":
            self._dones.pop(rid, None)
            if not done.done():
                done.set_result({"op": "done", "rid": rid,
                                 "state": ack.get("state", "rejected"),
                                 "errors": ["not accepted"]})
        return done

    async def stats(self) -> dict[str, Any]:
        loop = asyncio.get_running_loop()
        fut = loop.create_future()
        self._stats.append(fut)
        await self._send({"op": "stats"})
        return await fut

    async def close(self, polite: bool = True) -> None:
        """Close the connection (``bye`` first when ``polite`` — the
        front end flushes every pending ``done`` before replying)."""
        if polite:
            try:
                await self._send({"op": "bye"})
                await asyncio.wait_for(asyncio.shield(self._closed),
                                       timeout=10.0)
            except (ConnectionError, OSError, asyncio.TimeoutError):
                pass
        self._task.cancel()
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionError, OSError):
            pass


def serve_front(router: FleetRouter, host: str = "127.0.0.1",
                port: int = 0,
                announce: Any = None, **kwargs: Any) -> None:
    """Run a front end until SIGTERM/SIGINT, then drain gracefully
    (the blocking entry point behind ``repro serve-front``)."""

    async def main() -> None:
        front = AioFrontend(router, host, port, **kwargs)
        bound = await front.start()
        if announce is not None:
            announce(*bound)
        loop = asyncio.get_running_loop()
        stop_requested = asyncio.Event()
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(signum, stop_requested.set)
            except (NotImplementedError, RuntimeError):
                pass
        await stop_requested.wait()
        await front.stop()

    asyncio.run(main())
