"""Fleet data plane: the wire protocol and the worker process.

A serving fleet is a front-end :class:`~repro.serve.router.FleetRouter`
plus N workers.  Each worker runs one
:class:`~repro.serve.server.AnytimeServer` behind a stdlib socket —
either a forked process on an ``AF_UNIX`` socketpair or a remote
process reached over TCP (:mod:`repro.serve.transport`) — speaking a
length-prefixed JSON protocol (4-byte big-endian length + UTF-8 JSON
object).  Requests are *declarative* — ``(app, size, seed, SLO)`` —
never closures, so the router can re-dispatch one verbatim to a
different worker when its home worker dies: building the automaton
from the spec is idempotent and the anytime model makes any re-run's
sealed versions equally valid answers.

Worker-bound ops: ``submit`` ``stats`` ``shutdown`` plus the in-band
checkpoint transfer ``ckpt_begin`` / ``ckpt_chunk`` / ``ckpt_end``
(chunked base64 ``.rck`` bytes, sha256-verified, so migration never
assumes a shared filesystem).
Router-bound ops: ``ack`` (admission outcome + queue depth, the
backpressure signal), ``done`` (terminal result, sent by the worker's
completion pump), ``stats`` (reply), ``ckpt_ack`` (transfer outcome),
``error`` (structured protocol violation report), ``bye``.

Results cross the wire as metrics plus a :func:`value_digest` of the
sealed output — not the output array itself — so conformance tests can
assert bit-identity between coalesced and solo answers without shipping
megabytes of JSON.  Frames larger than :data:`MAX_FRAME` are rejected
with :class:`FrameError` before any allocation, so a corrupt or hostile
4-byte header can never balloon memory.
"""

from __future__ import annotations

import base64
import binascii
import hashlib
import json
import math
import os
import socket
import struct
import tempfile
import threading
import time as _time
from typing import Any

import numpy as np

from .digest import input_digest, request_key

__all__ = ["send_msg", "recv_msg", "spec_key", "value_digest",
           "ckpt_filename", "worker_main", "WORKER_DEFAULTS",
           "MAX_FRAME", "FrameError", "CKPT_CHUNK_BYTES"]

_LEN = struct.Struct(">I")

#: upper bound on one frame's JSON payload; large enough for a
#: base64-encoded checkpoint chunk with headroom, small enough that a
#: corrupt length prefix cannot trigger an unbounded allocation
MAX_FRAME = 16 * 1024 * 1024

#: raw bytes per in-band checkpoint chunk (~341 KiB after base64)
CKPT_CHUNK_BYTES = 256 * 1024


class FrameError(RuntimeError):
    """A peer violated the wire protocol (oversized or non-JSON frame).

    Distinct from a clean EOF (``recv_msg`` → None): the connection is
    unusable and must be closed, but the violation is reportable."""

WORKER_DEFAULTS: dict[str, Any] = {
    "slots": 2,
    "queue_limit": 8,
    "executor": "threaded",
    "quantum_s": 0.02,
    "tick_s": 0.005,
    "coalesce": True,
    "memo_ttl_s": 5.0,
    # checkpoint directory for suspend-and-resume serving; the router
    # gives each worker its own subdirectory when migration is enabled
    "resume_dir": None,
    # attach a per-run invariant Checker (repro.check) to every
    # submission and report its violation count in `done` messages
    "check": False,
}


# -- wire protocol -------------------------------------------------------

def send_msg(sock: socket.socket, obj: dict[str, Any],
             lock: threading.Lock | None = None) -> None:
    """Send one length-prefixed JSON message (atomic under ``lock``)."""
    payload = json.dumps(obj, separators=(",", ":")).encode()
    frame = _LEN.pack(len(payload)) + payload
    if lock is not None:
        with lock:
            sock.sendall(frame)
    else:
        sock.sendall(frame)


def _recv_exact(sock: socket.socket, n: int) -> bytes | None:
    buf = b""
    while len(buf) < n:
        chunk = sock.recv(n - len(buf))
        if not chunk:
            return None
        buf += chunk
    return buf


def recv_msg(sock: socket.socket,
             max_frame: int = MAX_FRAME) -> dict[str, Any] | None:
    """Receive one message; None on a clean or torn-down connection.

    Raises :class:`FrameError` on a protocol violation: a declared
    length above ``max_frame`` (rejected *before* allocating) or a
    payload that is not a JSON object.
    """
    header = _recv_exact(sock, _LEN.size)
    if header is None:
        return None
    (length,) = _LEN.unpack(header)
    if length > max_frame:
        raise FrameError(f"declared frame length {length} exceeds "
                         f"max_frame {max_frame}")
    payload = _recv_exact(sock, length)
    if payload is None:
        return None
    try:
        msg = json.loads(payload.decode())
    except (ValueError, UnicodeDecodeError) as exc:
        raise FrameError(f"frame payload is not JSON: {exc}") from exc
    if not isinstance(msg, dict):
        raise FrameError(f"frame payload is not a JSON object: "
                         f"{type(msg).__name__}")
    return msg


# -- request/result identity --------------------------------------------

_spec_keys: dict[tuple[str, int, int], str] = {}
_spec_lock = threading.Lock()


def spec_key(app: str, size: int, seed: int = 0) -> str:
    """Canonical coalescing/placement key of a declarative request.

    Materializes the input once per (app, size, seed) to digest its
    actual bytes — content-addressed, so the router and every worker
    agree on identity without exchanging arrays.
    """
    spec = (app, int(size), int(seed))
    with _spec_lock:
        key = _spec_keys.get(spec)
    if key is None:
        from ..apps.registry import get_app

        image = get_app(app).make_input(spec[1], spec[2])
        key = request_key(app, input_digest(app, image, size=spec[1],
                                            seed=spec[2]))
        with _spec_lock:
            _spec_keys[spec] = key
    return key


def ckpt_filename(key: str) -> str:
    """File name a worker's server gives a keyed run's suspend
    checkpoint (mirrors ``AnytimeServer._ckpt_file``), so the router
    can locate a dead worker's checkpoints by request key alone."""
    return key.replace(":", "_").replace("/", "_") + ".rck"


def value_digest(value: Any) -> str:
    """Stable hash of an output value (arrays, dicts of arrays, scalars)
    so bit-identity can be asserted across the wire."""
    h = hashlib.sha256()

    def feed(v: Any) -> None:
        if isinstance(v, dict):
            for k in sorted(v, key=str):
                h.update(f"|k={k}".encode())
                feed(v[k])
        elif isinstance(v, (list, tuple)):
            for item in v:
                h.update(b"|i")
                feed(item)
        else:
            try:
                arr = np.ascontiguousarray(np.asarray(v))
                h.update(f"|{arr.dtype.str}{arr.shape}".encode())
                h.update(arr.tobytes())
            except Exception:
                h.update(repr(v).encode())

    feed(value)
    return h.hexdigest()


# -- the worker process --------------------------------------------------

def _resuming_builder(path: str, builder: Any) -> Any:
    """A builder that continues a migrated run from its checkpoint,
    falling back to a fresh build when the file is gone or unreadable
    (a fresh run's sealed versions are equally valid answers)."""
    def build() -> Any:
        from ..ckpt import CheckpointError
        from ..core.automaton import AnytimeAutomaton
        try:
            automaton = AnytimeAutomaton.restore(path, builder=builder)
        except (CheckpointError, OSError):
            return builder()
        try:
            os.unlink(path)   # consumed: never resume the past twice
        except OSError:
            pass
        return automaton
    return build


class _CheckedRun:
    """Trace sink + checker registry for one checked submission.

    Each (re)build of the session's automaton — fresh, migrated, or
    restored from a suspend checkpoint — gets its own
    :class:`~repro.check.invariants.Checker` wired to the new graph;
    events route to the newest one.  Only the last checker is closed
    (earlier segments end mid-stream by design, so their end-of-trace
    checks would be vacuously noisy), but live violations from every
    segment count.
    """

    def __init__(self) -> None:
        self.checkers: list[Any] = []

    # TraceSink protocol -------------------------------------------------
    def emit(self, event: Any) -> None:
        if self.checkers:
            self.checkers[-1].emit(event)

    def close(self) -> None:
        pass

    def violation_count(self) -> int | None:
        """Total violations across segments; None if nothing ever ran
        (coalesced follower / memo answer — no run of its own)."""
        if not self.checkers:
            return None
        try:
            self.checkers[-1].close()
        except Exception:
            pass
        return sum(len(c.violations) for c in self.checkers)


def _checked_builder(builder: Any, hash_values: bool) -> tuple[Any, _CheckedRun]:
    """Wrap ``builder`` so every automaton it yields gets a fresh
    per-run Checker (seeded when the graph was restored mid-stream)."""
    cell = _CheckedRun()

    def build() -> Any:
        from ..check import Checker

        automaton = builder()
        checker = Checker.for_graph(automaton.graph,
                                    hash_values=hash_values)
        if any(buf.snapshot().version > 0
               for buf in automaton.graph.buffers.values()):
            checker.seed_resumed(automaton.graph)
        cell.checkers.append(checker)
        return automaton

    return build, cell


class _CkptReceiver:
    """Reassemble in-band checkpoint transfers (``ckpt_begin`` /
    ``ckpt_chunk`` / ``ckpt_end``) into local ``.rck`` files.

    Bytes are verified twice before a transfer is accepted: the running
    sha256 must match the sender's declared digest, and the assembled
    file must carry a valid ``RPROCKP1`` header (magic, format version,
    and the header's own payload digest — :func:`repro.ckpt.read_header`).
    """

    def __init__(self, spool_dir: str | None) -> None:
        self._spool_dir = spool_dir
        self._open: dict[int, dict[str, Any]] = {}
        self._ready: dict[int, str] = {}

    def _spool(self) -> str:
        if self._spool_dir is None:
            self._spool_dir = tempfile.mkdtemp(prefix="fleet-xfer-")
        os.makedirs(self._spool_dir, exist_ok=True)
        return self._spool_dir

    def begin(self, msg: dict[str, Any]) -> None:
        xid = int(msg["xid"])
        self.discard(xid)
        path = os.path.join(self._spool(),
                            f"xfer-{xid}-{ckpt_filename(msg['key'])}")
        self._open[xid] = {
            "path": path, "fh": open(path, "wb"),
            "sha": hashlib.sha256(), "received": 0,
            "size": int(msg["size"]), "declared": str(msg["sha256"]),
        }

    def chunk(self, msg: dict[str, Any]) -> None:
        state = self._open.get(int(msg["xid"]))
        if state is None:
            return
        data = base64.b64decode(msg["data"])
        state["fh"].write(data)
        state["sha"].update(data)
        state["received"] += len(data)

    def end(self, msg: dict[str, Any]) -> dict[str, Any]:
        """Finish a transfer; returns the ``ckpt_ack`` reply body."""
        xid = int(msg["xid"])
        state = self._open.pop(xid, None)
        if state is None:
            return {"op": "ckpt_ack", "xid": xid, "ok": False,
                    "error": "unknown transfer id"}
        state["fh"].close()
        error = None
        if state["received"] != state["size"]:
            error = (f"size mismatch: declared {state['size']}, "
                     f"received {state['received']}")
        elif state["sha"].hexdigest() != state["declared"]:
            error = "sha256 mismatch"
        else:
            from ..ckpt import CheckpointError, read_header
            try:
                read_header(state["path"])
            except (CheckpointError, OSError) as exc:
                error = f"invalid checkpoint: {exc}"
        if error is not None:
            try:
                os.unlink(state["path"])
            except OSError:
                pass
            return {"op": "ckpt_ack", "xid": xid, "ok": False,
                    "error": error}
        self._ready[xid] = state["path"]
        return {"op": "ckpt_ack", "xid": xid, "ok": True}

    def take(self, xid: Any) -> str | None:
        """Claim a verified transfer's local path (once)."""
        if xid is None:
            return None
        return self._ready.pop(int(xid), None)

    def discard(self, xid: int) -> None:
        for table in (self._open, self._ready):
            state = table.pop(xid, None)
            if state is None:
                continue
            path = state["path"] if isinstance(state, dict) else state
            if isinstance(state, dict):
                try:
                    state["fh"].close()
                except OSError:
                    pass
            try:
                os.unlink(path)
            except OSError:
                pass


def _done_message(rid: int, result: Any,
                  violations: int | None = None) -> dict[str, Any]:
    snr = result.snr_db
    return {
        "op": "done", "rid": rid,
        "state": result.state.value,
        "latency_s": result.latency_s,
        "queue_s": result.queue_s,
        "snr_db": (snr if snr is not None and math.isfinite(snr)
                   else None),
        "precise_snr": bool(snr is not None and math.isinf(snr)
                            and snr > 0),
        "slo_met": bool(result.slo_met),
        "interrupted": bool(result.interrupted),
        "coalesced": bool(result.coalesced),
        "memo_hit": bool(result.memo_hit),
        "version": result.snapshot.version,
        "final": bool(result.snapshot.final),
        "preemptions": result.preemptions,
        "value_digest": (value_digest(result.snapshot.value)
                         if result.snapshot.value is not None else None),
        "errors": list(result.errors),
        # per-run invariant violations when the worker runs with
        # check=True; None when no run was attached (memo/follower)
        "violations": violations,
    }


def worker_main(sock: socket.socket,
                config: dict[str, Any] | None = None) -> None:
    """Run one fleet worker until its socket closes.

    The reader loop (this thread) admits requests; a completion pump
    thread streams ``done`` messages back as sessions reach terminal
    states, so a slow run never blocks admission of the next request.
    """
    from ..apps.registry import get_app
    from .server import AnytimeServer
    from .slo import SLO

    cfg = {**WORKER_DEFAULTS, **(config or {})}
    server = AnytimeServer(
        slots=int(cfg["slots"]), queue_limit=int(cfg["queue_limit"]),
        executor=cfg["executor"], quantum_s=float(cfg["quantum_s"]),
        tick_s=float(cfg["tick_s"]), coalesce=bool(cfg["coalesce"]),
        memo_ttl_s=float(cfg["memo_ttl_s"]),
        resume_dir=cfg.get("resume_dir")).start()
    send_lock = threading.Lock()
    pending: dict[int, tuple[Any, _CheckedRun | None]] = {}
    pending_lock = threading.Lock()
    stop = threading.Event()
    calibrations: dict[tuple[str, int, int], tuple] = {}
    receiver = _CkptReceiver(
        os.path.join(cfg["resume_dir"], "incoming")
        if cfg.get("resume_dir") else None)

    def calibration(app: str, size: int, seed: int) -> tuple:
        spec = (app, size, seed)
        if spec not in calibrations:
            record = get_app(app)
            image = record.make_input(size, seed)
            reference = (image if record.reference_kind == "input"
                         else record.reference(image))

            def builder(record=record, image=image):
                return record.build(image)

            def metric(value, record=record, reference=reference):
                return record.metric(value, reference)

            calibrations[spec] = (builder, metric,
                                  spec_key(app, size, seed))
        return calibrations[spec]

    def pump() -> None:
        while not stop.is_set():
            ripe = []
            with pending_lock:
                for rid, (session, cell) in list(pending.items()):
                    if session.done:
                        ripe.append((rid, session, cell))
                        del pending[rid]
            for rid, session, cell in ripe:
                violations = (cell.violation_count()
                              if cell is not None else None)
                try:
                    send_msg(sock, _done_message(
                        rid, session.result(timeout_s=0.0),
                        violations=violations), send_lock)
                except OSError:
                    stop.set()
                    return
            stop.wait(0.004)

    pump_thread = threading.Thread(target=pump, daemon=True,
                                   name="fleet-pump")
    pump_thread.start()
    try:
        while True:
            try:
                msg = recv_msg(sock)
            except FrameError as exc:
                # protocol violation: report it in-band if the socket
                # still writes, then close — never hang, never allocate
                # for a corrupt header
                try:
                    send_msg(sock, {"op": "error",
                                    "error": str(exc)}, send_lock)
                except OSError:
                    pass
                return
            if msg is None:          # router went away
                return
            op = msg.get("op")
            if op == "submit":
                rid = int(msg["rid"])
                cell = None
                try:
                    builder, metric, key = calibration(
                        msg["app"], int(msg.get("size", 32)),
                        int(msg.get("seed", 0)))
                    resume_from = (receiver.take(msg.get("resume_xfer"))
                                   or msg.get("resume_from"))
                    if resume_from:
                        builder = _resuming_builder(resume_from, builder)
                    if msg.get("check", cfg.get("check")):
                        builder, cell = _checked_builder(
                            builder,
                            hash_values=cfg["executor"] != "process")
                    slo_spec = msg.get("slo") or {}
                    slo = SLO(
                        deadline_s=slo_spec.get("deadline_s"),
                        target_db=slo_spec.get("target_db"),
                        priority=float(slo_spec.get("priority", 1.0)))
                    session = server.submit(
                        builder, slo, metric=metric, name=f"r{rid}",
                        wait_s=float(msg.get("wait_s", 0.0)),
                        key=key if cfg["coalesce"] else None,
                        trace=cell)
                except Exception as exc:
                    send_msg(sock, {
                        "op": "done", "rid": rid, "state": "failed",
                        "latency_s": 0.0, "queue_s": 0.0,
                        "errors": [f"{type(exc).__name__}: {exc}"],
                    }, send_lock)
                    continue
                with pending_lock:
                    pending[rid] = (session, cell)
                stats = server.stats()
                send_msg(sock, {
                    "op": "ack", "rid": rid,
                    "state": session.state.value,
                    "queue_depth": stats["queued"],
                    "running": stats["running"],
                    "subscribers": stats["subscribers"],
                }, send_lock)
            elif op == "stats":
                send_msg(sock, {"op": "stats",
                                "rid": msg.get("rid"),
                                "stats": server.stats()}, send_lock)
            elif op == "ckpt_begin":
                try:
                    receiver.begin(msg)
                except (KeyError, ValueError, OSError) as exc:
                    send_msg(sock, {"op": "ckpt_ack",
                                    "xid": msg.get("xid"), "ok": False,
                                    "error": str(exc)}, send_lock)
            elif op == "ckpt_chunk":
                try:
                    receiver.chunk(msg)
                except (KeyError, ValueError, OSError,
                        binascii.Error) as exc:
                    receiver.discard(int(msg.get("xid", -1)))
                    send_msg(sock, {"op": "ckpt_ack",
                                    "xid": msg.get("xid"), "ok": False,
                                    "error": str(exc)}, send_lock)
            elif op == "ckpt_end":
                send_msg(sock, receiver.end(msg), send_lock)
            elif op == "shutdown":
                try:
                    send_msg(sock, {"op": "bye"}, send_lock)
                except OSError:
                    pass
                return
            # unknown ops are ignored: a newer router may speak a
            # superset of this protocol
    except OSError:
        return
    finally:
        stop.set()
        pump_thread.join(timeout=2.0)
        server.shutdown()
        try:
            sock.close()
        except OSError:
            pass
