"""Fleet data plane: the wire protocol and the worker process.

A serving fleet is a front-end :class:`~repro.serve.router.FleetRouter`
plus N workers.  Each worker is a separate forked process running one
:class:`~repro.serve.server.AnytimeServer` behind a stdlib socket,
speaking a length-prefixed JSON protocol (4-byte big-endian length +
UTF-8 JSON object).  Requests are *declarative* — ``(app, size, seed,
SLO)`` — never closures, so the router can re-dispatch one verbatim to
a different worker when its home worker dies: building the automaton
from the spec is idempotent and the anytime model makes any re-run's
sealed versions equally valid answers.

Worker-bound ops: ``submit`` ``stats`` ``shutdown``.
Router-bound ops: ``ack`` (admission outcome + queue depth, the
backpressure signal), ``done`` (terminal result, sent by the worker's
completion pump), ``stats`` (reply), ``bye``.

Results cross the wire as metrics plus a :func:`value_digest` of the
sealed output — not the output array itself — so conformance tests can
assert bit-identity between coalesced and solo answers without shipping
megabytes of JSON.
"""

from __future__ import annotations

import hashlib
import json
import math
import os
import socket
import struct
import threading
import time as _time
from typing import Any

import numpy as np

from .digest import input_digest, request_key

__all__ = ["send_msg", "recv_msg", "spec_key", "value_digest",
           "ckpt_filename", "worker_main", "WORKER_DEFAULTS"]

_LEN = struct.Struct(">I")

WORKER_DEFAULTS: dict[str, Any] = {
    "slots": 2,
    "queue_limit": 8,
    "executor": "threaded",
    "quantum_s": 0.02,
    "tick_s": 0.005,
    "coalesce": True,
    "memo_ttl_s": 5.0,
    # checkpoint directory for suspend-and-resume serving; the router
    # gives each worker its own subdirectory when migration is enabled
    "resume_dir": None,
}


# -- wire protocol -------------------------------------------------------

def send_msg(sock: socket.socket, obj: dict[str, Any],
             lock: threading.Lock | None = None) -> None:
    """Send one length-prefixed JSON message (atomic under ``lock``)."""
    payload = json.dumps(obj, separators=(",", ":")).encode()
    frame = _LEN.pack(len(payload)) + payload
    if lock is not None:
        with lock:
            sock.sendall(frame)
    else:
        sock.sendall(frame)


def _recv_exact(sock: socket.socket, n: int) -> bytes | None:
    buf = b""
    while len(buf) < n:
        chunk = sock.recv(n - len(buf))
        if not chunk:
            return None
        buf += chunk
    return buf


def recv_msg(sock: socket.socket) -> dict[str, Any] | None:
    """Receive one message; None on a clean or torn-down connection."""
    header = _recv_exact(sock, _LEN.size)
    if header is None:
        return None
    (length,) = _LEN.unpack(header)
    payload = _recv_exact(sock, length)
    if payload is None:
        return None
    return json.loads(payload.decode())


# -- request/result identity --------------------------------------------

_spec_keys: dict[tuple[str, int, int], str] = {}
_spec_lock = threading.Lock()


def spec_key(app: str, size: int, seed: int = 0) -> str:
    """Canonical coalescing/placement key of a declarative request.

    Materializes the input once per (app, size, seed) to digest its
    actual bytes — content-addressed, so the router and every worker
    agree on identity without exchanging arrays.
    """
    spec = (app, int(size), int(seed))
    with _spec_lock:
        key = _spec_keys.get(spec)
    if key is None:
        from ..apps.registry import get_app

        image = get_app(app).make_input(spec[1], spec[2])
        key = request_key(app, input_digest(app, image, size=spec[1],
                                            seed=spec[2]))
        with _spec_lock:
            _spec_keys[spec] = key
    return key


def ckpt_filename(key: str) -> str:
    """File name a worker's server gives a keyed run's suspend
    checkpoint (mirrors ``AnytimeServer._ckpt_file``), so the router
    can locate a dead worker's checkpoints by request key alone."""
    return key.replace(":", "_").replace("/", "_") + ".rck"


def value_digest(value: Any) -> str:
    """Stable hash of an output value (arrays, dicts of arrays, scalars)
    so bit-identity can be asserted across the wire."""
    h = hashlib.sha256()

    def feed(v: Any) -> None:
        if isinstance(v, dict):
            for k in sorted(v, key=str):
                h.update(f"|k={k}".encode())
                feed(v[k])
        elif isinstance(v, (list, tuple)):
            for item in v:
                h.update(b"|i")
                feed(item)
        else:
            try:
                arr = np.ascontiguousarray(np.asarray(v))
                h.update(f"|{arr.dtype.str}{arr.shape}".encode())
                h.update(arr.tobytes())
            except Exception:
                h.update(repr(v).encode())

    feed(value)
    return h.hexdigest()


# -- the worker process --------------------------------------------------

def _resuming_builder(path: str, builder: Any) -> Any:
    """A builder that continues a migrated run from its checkpoint,
    falling back to a fresh build when the file is gone or unreadable
    (a fresh run's sealed versions are equally valid answers)."""
    def build() -> Any:
        from ..ckpt import CheckpointError
        from ..core.automaton import AnytimeAutomaton
        try:
            automaton = AnytimeAutomaton.restore(path, builder=builder)
        except (CheckpointError, OSError):
            return builder()
        try:
            os.unlink(path)   # consumed: never resume the past twice
        except OSError:
            pass
        return automaton
    return build


def _done_message(rid: int, result: Any) -> dict[str, Any]:
    snr = result.snr_db
    return {
        "op": "done", "rid": rid,
        "state": result.state.value,
        "latency_s": result.latency_s,
        "queue_s": result.queue_s,
        "snr_db": (snr if snr is not None and math.isfinite(snr)
                   else None),
        "precise_snr": bool(snr is not None and math.isinf(snr)
                            and snr > 0),
        "slo_met": bool(result.slo_met),
        "interrupted": bool(result.interrupted),
        "coalesced": bool(result.coalesced),
        "memo_hit": bool(result.memo_hit),
        "version": result.snapshot.version,
        "final": bool(result.snapshot.final),
        "preemptions": result.preemptions,
        "value_digest": (value_digest(result.snapshot.value)
                         if result.snapshot.value is not None else None),
        "errors": list(result.errors),
    }


def worker_main(sock: socket.socket,
                config: dict[str, Any] | None = None) -> None:
    """Run one fleet worker until its socket closes.

    The reader loop (this thread) admits requests; a completion pump
    thread streams ``done`` messages back as sessions reach terminal
    states, so a slow run never blocks admission of the next request.
    """
    from ..apps.registry import get_app
    from .server import AnytimeServer
    from .slo import SLO

    cfg = {**WORKER_DEFAULTS, **(config or {})}
    server = AnytimeServer(
        slots=int(cfg["slots"]), queue_limit=int(cfg["queue_limit"]),
        executor=cfg["executor"], quantum_s=float(cfg["quantum_s"]),
        tick_s=float(cfg["tick_s"]), coalesce=bool(cfg["coalesce"]),
        memo_ttl_s=float(cfg["memo_ttl_s"]),
        resume_dir=cfg.get("resume_dir")).start()
    send_lock = threading.Lock()
    pending: dict[int, Any] = {}
    pending_lock = threading.Lock()
    stop = threading.Event()
    calibrations: dict[tuple[str, int, int], tuple] = {}

    def calibration(app: str, size: int, seed: int) -> tuple:
        spec = (app, size, seed)
        if spec not in calibrations:
            record = get_app(app)
            image = record.make_input(size, seed)
            reference = (image if record.reference_kind == "input"
                         else record.reference(image))

            def builder(record=record, image=image):
                return record.build(image)

            def metric(value, record=record, reference=reference):
                return record.metric(value, reference)

            calibrations[spec] = (builder, metric,
                                  spec_key(app, size, seed))
        return calibrations[spec]

    def pump() -> None:
        while not stop.is_set():
            ripe = []
            with pending_lock:
                for rid, session in list(pending.items()):
                    if session.done:
                        ripe.append((rid, session))
                        del pending[rid]
            for rid, session in ripe:
                try:
                    send_msg(sock, _done_message(
                        rid, session.result(timeout_s=0.0)), send_lock)
                except OSError:
                    stop.set()
                    return
            stop.wait(0.004)

    pump_thread = threading.Thread(target=pump, daemon=True,
                                   name="fleet-pump")
    pump_thread.start()
    try:
        while True:
            msg = recv_msg(sock)
            if msg is None:          # router went away
                return
            op = msg.get("op")
            if op == "submit":
                rid = int(msg["rid"])
                try:
                    builder, metric, key = calibration(
                        msg["app"], int(msg.get("size", 32)),
                        int(msg.get("seed", 0)))
                    resume_from = msg.get("resume_from")
                    if resume_from:
                        builder = _resuming_builder(resume_from, builder)
                    slo_spec = msg.get("slo") or {}
                    slo = SLO(
                        deadline_s=slo_spec.get("deadline_s"),
                        target_db=slo_spec.get("target_db"),
                        priority=float(slo_spec.get("priority", 1.0)))
                    session = server.submit(
                        builder, slo, metric=metric, name=f"r{rid}",
                        wait_s=float(msg.get("wait_s", 0.0)),
                        key=key if cfg["coalesce"] else None)
                except Exception as exc:
                    send_msg(sock, {
                        "op": "done", "rid": rid, "state": "failed",
                        "latency_s": 0.0, "queue_s": 0.0,
                        "errors": [f"{type(exc).__name__}: {exc}"],
                    }, send_lock)
                    continue
                with pending_lock:
                    pending[rid] = session
                stats = server.stats()
                send_msg(sock, {
                    "op": "ack", "rid": rid,
                    "state": session.state.value,
                    "queue_depth": stats["queued"],
                    "running": stats["running"],
                    "subscribers": stats["subscribers"],
                }, send_lock)
            elif op == "stats":
                send_msg(sock, {"op": "stats",
                                "rid": msg.get("rid"),
                                "stats": server.stats()}, send_lock)
            elif op == "shutdown":
                try:
                    send_msg(sock, {"op": "bye"}, send_lock)
                except OSError:
                    pass
                return
            # unknown ops are ignored: a newer router may speak a
            # superset of this protocol
    except OSError:
        return
    finally:
        stop.set()
        pump_thread.join(timeout=2.0)
        server.shutdown()
        try:
            sock.close()
        except OSError:
            pass
