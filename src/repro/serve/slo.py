"""Service-level objectives for anytime requests.

An :class:`SLO` states what "good enough" means for one request: a wall-
clock deadline counted from *submission* (queue wait included — the
client experiences total latency, not run time), a target output quality
in dB, or both.  The paper's interruptibility guarantee is what makes
these objectives cheap to enforce: a request stopped at its deadline
returns whatever valid approximation its output buffer holds, and a
request that reached its target dB early frees its slot for queued work.

SLOs compile onto the existing :class:`~repro.core.controller`
stop-condition algebra (``DeadlineStop | AccuracyTarget``) so the
in-run enforcement path is exactly the one interactive and planned runs
already use; the server adds only the between-writes enforcement a stop
condition cannot provide (stop conditions are consulted on terminal
writes, and a paused or stalled request writes nothing).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from ..core.controller import (AccuracyTarget, AnyOf, DeadlineStop,
                               StopCondition)

__all__ = ["SLO"]


@dataclass(frozen=True)
class SLO:
    """What one request needs: latency bound, quality target, weight.

    Parameters
    ----------
    deadline_s:
        Wall-clock latency bound in seconds, measured from submission
        (time spent queued counts).  None = no deadline.
    target_db:
        Output quality (dB, by the request's metric) at which the
        request is satisfied and may be finished early.  None = run to
        the precise output unless the deadline fires.
    priority:
        Relative weight for the scheduler (>= larger is more
        important); policies may use it to break ties.
    """

    deadline_s: float | None = None
    target_db: float | None = None
    priority: float = 1.0

    def __post_init__(self) -> None:
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise ValueError(
                f"deadline_s must be positive: {self.deadline_s}")
        if self.priority <= 0:
            raise ValueError(
                f"priority must be positive: {self.priority}")

    def deadline_at(self, submitted_at: float) -> float | None:
        """Absolute monotonic deadline for a given submission time."""
        if self.deadline_s is None:
            return None
        return submitted_at + self.deadline_s

    def stop_condition(self, queued_s: float,
                       metric: Callable[[Any], float] | None,
                       ) -> StopCondition | None:
        """Compile to the stop-condition algebra for an admitted run.

        ``queued_s`` is how long the request already waited in the
        admission queue: the in-run deadline is the *remaining* wall
        budget (executor record times are seconds from run start).
        ``metric`` maps an output value to dB; without one the quality
        target cannot be checked in-run and is left to the scheduler.
        """
        conditions: list[StopCondition] = []
        if self.deadline_s is not None:
            remaining = max(self.deadline_s - queued_s, 0.0)
            conditions.append(DeadlineStop(remaining))
        if self.target_db is not None and metric is not None:
            conditions.append(AccuracyTarget(metric, self.target_db))
        if not conditions:
            return None
        if len(conditions) == 1:
            return conditions[0]
        return AnyOf(*conditions)
