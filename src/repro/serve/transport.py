"""Pluggable fleet transports: how a router reaches its workers.

The fleet's wire protocol (:mod:`repro.serve.fleet`) is transport-
agnostic — length-prefixed JSON frames over any stream socket.  This
module supplies the two ways a :class:`~repro.serve.router.FleetRouter`
obtains those sockets:

:class:`ForkTransport`
    The original single-host mode: fork a worker process per ring
    index over an ``AF_UNIX`` socketpair.  Dead workers are
    re-forkable (``respawnable``), so the router replaces them at the
    same ring index.

:class:`TcpTransport`
    Cross-host mode: connect to externally launched workers
    (``repro serve-worker --listen host:port``) over ``AF_INET``.  The
    router does not own those processes, so a dead worker is *not*
    respawned — its keys and in-flight requests migrate to survivors,
    with suspend checkpoints shipped in-band (the destination never
    needs a shared filesystem).

Helpers: :func:`parse_endpoint` (``"host:port"`` → tuple),
:func:`serve_worker_listener` (the accept loop behind
``repro serve-worker``), and :func:`spawn_local_tcp_worker` (fork a
localhost TCP worker and report its bound port — what tests, the
bench's TCP leg, and the tutorial use to stand up a fleet without
separate terminals).
"""

from __future__ import annotations

import multiprocessing
import os
import socket
from typing import Any, Callable

from .fleet import worker_main

__all__ = ["parse_endpoint", "ForkTransport", "TcpTransport",
           "serve_worker_listener", "spawn_local_tcp_worker"]


def parse_endpoint(text: str) -> tuple[str, int]:
    """``"host:port"`` → ``(host, port)`` (host may contain colons only
    if bracketed is not needed — IPv4/hostname form)."""
    host, sep, port = text.rpartition(":")
    if not sep or not host or not port.isdigit():
        raise ValueError(f"endpoint must be host:port, got {text!r}")
    return host, int(port)


class ForkTransport:
    """Fork one worker per ring index over an AF_UNIX socketpair."""

    #: the router may fork a replacement at a dead worker's ring index
    respawnable = True

    def spawn(self, index: int,
              config: dict[str, Any]) -> tuple[Any, socket.socket]:
        ctx = multiprocessing.get_context("fork")
        parent_sock, child_sock = socket.socketpair()
        process = ctx.Process(
            target=_fork_entry, args=(child_sock, config),
            name=f"fleet-worker-{index}", daemon=True)
        process.start()
        child_sock.close()
        return process, parent_sock


def _fork_entry(sock: socket.socket, config: dict[str, Any]) -> None:
    worker_main(sock, config)


class TcpTransport:
    """Connect to externally launched TCP workers, one per endpoint.

    The worker at ``endpoints[i]`` takes ring index ``i``.  Worker
    behaviour (slots, executor, resume_dir, …) is fixed by whoever
    launched the worker; the router's ``worker_config`` does not cross
    the wire.  Workers are not owned by the router: a death is
    terminal for that ring index (no respawn), and survivors absorb
    its key range.
    """

    respawnable = False

    def __init__(self, endpoints: list[str | tuple[str, int]],
                 connect_timeout_s: float = 10.0) -> None:
        if not endpoints:
            raise ValueError("TcpTransport needs at least one endpoint")
        self.endpoints = [ep if isinstance(ep, tuple)
                          else parse_endpoint(ep) for ep in endpoints]
        self.connect_timeout_s = connect_timeout_s

    def spawn(self, index: int,
              config: dict[str, Any]) -> tuple[None, socket.socket]:
        host, port = self.endpoints[index]
        sock = socket.create_connection((host, port),
                                        timeout=self.connect_timeout_s)
        sock.settimeout(None)
        try:
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        except OSError:
            pass
        return None, sock


def serve_worker_listener(listen: str | tuple[str, int],
                          config: dict[str, Any] | None = None,
                          *, once: bool = True,
                          announce: Callable[[str, int], None]
                          | None = None) -> None:
    """Bind a TCP listener and serve routers (``repro serve-worker``).

    Accepts one router connection at a time and runs
    :func:`~repro.serve.fleet.worker_main` on it (a fresh
    ``AnytimeServer`` per connection); returns after the first router
    disconnects unless ``once=False``.  ``announce`` receives the
    actually bound ``(host, port)`` — useful with port 0.
    """
    host, port = (parse_endpoint(listen) if isinstance(listen, str)
                  else listen)
    listener = socket.create_server((host, port))
    try:
        bound = listener.getsockname()
        if announce is not None:
            announce(bound[0], bound[1])
        while True:
            conn, _ = listener.accept()
            try:
                conn.setsockopt(socket.IPPROTO_TCP,
                                socket.TCP_NODELAY, 1)
            except OSError:
                pass
            try:
                worker_main(conn, config)
            finally:
                try:
                    conn.close()
                except OSError:
                    pass
            if once:
                return
    finally:
        try:
            listener.close()
        except OSError:
            pass


def spawn_local_tcp_worker(config: dict[str, Any] | None = None,
                           host: str = "127.0.0.1",
                           start_timeout_s: float = 15.0,
                           ) -> tuple[Any, tuple[str, int]]:
    """Fork a localhost TCP worker; returns ``(process, (host, port))``.

    The child binds an ephemeral port, reports it back over a pipe,
    then accepts exactly one router connection and serves it to EOF.
    The caller owns the process (terminate/join it after shutting the
    router down).
    """
    ctx = multiprocessing.get_context("fork")
    ready_r, ready_w = ctx.Pipe(duplex=False)
    process = ctx.Process(
        target=_tcp_worker_entry, args=(host, ready_w, config or {}),
        name="fleet-tcp-worker", daemon=True)
    process.start()
    ready_w.close()
    if not ready_r.poll(start_timeout_s):
        process.terminate()
        process.join(timeout=2.0)
        raise RuntimeError("TCP worker did not report a bound port")
    port = ready_r.recv()
    ready_r.close()
    return process, (host, int(port))


def _tcp_worker_entry(host: str, ready: Any,
                      config: dict[str, Any]) -> None:
    listener = socket.create_server((host, 0))
    ready.send(listener.getsockname()[1])
    ready.close()
    conn, _ = listener.accept()
    listener.close()
    try:
        conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
    except OSError:
        pass
    worker_main(conn, config)
    os._exit(0)
