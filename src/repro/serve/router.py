"""Fleet front end: shard anytime requests across worker processes.

:class:`FleetRouter` owns N forked :mod:`~repro.serve.fleet` workers
and places each declarative request ``(app, size, seed, SLO)`` by its
canonical work identity (:func:`~repro.serve.fleet.spec_key`):

* **Sticky consistent-hash placement.**  A key hashes onto a virtual-
  node ring; identical work therefore lands on the same worker, where
  the server coalesces it onto one shared run (or answers from its
  sealed-results memo).  A short-TTL affinity table pins a key to the
  worker that actually took it, so fallback decisions stay sticky too.
* **Least-loaded fallback for cold keys.**  A key the fleet has never
  seen may be diverted from its ring home to the least-loaded worker
  when the home is clearly busier — cold keys have no run to join, so
  placement freedom is free capacity.
* **Backpressure surfaced to the router.**  Every admission is acked
  with the worker's queue depth; a shed request is retried once on the
  least-loaded other worker before the shed is accepted as final.
* **Worker-death failover, re-spawn, and checkpoint migration.**  A
  dead worker (socket EOF / reset) is replaced: a fresh worker is
  forked at the same index and rejoins the consistent-hash ring (the
  ring maps onto indices, so the replacement inherits the dead
  worker's key range with zero ring churn).  The dead worker's
  in-flight requests are re-dispatched — and when the fleet runs with
  a ``resume_dir``, a request whose run had been suspended to a
  checkpoint (:mod:`repro.ckpt`) *migrates*: the router points the
  new home at the dead worker's last checkpoint file and the run
  continues from where it stopped instead of starting over.  Requests
  without a checkpoint fall back to verbatim re-dispatch — requests
  are specs, not closures, so a re-run is safe and its sealed
  versions are equally valid answers.

Fleet-wide metrics (:func:`summarize_fleet`, :meth:`aggregate_stats`)
sum the per-worker serving counters and reduce per-request outcomes to
p50/p99 latency, goodput, shed rate and SLO attainment.
"""

from __future__ import annotations

import bisect
import hashlib
import itertools
import multiprocessing
import os
import socket
import threading
import time as _time
from typing import Any

from .fleet import (WORKER_DEFAULTS, ckpt_filename, recv_msg, send_msg,
                    spec_key, worker_main)
from .workload import percentile

__all__ = ["FleetRouter", "FleetRequest", "summarize_fleet"]

_VNODES = 64


def _ring_hash(text: str) -> int:
    return int.from_bytes(hashlib.sha256(text.encode()).digest()[:8],
                          "big")


class FleetRequest:
    """The client's view of one fleet request (a declarative spec)."""

    def __init__(self, rid: int, app: str, size: int, seed: int,
                 slo: dict[str, Any], key: str) -> None:
        self.rid = rid
        self.app = app
        self.size = size
        self.seed = seed
        self.slo = slo
        self.key = key
        self.submitted_at = _time.monotonic()
        self.worker: int | None = None
        self.redispatches = 0
        self._result: dict[str, Any] | None = None
        self._done = threading.Event()

    @property
    def done(self) -> bool:
        return self._done.is_set()

    def result(self, timeout_s: float | None = None) -> dict[str, Any]:
        """Block for the terminal outcome dict; TimeoutError on timeout.

        The dict is the worker's ``done`` message plus router fields:
        ``worker`` (index that served it), ``fleet_latency_s``
        (submission-to-terminal as the router's client experienced it)
        and ``redispatches``.
        """
        if not self._done.wait(timeout=timeout_s):
            raise TimeoutError(f"fleet request {self.rid} not terminal "
                               f"after {timeout_s}s")
        assert self._result is not None
        return self._result

    def _finish(self, payload: dict[str, Any]) -> None:
        payload.setdefault("state", "failed")
        payload["worker"] = self.worker
        payload["fleet_latency_s"] = _time.monotonic() - self.submitted_at
        payload["redispatches"] = self.redispatches
        self._result = payload
        self._done.set()


class _WorkerLink:
    """Router-side state of one worker: socket, reader, in-flight set."""

    def __init__(self, index: int, process: Any,
                 sock: socket.socket) -> None:
        self.index = index
        self.process = process
        self.sock = sock
        self.send_lock = threading.Lock()
        self.alive = True
        self.inflight: dict[int, FleetRequest] = {}
        self.queue_depth = 0
        self.reader: threading.Thread | None = None

    @property
    def load(self) -> int:
        return len(self.inflight)


class FleetRouter:
    """Route requests across ``workers`` forked AnytimeServer workers.

    Worker behaviour (slots, queue bound, executor, coalescing, memo
    TTL) comes from ``worker_config`` merged over
    :data:`~repro.serve.fleet.WORKER_DEFAULTS`.  Use as a context
    manager; :meth:`submit` returns a :class:`FleetRequest` future.
    """

    def __init__(self, workers: int = 2,
                 worker_config: dict[str, Any] | None = None,
                 affinity_ttl_s: float = 30.0,
                 fallback_margin: int = 2,
                 respawn: bool = True,
                 resume_dir: str | None = None) -> None:
        if workers <= 0:
            raise ValueError(f"workers must be positive: {workers}")
        self.n_workers = workers
        self.worker_config = {**WORKER_DEFAULTS, **(worker_config or {})}
        self.affinity_ttl_s = affinity_ttl_s
        self.fallback_margin = fallback_margin
        #: fork a replacement worker (same ring index) when one dies
        self.respawn = bool(respawn)
        #: shared checkpoint root: worker ``i`` suspends runs under
        #: ``resume_dir/w<i>/``, and the router migrates a dead
        #: worker's checkpointed runs from there
        self.resume_dir = resume_dir
        if resume_dir is not None:
            os.makedirs(resume_dir, exist_ok=True)
        self._links: list[_WorkerLink] = []
        self._lock = threading.RLock()
        self._rids = itertools.count(1)
        self._stats_rids = itertools.count(1)
        self._stats_waiters: dict[int, list[Any]] = {}
        self._affinity: dict[str, tuple[int, float]] = {}
        self._ring: list[tuple[int, int]] = sorted(
            (_ring_hash(f"worker-{w}/vnode-{v}"), w)
            for w in range(workers) for v in range(_VNODES))
        self._started = False
        self._closing = False
        self.counters = {
            "dispatched": 0, "redispatched": 0, "shed_retries": 0,
            "worker_deaths": 0, "fallbacks": 0,
            "respawns": 0, "migrated": 0,
        }

    # -- lifecycle -------------------------------------------------------

    def start(self) -> "FleetRouter":
        if self._started:
            raise RuntimeError("router already started")
        self._started = True
        for index in range(self.n_workers):
            self._links.append(self._spawn_link(index))
        for link in self._links:
            link.reader.start()
        return self

    def _spawn_link(self, index: int) -> _WorkerLink:
        """Fork one worker process for ring index ``index`` (reader
        thread created but not started)."""
        ctx = multiprocessing.get_context("fork")
        parent_sock, child_sock = socket.socketpair()
        config = dict(self.worker_config)
        if self.resume_dir is not None:
            config["resume_dir"] = os.path.join(self.resume_dir,
                                                f"w{index}")
        process = ctx.Process(
            target=_worker_entry, args=(child_sock, config),
            name=f"fleet-worker-{index}", daemon=True)
        process.start()
        child_sock.close()
        link = _WorkerLink(index, process, parent_sock)
        link.reader = threading.Thread(
            target=self._read_loop, args=(link,),
            name=f"fleet-reader-{index}", daemon=True)
        return link

    def __enter__(self) -> "FleetRouter":
        return self.start()

    def __exit__(self, *exc: Any) -> None:
        self.shutdown()

    def shutdown(self, timeout_s: float = 10.0) -> None:
        """Stop every worker; fail any request still in flight."""
        with self._lock:
            self._closing = True   # EOFs from here on are not deaths
            links = list(self._links)
        for link in links:
            if link.alive:
                try:
                    send_msg(link.sock, {"op": "shutdown"},
                             link.send_lock)
                except OSError:
                    pass
        deadline = _time.monotonic() + timeout_s
        for link in links:
            link.process.join(timeout=max(0.1,
                                          deadline - _time.monotonic()))
            if link.process.is_alive():
                link.process.terminate()
                link.process.join(timeout=2.0)
            link.alive = False
            try:
                link.sock.close()
            except OSError:
                pass
        with self._lock:
            for link in links:
                for request in list(link.inflight.values()):
                    request._finish({"state": "cancelled",
                                     "errors": ["fleet shutdown"]})
                link.inflight.clear()

    def drain(self, timeout_s: float | None = None) -> bool:
        """Wait for every in-flight request to finish; True if it did."""
        deadline = (None if timeout_s is None
                    else _time.monotonic() + timeout_s)
        while True:
            with self._lock:
                if not any(link.inflight for link in self._links):
                    return True
            if deadline is not None and _time.monotonic() >= deadline:
                return False
            _time.sleep(0.01)

    # -- client API ------------------------------------------------------

    def submit(self, app: str, size: int = 32, seed: int = 0,
               slo: dict[str, Any] | None = None,
               wait_s: float = 0.0) -> FleetRequest:
        """Place and dispatch one declarative request."""
        key = spec_key(app, size, seed)
        request = FleetRequest(next(self._rids), app, size, seed,
                               slo or {}, key)
        with self._lock:
            link = self._place(key)
            if link is None:
                request._finish({"state": "failed",
                                 "errors": ["no live workers"]})
                return request
            self._dispatch(request, link, wait_s=wait_s)
        return request

    def alive_workers(self) -> int:
        with self._lock:
            return sum(1 for link in self._links if link.alive)

    def aggregate_stats(self, timeout_s: float = 5.0) -> dict[str, Any]:
        """Fleet-wide serving counters: per-worker stats plus sums."""
        per_worker: list[dict[str, Any] | None] = []
        for link in list(self._links):
            per_worker.append(self._worker_stats(link, timeout_s)
                              if link.alive else None)
        totals: dict[str, Any] = {}
        for stats in per_worker:
            if not stats:
                continue
            for name, value in stats.items():
                if isinstance(value, (int, float)) \
                        and not isinstance(value, bool):
                    totals[name] = totals.get(name, 0) + value
        return {"workers": len(self._links),
                "alive": self.alive_workers(),
                "router": dict(self.counters),
                "per_worker": per_worker,
                "totals": totals}

    # -- placement -------------------------------------------------------

    def _place(self, key: str) -> _WorkerLink | None:
        alive = [link for link in self._links if link.alive]
        if not alive:
            return None
        now = _time.monotonic()
        pinned = self._affinity.get(key)
        if pinned is not None:
            index, expires_at = pinned
            link = self._links[index]
            if link.alive and now < expires_at:
                self._affinity[key] = (index, now + self.affinity_ttl_s)
                return link
            del self._affinity[key]
        home = self._ring_lookup(key)
        link = home
        least = min(alive, key=lambda cand: cand.load)
        if home.load > least.load + self.fallback_margin:
            # cold key, clearly uneven fleet: spill to the least-loaded
            # worker (duplicates will follow via the affinity pin)
            link = least
            self.counters["fallbacks"] += 1
        self._affinity[key] = (link.index, now + self.affinity_ttl_s)
        return link

    def _ring_lookup(self, key: str) -> _WorkerLink:
        point = _ring_hash(key)
        start = bisect.bisect(self._ring, (point, -1))
        for offset in range(len(self._ring)):
            _, index = self._ring[(start + offset) % len(self._ring)]
            if self._links[index].alive:
                return self._links[index]
        raise RuntimeError("no live workers on the ring")

    def _dispatch(self, request: FleetRequest, link: _WorkerLink,
                  wait_s: float = 0.0,
                  resume_from: str | None = None) -> None:
        request.worker = link.index
        link.inflight[request.rid] = request
        self.counters["dispatched"] += 1
        message = {
            "op": "submit", "rid": request.rid, "app": request.app,
            "size": request.size, "seed": request.seed,
            "slo": request.slo, "wait_s": wait_s,
        }
        if resume_from is not None:
            message["resume_from"] = resume_from
        try:
            send_msg(link.sock, message, link.send_lock)
        except OSError:
            link.inflight.pop(request.rid, None)
            self._on_worker_death(link)
            survivor = self._place(request.key)
            if survivor is None or survivor is link:
                request._finish({"state": "failed",
                                 "errors": ["no live workers"]})
                return
            request.redispatches += 1
            self.counters["redispatched"] += 1
            self._dispatch(request, survivor, wait_s=wait_s,
                           resume_from=resume_from)

    # -- worker I/O ------------------------------------------------------

    def _read_loop(self, link: _WorkerLink) -> None:
        while True:
            try:
                msg = recv_msg(link.sock)
            except OSError:
                msg = None
            if msg is None:
                with self._lock:
                    if link.alive:
                        self._on_worker_death(link)
                return
            op = msg.get("op")
            if op == "done":
                with self._lock:
                    request = link.inflight.pop(msg.get("rid"), None)
                if request is not None:
                    request._finish(msg)
            elif op == "ack":
                self._on_ack(link, msg)
            elif op == "stats":
                with self._lock:
                    waiter = self._stats_waiters.pop(msg.get("rid"),
                                                     None)
                if waiter is not None:
                    waiter[1] = msg.get("stats")
                    waiter[0].set()
            elif op == "bye":
                with self._lock:
                    link.alive = False
                return

    def _on_ack(self, link: _WorkerLink, msg: dict[str, Any]) -> None:
        with self._lock:
            link.queue_depth = int(msg.get("queue_depth", 0))
            if msg.get("state") != "shed":
                return
            request = link.inflight.pop(msg.get("rid"), None)
            if request is None:
                return
            # admission backpressure surfaced: retry once elsewhere
            alive = [cand for cand in self._links
                     if cand.alive and cand is not link]
            if request.redispatches == 0 and alive:
                target = min(alive, key=lambda cand: cand.load)
                request.redispatches += 1
                self.counters["shed_retries"] += 1
                self._affinity[request.key] = (
                    target.index,
                    _time.monotonic() + self.affinity_ttl_s)
                self._dispatch(request, target)
            else:
                link.inflight[request.rid] = request
                # the worker's own `done` (state=shed) finalizes it

    def _on_worker_death(self, link: _WorkerLink) -> None:
        """Replace a dead worker and migrate its in-flight requests.

        The replacement is forked at the same ring index, so it takes
        over the dead worker's key range without remapping anyone
        else's.  Each orphaned request is then re-placed; one whose run
        had been suspended to a checkpoint resumes from it on its new
        home instead of starting over.
        """
        link.alive = False
        self.counters["worker_deaths"] += 1
        for key, (index, _) in list(self._affinity.items()):
            if index == link.index:
                del self._affinity[key]
        orphans = list(link.inflight.values())
        link.inflight.clear()
        if self.respawn and not self._closing:
            try:
                fresh = self._spawn_link(link.index)
            except Exception:
                fresh = None
            if fresh is not None:
                self._links[link.index] = fresh
                fresh.reader.start()
                self.counters["respawns"] += 1
        for request in orphans:
            survivor = self._place(request.key)
            if survivor is None:
                request._finish({
                    "state": "failed",
                    "errors": [f"worker {link.index} died"]})
                continue
            request.redispatches += 1
            self.counters["redispatched"] += 1
            resume_from = self._migration_source(link.index, request.key)
            if resume_from is not None:
                self.counters["migrated"] += 1
            self._dispatch(request, survivor, resume_from=resume_from)

    def _migration_source(self, dead_index: int,
                          key: str) -> str | None:
        """The dead worker's last checkpoint of this key, if any."""
        if self.resume_dir is None:
            return None
        path = os.path.join(self.resume_dir, f"w{dead_index}",
                            ckpt_filename(key))
        return path if os.path.exists(path) else None

    def _worker_stats(self, link: _WorkerLink,
                      timeout_s: float) -> dict[str, Any] | None:
        rid = next(self._stats_rids)
        waiter: list[Any] = [threading.Event(), None]
        with self._lock:
            self._stats_waiters[rid] = waiter
            try:
                send_msg(link.sock, {"op": "stats", "rid": rid},
                         link.send_lock)
            except OSError:
                self._stats_waiters.pop(rid, None)
                return None
        if not waiter[0].wait(timeout=timeout_s):
            with self._lock:
                self._stats_waiters.pop(rid, None)
            return None
        return waiter[1]


def _worker_entry(sock: socket.socket, config: dict[str, Any]) -> None:
    worker_main(sock, config)


def summarize_fleet(requests: list[FleetRequest],
                    wall_s: float | None = None) -> dict[str, Any]:
    """Reduce terminal fleet requests to fleet-wide serving metrics."""
    import math

    if not requests:
        raise ValueError("no requests to summarize")
    results = []
    for request in requests:
        if not request.done:
            raise RuntimeError(f"fleet request {request.rid} is not "
                               f"terminal; drain the router first")
        results.append(request.result(timeout_s=0.0))
    by_state: dict[str, int] = {}
    for r in results:
        by_state[r["state"]] = by_state.get(r["state"], 0) + 1
    served = [r for r in results if r["state"] == "completed"]
    latencies = [r["fleet_latency_s"] for r in served]
    if wall_s is None:
        first = min(request.submitted_at for request in requests)
        last = max(request.submitted_at + r["fleet_latency_s"]
                   for request, r in zip(requests, results))
        wall_s = max(last - first, 1e-9)

    def mean(values: list[float]) -> float:
        return sum(values) / len(values) if values else math.nan

    return {
        "requests": len(results),
        "states": by_state,
        "completed": len(served),
        "shed": by_state.get("shed", 0),
        "failed": by_state.get("failed", 0),
        "wall_s": wall_s,
        "goodput_rps": len(served) / wall_s,
        "latency_p50_s": percentile(latencies, 50),
        "latency_p99_s": percentile(latencies, 99),
        "latency_mean_s": mean(latencies),
        "coalesced": sum(1 for r in served if r.get("coalesced")),
        "memo_hits": sum(1 for r in served if r.get("memo_hit")),
        "redispatched": sum(1 for r in results
                            if r.get("redispatches", 0) > 0),
        "slo_attainment": (sum(1 for r in served if r.get("slo_met"))
                           / len(served)) if served else math.nan,
        "workers_used": sorted({r.get("worker") for r in served
                                if r.get("worker") is not None}),
    }
