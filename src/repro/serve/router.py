"""Fleet front end: shard anytime requests across worker processes.

:class:`FleetRouter` owns N :mod:`~repro.serve.fleet` workers — forked
locally over AF_UNIX socketpairs or reached over TCP
(:mod:`repro.serve.transport`) — and places each declarative request
``(app, size, seed, SLO)`` by its canonical work identity
(:func:`~repro.serve.fleet.spec_key`):

* **Sticky consistent-hash placement.**  A key hashes onto a virtual-
  node ring; identical work therefore lands on the same worker, where
  the server coalesces it onto one shared run (or answers from its
  sealed-results memo).  A short-TTL affinity table pins a key to the
  worker that actually took it, so fallback decisions stay sticky too.
* **Least-loaded fallback for cold keys.**  A key the fleet has never
  seen may be diverted from its ring home to the least-loaded worker
  when the home is clearly busier — cold keys have no run to join, so
  placement freedom is free capacity.
* **Backpressure surfaced to the router.**  Every admission is acked
  with the worker's queue depth; a shed request is retried once on the
  least-loaded other worker before the shed is accepted as final.
* **Worker-death failover, re-spawn, and checkpoint migration.**  A
  dead worker (socket EOF / reset) is replaced: a fresh worker is
  forked at the same index and rejoins the consistent-hash ring (the
  ring maps onto indices, so the replacement inherits the dead
  worker's key range with zero ring churn).  The dead worker's
  in-flight requests are re-dispatched — and when the fleet runs with
  a ``resume_dir``, a request whose run had been suspended to a
  checkpoint (:mod:`repro.ckpt`) *migrates*: the router ships the dead
  worker's last checkpoint to the new home **in-band** (chunked,
  sha256-verified ``ckpt_*`` frames — no shared filesystem between
  workers assumed) and the run continues from where it stopped instead
  of starting over.  Requests without a checkpoint, or whose transfer
  is refused, fall back to verbatim re-dispatch — requests are specs,
  not closures, so a re-run is safe and its sealed versions are
  equally valid answers.  Remote (TCP) workers are not respawned: the
  router does not own their processes, so survivors absorb the dead
  worker's key range instead.
* **Fleet-wide memo sharing.**  When any worker seals a *final* answer
  for a key, the router caches the result payload (metrics +
  ``value_digest``) in a bounded TTL store and answers later
  duplicates of that key itself — whichever worker the key would now
  land on, including after a death re-placed it — without dispatching
  a run.  Hits are counted (``memo_hits``), traced
  (``fleet.memo_hit``), and marked on the result (``memo_hit`` +
  ``fleet_memo``).

Fleet-wide metrics (:func:`summarize_fleet`, :meth:`aggregate_stats`)
sum the per-worker serving counters and reduce per-request outcomes to
p50/p99 latency, goodput, shed rate and SLO attainment.
"""

from __future__ import annotations

import base64
import bisect
import hashlib
import itertools
import os
import socket
import threading
import time as _time
from typing import Any, Callable

from ..core.tracing import TraceEvent, TraceSink
from .fleet import (CKPT_CHUNK_BYTES, FrameError, WORKER_DEFAULTS,
                    ckpt_filename, recv_msg, send_msg, spec_key)
from .transport import ForkTransport, TcpTransport
from .workload import percentile

__all__ = ["FleetRouter", "FleetRequest", "summarize_fleet"]

_VNODES = 64


def _ring_hash(text: str) -> int:
    return int.from_bytes(hashlib.sha256(text.encode()).digest()[:8],
                          "big")


class FleetRequest:
    """The client's view of one fleet request (a declarative spec)."""

    def __init__(self, rid: int, app: str, size: int, seed: int,
                 slo: dict[str, Any], key: str) -> None:
        self.rid = rid
        self.app = app
        self.size = size
        self.seed = seed
        self.slo = slo
        self.key = key
        self.submitted_at = _time.monotonic()
        self.worker: int | None = None
        self.redispatches = 0
        self._result: dict[str, Any] | None = None
        self._done = threading.Event()
        self._finish_lock = threading.Lock()
        self._callbacks: list[Callable[["FleetRequest"], None]] = []

    @property
    def done(self) -> bool:
        return self._done.is_set()

    def add_done_callback(
            self, fn: Callable[["FleetRequest"], None]) -> None:
        """Run ``fn(self)`` once the request is terminal (immediately
        if it already is).  Callbacks fire on the router's reader
        thread — keep them cheap and thread-safe (the asyncio front
        end bridges here with ``call_soon_threadsafe``)."""
        with self._finish_lock:
            if not self._done.is_set():
                self._callbacks.append(fn)
                return
        fn(self)

    def result(self, timeout_s: float | None = None) -> dict[str, Any]:
        """Block for the terminal outcome dict; TimeoutError on timeout.

        The dict is the worker's ``done`` message plus router fields:
        ``worker`` (index that served it), ``fleet_latency_s``
        (submission-to-terminal as the router's client experienced it)
        and ``redispatches``.
        """
        if not self._done.wait(timeout=timeout_s):
            raise TimeoutError(f"fleet request {self.rid} not terminal "
                               f"after {timeout_s}s")
        assert self._result is not None
        return self._result

    def _finish(self, payload: dict[str, Any]) -> None:
        """First outcome wins: a late duplicate ``done`` (e.g. a
        re-dispatch racing the original worker's completion pump) is
        dropped, so the client never observes two terminal deliveries.
        """
        with self._finish_lock:
            if self._done.is_set():
                return
            payload.setdefault("state", "failed")
            payload["worker"] = self.worker
            payload["fleet_latency_s"] = (_time.monotonic()
                                          - self.submitted_at)
            payload["redispatches"] = self.redispatches
            self._result = payload
            self._done.set()
            callbacks, self._callbacks = self._callbacks, []
        for fn in callbacks:
            fn(self)


class _WorkerLink:
    """Router-side state of one worker: socket, reader, in-flight set."""

    def __init__(self, index: int, process: Any,
                 sock: socket.socket) -> None:
        self.index = index
        self.process = process
        self.sock = sock
        self.send_lock = threading.Lock()
        self.alive = True
        self.inflight: dict[int, FleetRequest] = {}
        self.queue_depth = 0
        self.reader: threading.Thread | None = None

    @property
    def load(self) -> int:
        return len(self.inflight)


class FleetRouter:
    """Route requests across ``workers`` forked AnytimeServer workers.

    Worker behaviour (slots, queue bound, executor, coalescing, memo
    TTL) comes from ``worker_config`` merged over
    :data:`~repro.serve.fleet.WORKER_DEFAULTS`.  Use as a context
    manager; :meth:`submit` returns a :class:`FleetRequest` future.
    """

    def __init__(self, workers: int = 2,
                 worker_config: dict[str, Any] | None = None,
                 affinity_ttl_s: float = 30.0,
                 fallback_margin: int = 2,
                 respawn: bool = True,
                 resume_dir: str | None = None,
                 endpoints: list[str | tuple[str, int]] | None = None,
                 transport: Any = None,
                 fleet_memo_ttl_s: float = 30.0,
                 fleet_memo_max: int = 256,
                 trace: TraceSink | None = None) -> None:
        if transport is None:
            transport = (TcpTransport(endpoints) if endpoints
                         else ForkTransport())
        #: how worker sockets are obtained (fork+socketpair or TCP)
        self.transport = transport
        if endpoints is not None:
            workers = len(endpoints)
        if workers <= 0:
            raise ValueError(f"workers must be positive: {workers}")
        self.n_workers = workers
        self.worker_config = {**WORKER_DEFAULTS, **(worker_config or {})}
        self.affinity_ttl_s = affinity_ttl_s
        self.fallback_margin = fallback_margin
        #: fork a replacement worker (same ring index) when one dies —
        #: only meaningful on a respawnable (fork) transport
        self.respawn = bool(respawn)
        #: router-visible checkpoint root: worker ``i`` suspends runs
        #: under ``resume_dir/w<i>/``; after a death the router reads
        #: the dead worker's checkpoints there and ships them to the
        #: new home in-band (the *destination* needs no shared
        #: filesystem)
        self.resume_dir = resume_dir
        if resume_dir is not None:
            os.makedirs(resume_dir, exist_ok=True)
        #: fleet-wide sealed-final memo: key → result payload, answered
        #: by the router itself for ``fleet_memo_ttl_s`` seconds
        self.fleet_memo_ttl_s = float(fleet_memo_ttl_s)
        self.fleet_memo_max = int(fleet_memo_max)
        self._memo: dict[str, tuple[float, dict[str, Any]]] = {}
        self._trace_sink = trace
        self._links: list[_WorkerLink] = []
        self._lock = threading.RLock()
        self._rids = itertools.count(1)
        self._stats_rids = itertools.count(1)
        self._stats_waiters: dict[int, list[Any]] = {}
        self._xids = itertools.count(1)
        self._ckpt_lock = threading.Lock()
        self._ckpt_waiters: dict[int, list[Any]] = {}
        self.ckpt_ack_timeout_s = 15.0
        self._affinity: dict[str, tuple[int, float]] = {}
        self._ring: list[tuple[int, int]] = sorted(
            (_ring_hash(f"worker-{w}/vnode-{v}"), w)
            for w in range(workers) for v in range(_VNODES))
        self._started = False
        self._closing = False
        self.counters = {
            "dispatched": 0, "redispatched": 0, "shed_retries": 0,
            "worker_deaths": 0, "fallbacks": 0,
            "respawns": 0, "migrated": 0, "migrations_failed": 0,
            "memo_hits": 0, "late_dones": 0, "frame_errors": 0,
        }

    # -- lifecycle -------------------------------------------------------

    def start(self) -> "FleetRouter":
        if self._started:
            raise RuntimeError("router already started")
        self._started = True
        for index in range(self.n_workers):
            self._links.append(self._spawn_link(index))
        for link in self._links:
            link.reader.start()
        return self

    def _spawn_link(self, index: int) -> _WorkerLink:
        """Attach one worker at ring index ``index`` through the
        transport — fork a process or connect to a remote listener
        (reader thread created but not started)."""
        config = dict(self.worker_config)
        if self.resume_dir is not None:
            config["resume_dir"] = os.path.join(self.resume_dir,
                                                f"w{index}")
        process, sock = self.transport.spawn(index, config)
        link = _WorkerLink(index, process, sock)
        link.reader = threading.Thread(
            target=self._read_loop, args=(link,),
            name=f"fleet-reader-{index}", daemon=True)
        return link

    def __enter__(self) -> "FleetRouter":
        return self.start()

    def __exit__(self, *exc: Any) -> None:
        self.shutdown()

    def shutdown(self, timeout_s: float = 10.0) -> None:
        """Stop every worker; fail any request still in flight."""
        with self._lock:
            self._closing = True   # EOFs from here on are not deaths
            links = list(self._links)
        for link in links:
            if link.alive:
                try:
                    send_msg(link.sock, {"op": "shutdown"},
                             link.send_lock)
                except OSError:
                    pass
        deadline = _time.monotonic() + timeout_s
        for link in links:
            if link.process is not None:
                link.process.join(
                    timeout=max(0.1, deadline - _time.monotonic()))
                if link.process.is_alive():
                    link.process.terminate()
                    link.process.join(timeout=2.0)
            link.alive = False
            try:
                link.sock.close()
            except OSError:
                pass
        with self._lock:
            for link in links:
                for request in list(link.inflight.values()):
                    request._finish({"state": "cancelled",
                                     "errors": ["fleet shutdown"]})
                link.inflight.clear()

    def drain(self, timeout_s: float | None = None) -> bool:
        """Wait for every in-flight request to finish; True if it did."""
        deadline = (None if timeout_s is None
                    else _time.monotonic() + timeout_s)
        while True:
            with self._lock:
                if not any(link.inflight for link in self._links):
                    return True
            if deadline is not None and _time.monotonic() >= deadline:
                return False
            _time.sleep(0.01)

    # -- client API ------------------------------------------------------

    def submit(self, app: str, size: int = 32, seed: int = 0,
               slo: dict[str, Any] | None = None,
               wait_s: float = 0.0) -> FleetRequest:
        """Place and dispatch one declarative request."""
        key = spec_key(app, size, seed)
        request = FleetRequest(next(self._rids), app, size, seed,
                               slo or {}, key)
        with self._lock:
            memo = self._memo_lookup(key)
            if memo is not None:
                # fleet-wide memo: a worker sealed this key's final
                # recently; answer from the router without any dispatch
                self.counters["memo_hits"] += 1
                self._emit("fleet.memo_hit", key=key, rid=request.rid)
                payload = dict(memo)
                payload["memo_hit"] = True
                payload["fleet_memo"] = True
                request._finish(payload)
                return request
            link = self._place(key)
            if link is None:
                request._finish({"state": "failed",
                                 "errors": ["no live workers"]})
                return request
            self._dispatch(request, link, wait_s=wait_s)
        return request

    def alive_workers(self) -> int:
        with self._lock:
            return sum(1 for link in self._links if link.alive)

    def aggregate_stats(self, timeout_s: float = 5.0) -> dict[str, Any]:
        """Fleet-wide serving counters: per-worker stats plus sums."""
        per_worker: list[dict[str, Any] | None] = []
        for link in list(self._links):
            per_worker.append(self._worker_stats(link, timeout_s)
                              if link.alive else None)
        totals: dict[str, Any] = {}
        for stats in per_worker:
            if not stats:
                continue
            for name, value in stats.items():
                if isinstance(value, (int, float)) \
                        and not isinstance(value, bool):
                    totals[name] = totals.get(name, 0) + value
        with self._lock:
            memo = {"size": len(self._memo),
                    "ttl_s": self.fleet_memo_ttl_s,
                    "max": self.fleet_memo_max,
                    "hits": self.counters["memo_hits"]}
        return {"workers": len(self._links),
                "alive": self.alive_workers(),
                "router": dict(self.counters),
                "fleet_memo": memo,
                "per_worker": per_worker,
                "totals": totals}

    # -- placement -------------------------------------------------------

    def _place(self, key: str) -> _WorkerLink | None:
        alive = [link for link in self._links if link.alive]
        if not alive:
            return None
        now = _time.monotonic()
        pinned = self._affinity.get(key)
        if pinned is not None:
            index, expires_at = pinned
            link = self._links[index]
            if link.alive and now < expires_at:
                self._affinity[key] = (index, now + self.affinity_ttl_s)
                return link
            del self._affinity[key]
        home = self._ring_lookup(key)
        link = home
        least = min(alive, key=lambda cand: cand.load)
        if home.load > least.load + self.fallback_margin:
            # cold key, clearly uneven fleet: spill to the least-loaded
            # worker (duplicates will follow via the affinity pin)
            link = least
            self.counters["fallbacks"] += 1
        self._affinity[key] = (link.index, now + self.affinity_ttl_s)
        return link

    def _ring_lookup(self, key: str) -> _WorkerLink:
        point = _ring_hash(key)
        start = bisect.bisect(self._ring, (point, -1))
        for offset in range(len(self._ring)):
            _, index = self._ring[(start + offset) % len(self._ring)]
            if self._links[index].alive:
                return self._links[index]
        raise RuntimeError("no live workers on the ring")

    def _dispatch(self, request: FleetRequest, link: _WorkerLink,
                  wait_s: float = 0.0,
                  extra: dict[str, Any] | None = None) -> None:
        request.worker = link.index
        link.inflight[request.rid] = request
        self.counters["dispatched"] += 1
        self._emit("fleet.dispatch", key=request.key, rid=request.rid,
                   worker=link.index)
        message = {
            "op": "submit", "rid": request.rid, "app": request.app,
            "size": request.size, "seed": request.seed,
            "slo": request.slo, "wait_s": wait_s,
        }
        if self.worker_config.get("check"):
            message["check"] = True
        if extra:
            message.update(extra)
        try:
            send_msg(link.sock, message, link.send_lock)
        except OSError:
            # the send itself found the worker dead: this request never
            # reached it, so re-place it fresh; orphans that *were* on
            # the worker take the full migration path off-lock
            link.inflight.pop(request.rid, None)
            if link.alive:
                orphans = self._mark_dead(link)
                if orphans:
                    threading.Thread(
                        target=self._redispatch_orphans,
                        args=(link, orphans), daemon=True,
                        name=f"fleet-failover-{link.index}").start()
            survivor = self._place(request.key)
            if survivor is None or survivor is link:
                request._finish({"state": "failed",
                                 "errors": ["no live workers"]})
                return
            request.redispatches += 1
            self.counters["redispatched"] += 1
            self._dispatch(request, survivor, wait_s=wait_s,
                           extra=extra)

    # -- worker I/O ------------------------------------------------------

    def _read_loop(self, link: _WorkerLink) -> None:
        while True:
            try:
                msg = recv_msg(link.sock)
            except FrameError:
                # the worker spoke garbage: unusable connection —
                # treat exactly like a death (EOF path)
                self.counters["frame_errors"] += 1
                msg = None
            except OSError:
                msg = None
            if msg is None:
                orphans: list[FleetRequest] = []
                dead = False
                with self._lock:
                    if link.alive:
                        dead = True
                        orphans = self._mark_dead(link)
                if dead:
                    # re-dispatch off-lock: shipping a checkpoint to a
                    # survivor waits for its ckpt_ack, which arrives on
                    # that survivor's own reader thread
                    self._redispatch_orphans(link, orphans)
                return
            op = msg.get("op")
            if op == "done":
                with self._lock:
                    request = link.inflight.pop(msg.get("rid"), None)
                    if request is not None:
                        self._memo_store(request.key, msg)
                    else:
                        # a re-dispatched rid finishing on its old
                        # worker, or a duplicate: first outcome won
                        self.counters["late_dones"] += 1
                if request is not None:
                    request._finish(msg)
            elif op == "ack":
                self._on_ack(link, msg)
            elif op == "stats":
                with self._lock:
                    waiter = self._stats_waiters.pop(msg.get("rid"),
                                                     None)
                if waiter is not None:
                    waiter[1] = msg.get("stats")
                    waiter[0].set()
            elif op == "ckpt_ack":
                # deliberately NOT under self._lock: a migration in
                # progress holds no router lock but blocks on this ack
                with self._ckpt_lock:
                    waiter = self._ckpt_waiters.pop(msg.get("xid"),
                                                    None)
                if waiter is not None:
                    waiter[1] = msg
                    waiter[0].set()
            elif op == "error":
                # worker reported a protocol violation from our side;
                # nothing to retract — count it and carry on
                self.counters["frame_errors"] += 1
            elif op == "bye":
                with self._lock:
                    link.alive = False
                return

    def _on_ack(self, link: _WorkerLink, msg: dict[str, Any]) -> None:
        with self._lock:
            link.queue_depth = int(msg.get("queue_depth", 0))
            if msg.get("state") != "shed":
                return
            request = link.inflight.pop(msg.get("rid"), None)
            if request is None:
                return
            # admission backpressure surfaced: retry once elsewhere
            alive = [cand for cand in self._links
                     if cand.alive and cand is not link]
            if request.redispatches == 0 and alive:
                target = min(alive, key=lambda cand: cand.load)
                request.redispatches += 1
                self.counters["shed_retries"] += 1
                self._affinity[request.key] = (
                    target.index,
                    _time.monotonic() + self.affinity_ttl_s)
                self._dispatch(request, target)
            else:
                link.inflight[request.rid] = request
                # the worker's own `done` (state=shed) finalizes it

    def _mark_dead(self, link: _WorkerLink) -> list[FleetRequest]:
        """Record a worker's death and (on a fork transport) replace
        it at the same ring index, so the replacement takes over the
        dead worker's key range without remapping anyone else's.
        Returns the orphaned in-flight requests (caller re-dispatches
        them, off-lock).  Must be called with ``self._lock`` held."""
        link.alive = False
        self.counters["worker_deaths"] += 1
        self._emit("fleet.worker_death", worker=link.index,
                   orphans=len(link.inflight))
        for key, (index, _) in list(self._affinity.items()):
            if index == link.index:
                del self._affinity[key]
        orphans = list(link.inflight.values())
        link.inflight.clear()
        if (self.respawn and self.transport.respawnable
                and not self._closing):
            try:
                fresh = self._spawn_link(link.index)
            except Exception:
                fresh = None
            if fresh is not None:
                self._links[link.index] = fresh
                fresh.reader.start()
                self.counters["respawns"] += 1
                self._emit("fleet.respawn", worker=link.index)
        return orphans

    def _redispatch_orphans(self, link: _WorkerLink,
                            orphans: list[FleetRequest]) -> None:
        """Re-place a dead worker's in-flight requests.  A request
        whose run had been suspended to a checkpoint *migrates*: the
        checkpoint is shipped to the new home in-band and the run
        continues from where it stopped.  Runs without one (or whose
        transfer fails) re-dispatch fresh.  Must NOT hold
        ``self._lock``: shipping blocks on the survivor's ``ckpt_ack``,
        which its reader thread delivers."""
        for request in orphans:
            with self._lock:
                survivor = self._place(request.key)
                if survivor is None:
                    request._finish({
                        "state": "failed",
                        "errors": [f"worker {link.index} died"]})
                    continue
                request.redispatches += 1
                self.counters["redispatched"] += 1
                self._emit("fleet.redispatch", key=request.key,
                           rid=request.rid, worker=survivor.index)
            source = self._migration_source(link.index, request.key)
            extra = None
            if source is not None:
                extra = self._ship_checkpoint(survivor, request.key,
                                              source)
                with self._lock:
                    if extra is not None:
                        self.counters["migrated"] += 1
                        self._emit("fleet.migrate", key=request.key,
                                   rid=request.rid,
                                   worker=survivor.index)
                    else:
                        self.counters["migrations_failed"] += 1
            with self._lock:
                self._dispatch(request, survivor, extra=extra)

    def _migration_source(self, dead_index: int,
                          key: str) -> str | None:
        """The dead worker's last checkpoint of this key, if any."""
        if self.resume_dir is None:
            return None
        path = os.path.join(self.resume_dir, f"w{dead_index}",
                            ckpt_filename(key))
        return path if os.path.exists(path) else None

    def _ship_checkpoint(self, link: _WorkerLink, key: str,
                         path: str) -> dict[str, Any] | None:
        """Ship one ``.rck`` file to a worker in-band: chunked base64
        frames bracketed by ``ckpt_begin``/``ckpt_end``, acknowledged
        after the worker re-verifies the sha256 and the ``RPROCKP1``
        header.  Returns the ``{"resume_xfer": xid}`` submit extra on
        success, None on any failure (the caller falls back to a fresh
        re-dispatch — always safe, anytime re-runs are valid)."""
        try:
            with open(path, "rb") as fh:
                data = fh.read()
        except OSError:
            return None
        xid = next(self._xids)
        waiter: list[Any] = [threading.Event(), None]
        with self._ckpt_lock:
            self._ckpt_waiters[xid] = waiter
        try:
            send_msg(link.sock, {
                "op": "ckpt_begin", "xid": xid, "key": key,
                "size": len(data),
                "sha256": hashlib.sha256(data).hexdigest(),
            }, link.send_lock)
            for off in range(0, len(data), CKPT_CHUNK_BYTES):
                chunk = data[off:off + CKPT_CHUNK_BYTES]
                send_msg(link.sock, {
                    "op": "ckpt_chunk", "xid": xid,
                    "data": base64.b64encode(chunk).decode(),
                }, link.send_lock)
            send_msg(link.sock, {"op": "ckpt_end", "xid": xid},
                     link.send_lock)
        except OSError:
            with self._ckpt_lock:
                self._ckpt_waiters.pop(xid, None)
            return None
        if not waiter[0].wait(timeout=self.ckpt_ack_timeout_s):
            with self._ckpt_lock:
                self._ckpt_waiters.pop(xid, None)
            return None
        ack = waiter[1]
        if not (isinstance(ack, dict) and ack.get("ok")):
            return None
        try:
            # consumed: the receiver now owns the only live copy, and
            # a past must never be resumed twice
            os.unlink(path)
        except OSError:
            pass
        return {"resume_xfer": xid}

    # -- fleet-wide memo -------------------------------------------------

    def _memo_lookup(self, key: str) -> dict[str, Any] | None:
        """A fresh sealed-final payload for ``key``, or None (expired
        entries evicted on the way).  Lock held by the caller."""
        entry = self._memo.get(key)
        if entry is None:
            return None
        expires_at, payload = entry
        if _time.monotonic() >= expires_at:
            del self._memo[key]
            return None
        return payload

    def _memo_store(self, key: str, msg: dict[str, Any]) -> None:
        """Cache a worker's ``done`` if it is a sealed *final* answer.
        Bounded: expired entries purged, then earliest-expiry evicted
        over ``fleet_memo_max``.  Lock held by the caller."""
        if self.fleet_memo_ttl_s <= 0:
            return
        if not (msg.get("state") == "completed" and msg.get("final")
                and msg.get("value_digest")):
            return
        now = _time.monotonic()
        for stale in [k for k, (exp, _) in self._memo.items()
                      if now >= exp]:
            del self._memo[stale]
        if key not in self._memo \
                and len(self._memo) >= self.fleet_memo_max:
            oldest = min(self._memo, key=lambda k: self._memo[k][0])
            del self._memo[oldest]
        payload = {k: v for k, v in msg.items() if k != "rid"}
        self._memo[key] = (now + self.fleet_memo_ttl_s, payload)

    def _emit(self, kind: str, *, key: str | None = None,
              **args: Any) -> None:
        sink = self._trace_sink
        if sink is None:
            return
        try:
            sink.emit(TraceEvent(ts=_time.monotonic(), kind=kind,
                                 stage="router", target=key,
                                 args=args))
        except Exception:
            pass

    def _worker_stats(self, link: _WorkerLink,
                      timeout_s: float) -> dict[str, Any] | None:
        rid = next(self._stats_rids)
        waiter: list[Any] = [threading.Event(), None]
        with self._lock:
            self._stats_waiters[rid] = waiter
            try:
                send_msg(link.sock, {"op": "stats", "rid": rid},
                         link.send_lock)
            except OSError:
                self._stats_waiters.pop(rid, None)
                return None
        if not waiter[0].wait(timeout=timeout_s):
            with self._lock:
                self._stats_waiters.pop(rid, None)
            return None
        return waiter[1]


def summarize_fleet(requests: list[FleetRequest],
                    wall_s: float | None = None) -> dict[str, Any]:
    """Reduce terminal fleet requests to fleet-wide serving metrics."""
    import math

    if not requests:
        raise ValueError("no requests to summarize")
    results = []
    for request in requests:
        if not request.done:
            raise RuntimeError(f"fleet request {request.rid} is not "
                               f"terminal; drain the router first")
        results.append(request.result(timeout_s=0.0))
    by_state: dict[str, int] = {}
    for r in results:
        by_state[r["state"]] = by_state.get(r["state"], 0) + 1
    served = [r for r in results if r["state"] == "completed"]
    latencies = [r["fleet_latency_s"] for r in served]
    if wall_s is None:
        first = min(request.submitted_at for request in requests)
        last = max(request.submitted_at + r["fleet_latency_s"]
                   for request, r in zip(requests, results))
        wall_s = max(last - first, 1e-9)

    def mean(values: list[float]) -> float:
        return sum(values) / len(values) if values else math.nan

    return {
        "requests": len(results),
        "states": by_state,
        "completed": len(served),
        "shed": by_state.get("shed", 0),
        "failed": by_state.get("failed", 0),
        "wall_s": wall_s,
        "goodput_rps": len(served) / wall_s,
        "latency_p50_s": percentile(latencies, 50),
        "latency_p99_s": percentile(latencies, 99),
        "latency_mean_s": mean(latencies),
        "coalesced": sum(1 for r in served if r.get("coalesced")),
        "memo_hits": sum(1 for r in served if r.get("memo_hit")),
        "redispatched": sum(1 for r in results
                            if r.get("redispatches", 0) > 0),
        "slo_attainment": (sum(1 for r in served if r.get("slo_met"))
                           / len(served)) if served else math.nan,
        "workers_used": sorted({r.get("worker") for r in served
                                if r.get("worker") is not None}),
    }
