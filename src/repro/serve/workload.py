"""Synthetic open-loop workloads and serving-metric summaries.

An *open-loop* workload submits requests on a Poisson arrival process at
a configured offered load, independent of how fast the server drains
them — the standard way to expose admission control and load shedding
(a closed loop self-throttles and never overloads the queue).

:func:`run_open_loop` drives one workload against a live server;
:func:`summarize` reduces the terminal sessions to the serving metrics
the bench reports: p50/p99 latency, goodput, SLO attainment, and mean
accuracy-at-interrupt (the quantity the anytime model uniquely offers —
what quality did interrupted requests walk away with?).
"""

from __future__ import annotations

import math
import random
import time as _time
from typing import Any, Callable

from .server import AnytimeServer
from .session import Session, SessionState
from .slo import SLO

__all__ = ["run_open_loop", "summarize", "percentile"]


def percentile(values: list[float], q: float) -> float:
    """Nearest-rank percentile (q in [0, 100]); nan on empty input."""
    if not values:
        return math.nan
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"q must be in [0, 100]: {q}")
    ordered = sorted(values)
    rank = max(1, math.ceil(q / 100.0 * len(ordered)))
    return ordered[rank - 1]


def run_open_loop(server: AnytimeServer,
                  make_builder: Callable[[int], Callable[[], Any]],
                  n_requests: int,
                  rate_hz: float,
                  *,
                  slo: SLO | Callable[[int], SLO] | None = None,
                  metric: Callable[[int], Callable[[Any], float] | None]
                  | None = None,
                  wait_s: float = 0.0,
                  seed: int = 0,
                  key: str | Callable[[int], str | None] | None = None,
                  name_prefix: str = "req") -> list[Session]:
    """Submit ``n_requests`` on a Poisson process at ``rate_hz``.

    ``make_builder(i)`` returns the automaton builder for request ``i``
    (each submission needs its own fresh-automaton thunk).  ``slo`` may
    be one SLO for all requests or a per-request factory; ``metric``
    is a per-request factory (or None for no metrics).  ``key`` is an
    optional coalescing key — one for all requests or a per-request
    factory (see :func:`~repro.serve.digest.input_digest`).
    Inter-arrival gaps are exponentially distributed with mean
    ``1/rate_hz``, drawn from a seeded generator so a workload is
    reproducible.

    Returns the submitted sessions in order; they may still be in
    flight — pair with ``server.drain()`` and :func:`summarize`.
    """
    if n_requests <= 0:
        raise ValueError(f"n_requests must be positive: {n_requests}")
    if rate_hz <= 0:
        raise ValueError(f"rate_hz must be positive: {rate_hz}")
    rng = random.Random(seed)
    sessions: list[Session] = []
    for i in range(n_requests):
        request_slo = slo(i) if callable(slo) else slo
        request_metric = metric(i) if metric is not None else None
        request_key = key(i) if callable(key) else key
        sessions.append(server.submit(
            make_builder(i), slo=request_slo, metric=request_metric,
            name=f"{name_prefix}-{i}", wait_s=wait_s,
            key=request_key))
        if i + 1 < n_requests:
            _time.sleep(rng.expovariate(rate_hz))
    return sessions


def summarize(sessions: list[Session],
              wall_s: float | None = None) -> dict[str, Any]:
    """Reduce terminal sessions to the serving metrics.

    Every session must already be terminal (``server.drain()`` first);
    a non-terminal session raises.  ``wall_s`` is the workload's total
    wall time, used for throughput; when omitted it is estimated as the
    span from first submission to last completion.
    """
    if not sessions:
        raise ValueError("no sessions to summarize")
    results = []
    for session in sessions:
        if not session.done:
            raise RuntimeError(
                f"session {session.name!r} is not terminal "
                f"(state={session.state.value}); drain the server first")
        results.append(session.result(timeout_s=0.0))

    by_state = {state.value: 0 for state in SessionState}
    for r in results:
        by_state[r.state.value] += 1

    served = [r for r in results if r.state is SessionState.COMPLETED]
    latencies = [r.latency_s for r in served]
    queue_waits = [r.queue_s for r in served]
    interrupted = [r for r in served if r.interrupted]
    snrs = [r.snr_db for r in served if r.snr_db is not None]
    finite_snrs = [s for s in snrs if math.isfinite(s)]
    interrupt_snrs = [r.snr_db for r in interrupted
                      if r.snr_db is not None and math.isfinite(r.snr_db)]
    if wall_s is None:
        submitted = min(s.submitted_at for s in sessions)
        ended = max(s.submitted_at + s.result(0.0).latency_s
                    for s in sessions)
        wall_s = max(ended - submitted, 1e-9)

    def mean(values: list[float]) -> float:
        return sum(values) / len(values) if values else math.nan

    return {
        "requests": len(results),
        "states": by_state,
        "completed": len(served),
        "shed": by_state[SessionState.SHED.value],
        "failed": by_state[SessionState.FAILED.value],
        "wall_s": wall_s,
        "throughput_rps": len(served) / wall_s,
        "latency_p50_s": percentile(latencies, 50),
        "latency_p99_s": percentile(latencies, 99),
        "latency_mean_s": mean(latencies),
        "queue_wait_mean_s": mean(queue_waits),
        "interrupted": len(interrupted),
        "precise": sum(1 for s in snrs if math.isinf(s) and s > 0),
        "snr_mean_db": mean(finite_snrs),
        "snr_at_interrupt_mean_db": mean(interrupt_snrs),
        "slo_attainment": (sum(1 for r in served if r.slo_met)
                           / len(served)) if served else math.nan,
        "preemptions_mean": mean([float(r.preemptions) for r in served]),
        "coalesced": sum(1 for r in served if r.coalesced),
        "memo_hits": sum(1 for r in served if r.memo_hit),
    }
