"""Canonical request identity for coalescing and fleet placement.

Two requests are *the same work* exactly when they would build the same
automaton over the same input: same application, same input bytes, same
size/seed parameters.  Everything else about a request — its name, its
submission id, its SLO, the identity of its builder closure — is
serving metadata, not work identity, and must not keep identical
requests apart.  :func:`input_digest` reduces work identity to a stable
hex string; servers coalesce on it and the fleet router consistently
places on it, so duplicates land on the same worker and attach to the
same run.

The digest is deliberately content-addressed (dtype + shape + raw
bytes), not parameter-addressed: two callers that generated the same
array through different code paths still coalesce, and a caller that
mutated its input cannot poison another subscriber's answer.
"""

from __future__ import annotations

import hashlib
from typing import Any

import numpy as np

__all__ = ["input_digest", "request_key"]


def _feed_params(h: "hashlib._Hash", params: dict[str, Any]) -> None:
    for name in sorted(params):
        value = params[name]
        if value is None:
            continue
        h.update(f"|{name}={value!r}".encode())


def input_digest(app: str, data: Any = None, **params: Any) -> str:
    """Stable hash of (app name, input bytes, size params) -> hex str.

    ``data`` may be an ndarray (hashed by dtype, shape and raw bytes,
    C-contiguous), raw ``bytes``, or None (parameter-only requests, e.g.
    a declarative fleet spec hashed before the input is materialized).
    Keyword ``params`` are canonicalized by sorted name; None values are
    skipped so an unset default and an absent parameter agree.
    """
    h = hashlib.sha256()
    h.update(f"app={app}".encode())
    if data is not None:
        if isinstance(data, (bytes, bytearray, memoryview)):
            h.update(b"|raw")
            h.update(bytes(data))
        else:
            arr = np.ascontiguousarray(np.asarray(data))
            h.update(f"|dtype={arr.dtype.str}|shape={arr.shape}".encode())
            h.update(arr.tobytes())
    _feed_params(h, params)
    return h.hexdigest()


def request_key(app: str, digest: str) -> str:
    """The coalescing/placement key: ``app`` qualified by its digest.

    Keeping the app name visible (rather than folding it into the hash
    alone) makes traces and fleet affinity tables human-readable.
    """
    return f"{app}:{digest[:16]}"
