"""Deterministic discrete-event execution of anytime automata.

This is the evaluation substrate standing in for the paper's 32-thread
POWER7+ machine (see DESIGN.md).  Every stage runs as a coroutine of
commands; :class:`Compute` costs are divided by the stage's core share and
advance a virtual clock; writes, waits and channel operations are
zero-time synchronization events.  The event order is fully deterministic
(ties broken by submission sequence), so runtime-accuracy profiles are
bit-reproducible — something wall-clock threading cannot offer, and the
reason the benchmarks use this executor.

The execution semantics are exactly the model's: stages run concurrently,
consumers see atomic buffer snapshots, a consumer that finishes a pass
picks up whichever newer version exists (asynchronous pipeline), and
synchronous channels deliver every update in order with optional
backpressure.

Fault tolerance mirrors the threaded executor: a stage exception is
retried (fresh generator, virtual-time backoff), degraded (output sealed
at the last published version; downstream finishes on it), or — under
the fail-fast default — halts the run, which still *returns* the partial
timeline with per-stage :class:`~repro.core.faults.StageReport` records.
Because injected faults are scheduled by command count and the event
order is deterministic, a fault schedule replays bit-identically.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Any

from ..hw.energy import EnergyMeter, EnergyTable
from .buffer import Snapshot
from .channel import ChannelClosed, UpdateChannel
from .controller import StopCondition
from .faults import (FaultInjector, FaultPolicy, StageReport,
                     resolve_policy)
from .graph import AutomatonGraph
from .recording import Timeline, WriteRecord
from .scheduling import SchedulingPolicy, proportional_shares
from .stage import (CHANNEL_END, CloseChannel, Compute, Emit, Lease,
                    PollInputs,
                    Recv, Stage, WaitInputs, Write)
from .syncstage import SynchronousStage
from .tracing import TraceEvent, TraceSink, active_sink

__all__ = ["SimResult", "SimulatedExecutor", "ExecutionError"]


class ExecutionError(RuntimeError):
    """The execution wedged (deadlock) or a stage misbehaved."""


def _find_deadline(stop: StopCondition | None) -> float | None:
    """Extract the tightest virtual-time deadline from a stop tree."""
    from .controller import AnyOf, DeadlineStop

    if stop is None:
        return None
    if isinstance(stop, DeadlineStop):
        return stop.deadline
    if isinstance(stop, AnyOf):
        deadlines = [d for d in (_find_deadline(c)
                                 for c in stop.conditions)
                     if d is not None]
        return min(deadlines) if deadlines else None
    return None


#: payload marking a buffer-waiter wake-up (vs. a step completion)
_WAKE = object()

#: marks "no update pending" for a producer blocked on a full channel
_NO_PENDING = object()


@dataclass
class SimResult:
    """Outcome of one simulated run.

    ``completed`` means every stage ran to its natural end without
    degradation; ``stopped_early`` means a stop condition fired — a pure
    stage failure sets *neither* (inspect ``stage_reports``/``errors``).
    """

    timeline: Timeline
    duration: float
    energy: float
    completed: bool            # all stages ran to completion
    stopped_early: bool        # a stop condition fired
    shares: dict[str, float]
    final_values: dict[str, Any] = field(default_factory=dict)
    errors: list[tuple[str, BaseException]] = field(default_factory=list)
    stage_reports: dict[str, StageReport] = field(default_factory=dict)

    def output_records(self, buffer: str) -> list[WriteRecord]:
        return self.timeline.for_buffer(buffer)

    @property
    def degraded_stages(self) -> list[str]:
        return sorted(n for n, r in self.stage_reports.items()
                      if r.degraded)

    @property
    def failed_stages(self) -> list[str]:
        return sorted(n for n, r in self.stage_reports.items() if r.failed)


class _Process:
    """Bookkeeping for one stage's coroutine."""

    __slots__ = ("stage", "gen", "done", "waiting_inputs",
                 "waiting_recv", "waiting_emit", "wait_started",
                 "wait_kind", "span_open")

    def __init__(self, stage: Stage) -> None:
        self.stage = stage
        self.gen = stage.body()
        self.done = False
        self.waiting_inputs: dict[str, int] | None = None
        self.waiting_recv = False
        self.waiting_emit: Any = _NO_PENDING  # pending update when blocked
        self.wait_started: float | None = None  # block time, for tracing
        self.wait_kind = ""                     # "inputs"|"recv"|"emit"
        self.span_open = False                  # a stage.start lacks its E


class SimulatedExecutor:
    """Runs an :class:`AutomatonGraph` under virtual time.

    Parameters
    ----------
    graph:
        The validated automaton.
    total_cores:
        Core budget divided among stages by ``schedule``.
    schedule:
        A :data:`~repro.core.scheduling.SchedulingPolicy` or an explicit
        ``{stage: share}`` dict.
    stop:
        Optional :class:`StopCondition`, consulted after each watched
        write.
    watch:
        Buffer names whose written values are retained in the timeline
        (defaults to the terminal buffer).  The stop condition only sees
        watched writes.
    energy_table:
        Cost table for the energy meter.
    faults:
        A :class:`FaultPolicy` for every stage, or a ``{stage: policy}``
        mapping (key ``"*"`` is the default).  None = fail-fast.
    injector:
        Optional :class:`FaultInjector` test harness (single-use).
    strict:
        When True, a run ending with an unrecovered stage failure
        raises :class:`ExecutionError` instead of returning the partial
        result.
    trace:
        Optional :class:`~repro.core.tracing.TraceSink` receiving
        structured execution events (stage spans, waits, buffer and
        channel operations, fault dispositions).  None — or a sink with
        ``enabled=False`` such as ``NullSink`` — disables every hook at
        a single ``is None`` check (zero overhead when off).
    trace_metric / trace_reference:
        When both tracing and a metric are supplied, each watched write
        additionally emits an ``accuracy.sample`` event with
        ``metric(value, trace_reference)`` — the accuracy-vs-time event
        stream.
    lease_k:
        Cap on :class:`~repro.core.stage.Lease` grants — how many
        accuracy levels a stage may batch into one vectorized kernel
        pass.  ``1`` disables batching; the published versions are
        bit-identical at any setting.
    resume:
        A :class:`~repro.ckpt.state.ResumeInfo` from a restored
        checkpoint: finished stages are not re-run, the virtual clock,
        energy meter, stage reports and stop-condition progress
        continue from the interrupted run, and the result's timeline
        is prefixed with the interrupted run's records.
    checkpoint_at_stop:
        Optional path: when the run ends (stop condition or natural
        completion), capture a checkpoint there.  Virtual time has no
        live threads to quiesce — the event loop's rest state *is* the
        quiesced state — so the capture is synchronous and exact.
    """

    def __init__(self, graph: AutomatonGraph,
                 total_cores: float = 32.0,
                 schedule: SchedulingPolicy | dict[str, float]
                 = proportional_shares,
                 stop: StopCondition | None = None,
                 watch: set[str] | None = None,
                 energy_table: EnergyTable | None = None,
                 dynamic_shares: bool = False,
                 faults: FaultPolicy | dict[str, FaultPolicy] | None = None,
                 injector: FaultInjector | None = None,
                 strict: bool = False,
                 trace: TraceSink | None = None,
                 trace_metric: Any = None,
                 trace_reference: Any = None,
                 lease_k: int = 8,
                 resume: Any = None,
                 checkpoint_at_stop: str | None = None) -> None:
        if lease_k < 1:
            raise ValueError(f"lease_k must be >= 1, got {lease_k}")
        self.lease_k = int(lease_k)
        if total_cores <= 0:
            raise ValueError(f"total_cores must be positive: {total_cores}")
        self.graph = graph
        #: when True, cores are reassigned dynamically: the policy's
        #: shares become *weights* and the machine is divided among the
        #: stages computing at each instant (generalized processor
        #: sharing; paper IV-C2's future-work scheduler)
        self.dynamic_shares = bool(dynamic_shares)
        self.total_cores = float(total_cores)
        if callable(schedule):
            self.shares = schedule(graph, self.total_cores)
        else:
            self.shares = dict(schedule)
        for stage in graph.stages:
            share = self.shares.get(stage.name)
            if share is None or share <= 0:
                raise ValueError(
                    f"stage {stage.name!r} has no positive core share")
        self.stop = stop
        if watch is None:
            terminals = graph.terminal_stages()
            watch = {terminals[0].output.name} if len(terminals) == 1 \
                else {t.output.name for t in terminals}
        self.watch = set(watch)
        self.faults = faults
        self.injector = injector
        self.strict = strict
        self.sink = active_sink(trace)
        self.trace_metric = trace_metric
        self.trace_reference = trace_reference
        self.meter = EnergyMeter(table=energy_table or EnergyTable())
        # -- checkpoint/restore (repro.ckpt) -----------------------------
        self.run_name = "automaton"
        self.app_spec: dict[str, Any] | None = None
        self._resume = resume
        self.checkpoint_at_stop = checkpoint_at_stop
        if resume is not None:
            self.meter.charge(resume.energy)
            from ..ckpt.state import restore_stop
            restore_stop(self.stop, resume.stop)

    # -- kernel ----------------------------------------------------------

    def run(self) -> SimResult:
        procs = {s.name: _Process(s) for s in self.graph.stages}
        if self._resume is not None:
            reports = self._resume.seed_reports(sorted(procs))
            for fname in self._resume.finished:
                # restored terminal stage: its buffer ladder (and seal /
                # final flags) came back with the graph state; it never
                # enters the event loop
                procs[fname].done = True
        else:
            reports = {name: StageReport(stage=name, attempts=1)
                       for name in procs}
        errors: list[tuple[str, BaseException]] = []
        if self.injector is not None:
            for name, p in procs.items():
                p.gen = self.injector.wrap(name, p.gen)
        channel_consumer: dict[int, _Process] = {}
        channel_producer: dict[int, _Process] = {}
        for p in procs.values():
            if isinstance(p.stage, SynchronousStage):
                channel_consumer[id(p.stage.channel)] = p
            if p.stage.emit_to is not None:
                channel_producer[id(p.stage.emit_to)] = p
        buffer_waiters: dict[str, list[_Process]] = {}

        timeline = Timeline()
        heap: list[tuple[float, int, str, Any]] = []
        seq = 0
        # a resumed run continues the interrupted run's virtual clock
        t0 = (self._resume.duration if self._resume is not None else 0.0)
        for name in sorted(procs):
            if procs[name].done:
                continue
            heapq.heappush(heap, (t0, seq, name, None))
            seq += 1
        now = t0
        stopped = False
        failed = False
        pool = None
        if self.dynamic_shares:
            from .procsharing import ProcessorPool

            pool = ProcessorPool(self.total_cores, self.shares)
        # Deadlines are enforced by the kernel itself: no event past the
        # deadline executes, so the timeline never contains an output
        # version the deadline would not actually have allowed.
        deadline = _find_deadline(self.stop)

        # -- tracing -----------------------------------------------------
        # Every hook below is a single `is None` check when tracing is
        # off; the wait/span bookkeeping also feeds the StageReport
        # counters, which are maintained unconditionally (cheap).
        sink = self.sink

        def emit(kind: str, stage: str | None = None,
                 target: str | None = None, **args: Any) -> None:
            sink.emit(TraceEvent(now, kind, stage=stage, target=target,
                                 args=args))

        if sink is not None:
            chan_stage: dict[tuple[str, str], str] = {}
            for p in procs.values():
                if p.stage.emit_to is not None:
                    chan_stage[(p.stage.emit_to.name, "out")] = \
                        p.stage.name
                if isinstance(p.stage, SynchronousStage):
                    chan_stage[(p.stage.channel.name, "in")] = \
                        p.stage.name

            def _buffer_hook(kind: str, name: str, **args: Any) -> None:
                emit(kind, stage=args.pop("writer", None), target=name,
                     **args)

            def _channel_hook(kind: str, name: str, **args: Any) -> None:
                side = "in" if kind == "channel.recv" else "out"
                emit(kind, stage=chan_stage.get((name, side)),
                     target=name, **args)

            for b in self.graph.buffers.values():
                b.tracer = _buffer_hook
            for p in procs.values():
                if p.stage.emit_to is not None:
                    p.stage.emit_to.tracer = _channel_hook
            if self.injector is not None:
                self.injector.tracer = (
                    lambda s, c, k: emit("fault.injected", stage=s,
                                         at=c, fault=k))

        def trace_start(proc: _Process, attempt: int) -> None:
            proc.span_open = True
            if sink is not None:
                emit("stage.start", stage=proc.stage.name,
                     attempt=attempt)

        def trace_finish(proc: _Process, status: str,
                         **args: Any) -> None:
            if not proc.span_open:
                return
            proc.span_open = False
            if sink is not None:
                emit("stage.finish", stage=proc.stage.name,
                     status=status, **args)

        def begin_wait(proc: _Process, kind: str) -> None:
            proc.wait_started = now
            proc.wait_kind = kind

        def end_wait(proc: _Process) -> None:
            if proc.wait_started is None:
                return
            elapsed = now - proc.wait_started
            reports[proc.stage.name].record_wait(elapsed)
            if sink is not None:
                sink.emit(TraceEvent(
                    proc.wait_started, "stage.wait",
                    stage=proc.stage.name,
                    args={"dur": elapsed, "wait": proc.wait_kind}))
            proc.wait_started = None

        def snapshots(stage: Stage) -> dict[str, Snapshot]:
            return {b.name: b.snapshot() for b in stage.inputs}

        def wait_satisfied(stage: Stage, seen: dict[str, int],
                           ) -> dict[str, Snapshot] | None:
            snaps = snapshots(stage)
            if not snaps:
                return snaps
            if any(s.empty for s in snaps.values()):
                return None
            if any(s.version > seen.get(n, 0) for n, s in snaps.items()):
                return snaps
            return None

        def schedule(proc: _Process, at: float, payload: Any) -> None:
            nonlocal seq
            heapq.heappush(heap, (at, seq, proc.stage.name, payload))
            seq += 1

        def inputs_exhausted(stage: Stage) -> bool:
            """An unsatisfied wait that can never be satisfied: an input
            is empty and sealed (producer died before publishing), or
            every input is frozen (final or sealed)."""
            snaps = snapshots(stage)
            if not snaps:
                return False
            if any(s.empty and s.sealed for s in snaps.values()):
                return True
            return all(s.exhausted for s in snaps.values())

        def seal_and_wake(proc: _Process) -> None:
            """Freeze everything the stage feeds and release anyone
            blocked on it, so degradation cascades instead of wedging."""
            stage = proc.stage
            stage.output.seal()
            for waiter in buffer_waiters.pop(stage.output.name, []):
                if not waiter.done:
                    schedule(waiter, now, _WAKE)
            if stage.emit_to is not None and not stage.emit_to.closed:
                stage.emit_to.abort()
                consumer = channel_consumer[id(stage.emit_to)]
                if consumer.waiting_recv and len(stage.emit_to) == 0:
                    consumer.waiting_recv = False
                    end_wait(consumer)
                    schedule(consumer, now, CHANNEL_END)
            if isinstance(stage, SynchronousStage) \
                    and not stage.channel.closed:
                stage.channel.abort()
                producer = channel_producer.get(id(stage.channel))
                if producer is not None \
                        and producer.waiting_emit is not _NO_PENDING:
                    # The pending update is lost with the stream; resume
                    # the producer so its next emit observes the abort.
                    producer.waiting_emit = _NO_PENDING
                    end_wait(producer)
                    schedule(producer, now, None)

        def finish_degraded(proc: _Process) -> None:
            proc.done = True
            proc.waiting_inputs = None
            proc.waiting_recv = False
            end_wait(proc)
            reports[proc.stage.name].degraded = True
            trace_finish(proc, "degraded")
            proc.gen.close()
            seal_and_wake(proc)

        def handle_failure(proc: _Process, exc: BaseException) -> str:
            """Apply the stage's fault policy; returns the action taken
            ("restarted", "degraded", "failed" or "stopped")."""
            name = proc.stage.name
            report = reports[name]
            failures = report.record_failure(exc)
            errors.append((name, exc))
            trace_finish(proc, "error", error=repr(exc))
            try:
                proc.gen.close()
            except RuntimeError:   # pragma: no cover - defensive
                pass
            if self.stop is not None \
                    and self.stop.on_failure(name, exc):
                finish_degraded(proc)
                return "stopped"
            policy = resolve_policy(self.faults, name)
            action = policy.decide(failures)
            if action == "restart" and proc.stage.emit_to is not None:
                # A streaming parent must not re-emit updates the
                # consumer already folded; degrade instead.
                action = "degrade"
            if action == "restart":
                report.attempts += 1
                gen = proc.stage.body()
                if self.injector is not None:
                    gen = self.injector.wrap(name, gen)
                proc.gen = gen
                proc.waiting_inputs = None
                proc.waiting_recv = False
                proc.waiting_emit = _NO_PENDING
                proc.wait_started = None
                delay = policy.restart_delay(failures)
                if sink is not None:
                    emit("stage.restart", stage=name, failures=failures,
                         delay=delay)
                trace_start(proc, report.attempts)
                schedule(proc, now + delay, None)
                return "restarted"
            if action == "fail":
                report.failed = True
                proc.done = True
                seal_and_wake(proc)
                return "failed"
            finish_degraded(proc)
            return "degraded"

        for pname in sorted(procs):
            if not procs[pname].done:
                trace_start(procs[pname], max(1, reports[pname].attempts))

        while not stopped and not failed:
            # Pick the next event: the heap's head or, under dynamic
            # sharing, the processor pool's earliest compute completion.
            heap_time = heap[0][0] if heap else None
            completion = pool.next_completion() if pool else None
            if heap_time is None and completion is None:
                break
            use_pool = completion is not None and (
                heap_time is None or completion[0] < heap_time)
            next_time = completion[0] if use_pool else heap_time
            if deadline is not None and next_time > deadline:
                stopped = True
                break
            if use_pool:
                now, name = completion
                pool.complete(name, now)
                payload = None
            else:
                now, _, name, payload = heapq.heappop(heap)
            proc = procs[name]
            if proc.done:
                continue
            if payload is _WAKE:
                # Wake-up from a buffer write or seal.  Stale wakes (the
                # process was already resumed via another input's write)
                # and unsatisfied wakes re-block without touching the
                # generator; a wake that can never be satisfied (all
                # producers frozen) finishes the stage degraded.
                if proc.waiting_inputs is None:
                    continue
                snaps = wait_satisfied(proc.stage, proc.waiting_inputs)
                if snaps is None:
                    if inputs_exhausted(proc.stage):
                        proc.waiting_inputs = None
                        finish_degraded(proc)
                    continue
                proc.waiting_inputs = None
                end_wait(proc)
                payload = snaps
            send_value = payload
            while True:
                try:
                    cmd = proc.gen.send(send_value)
                except StopIteration:
                    proc.done = True
                    if not reports[name].degraded:
                        reports[name].completed = True
                    trace_finish(proc, "degraded"
                                 if reports[name].degraded
                                 else "completed")
                    seal_and_wake(proc)
                    break
                except BaseException as exc:   # noqa: BLE001 - policy
                    action = handle_failure(proc, exc)
                    if action == "failed":
                        failed = True
                    elif action == "stopped":
                        stopped = True
                    break
                send_value = None
                reports[name].commands += 1
                if isinstance(cmd, Compute):
                    self.meter.charge(cmd.energy if cmd.energy is not None
                                      else cmd.cost)
                    if pool is not None:
                        pool.start(name, cmd.cost, now)
                    else:
                        schedule(proc, now + cmd.cost / self.shares[name],
                                 None)
                    break
                elif isinstance(cmd, Write):
                    stage = proc.stage
                    final = cmd.final
                    if final and isinstance(stage, SynchronousStage) \
                            and stage.channel.aborted:
                        # The update stream was cut short: the aggregate
                        # is an approximation, not the precise output.
                        final = False
                        reports[name].degraded = True
                    try:
                        version = stage.output.write(
                            cmd.value, final, writer=stage.name,
                            transfer=cmd.transfer)
                    except ValueError as exc:
                        action = handle_failure(proc, exc)
                        if action == "failed":
                            failed = True
                        elif action == "stopped":
                            stopped = True
                        break
                    watched = stage.output.name in self.watch
                    record = WriteRecord(
                        now, stage.output.name, version, final,
                        self.meter.total,
                        cmd.value if watched else None)
                    timeline.add(record)
                    if sink is not None and watched \
                            and self.trace_metric is not None:
                        emit("accuracy.sample", stage=stage.name,
                             target=stage.output.name,
                             accuracy=float(self.trace_metric(
                                 cmd.value, self.trace_reference)),
                             version=version)
                    for waiter in buffer_waiters.pop(
                            stage.output.name, []):
                        if not waiter.done:
                            schedule(waiter, now, _WAKE)
                    if watched and self.stop is not None \
                            and self.stop.should_stop(record):
                        stopped = True
                        break
                elif isinstance(cmd, WaitInputs):
                    snaps = wait_satisfied(proc.stage, cmd.seen)
                    if snaps is not None:
                        send_value = snaps
                        continue
                    if inputs_exhausted(proc.stage):
                        finish_degraded(proc)
                        break
                    proc.waiting_inputs = dict(cmd.seen)
                    begin_wait(proc, "inputs")
                    for b in proc.stage.inputs:
                        buffer_waiters.setdefault(b.name, []).append(proc)
                    break
                elif isinstance(cmd, PollInputs):
                    send_value = wait_satisfied(
                        proc.stage, cmd.seen) is not None
                elif isinstance(cmd, Lease):
                    send_value = max(1, min(cmd.want, self.lease_k))
                elif isinstance(cmd, Emit):
                    channel = proc.stage.emit_to
                    assert channel is not None
                    if not channel.closed and channel.full:
                        proc.waiting_emit = cmd.update
                        begin_wait(proc, "emit")
                        break
                    try:
                        channel.emit(cmd.update)
                    except ChannelClosed as exc:
                        # The consumer died and aborted the stream.
                        action = handle_failure(proc, exc)
                        if action == "failed":
                            failed = True
                        elif action == "stopped":
                            stopped = True
                        break
                    consumer = channel_consumer[id(channel)]
                    if consumer.waiting_recv:
                        consumer.waiting_recv = False
                        end_wait(consumer)
                        ok, update = channel.try_recv()
                        assert ok
                        schedule(consumer, now, update)
                elif isinstance(cmd, CloseChannel):
                    channel = proc.stage.emit_to
                    assert channel is not None
                    channel.close()
                    consumer = channel_consumer[id(channel)]
                    if consumer.waiting_recv and len(channel) == 0:
                        consumer.waiting_recv = False
                        end_wait(consumer)
                        schedule(consumer, now, CHANNEL_END)
                elif isinstance(cmd, Recv):
                    channel = proc.stage.channel  # type: ignore[attr-defined]
                    was_full = channel.full
                    try:
                        ok, update = channel.try_recv()
                    except ChannelClosed:
                        send_value = CHANNEL_END
                        continue
                    if ok:
                        send_value = update
                        if was_full:
                            producer = channel_producer[id(channel)]
                            pending = producer.waiting_emit
                            if pending is not _NO_PENDING:
                                producer.waiting_emit = _NO_PENDING
                                end_wait(producer)
                                channel.emit(pending)
                                schedule(producer, now, None)
                        continue
                    proc.waiting_recv = True
                    begin_wait(proc, "recv")
                    break
                else:
                    raise ExecutionError(
                        f"stage {name!r} yielded unknown command "
                        f"{cmd!r}")

        undone = [n for n, p in procs.items() if not p.done]
        if undone and not stopped and not failed and not heap:
            raise ExecutionError(
                f"execution wedged; blocked stages: {undone}")
        # Close any span left open by a stop / halt so a Chrome trace
        # always carries matched B/E pairs.
        for proc in procs.values():
            trace_finish(proc, "stopped" if stopped else "halted")
        if self._resume is not None and self._resume.prefix.records:
            timeline = Timeline(self._resume.prefix.records
                                + timeline.records)
        if self.checkpoint_at_stop is not None:
            self._write_checkpoint(self.checkpoint_at_stop, procs,
                                   reports, timeline, now, heap)
        completed = (not stopped
                     and all(r.completed for r in reports.values()))
        if self.strict:
            unrecovered = [n for n, r in reports.items()
                           if r.last_error is not None
                           and not r.completed]
            if unrecovered:
                first = next(exc for n, exc in errors
                             if n == unrecovered[0])
                raise ExecutionError(
                    f"stage {unrecovered[0]!r} failed during simulated "
                    f"execution: {first}") from first
        final_values = {b.name: b.snapshot().value
                        for b in self.graph.buffers.values()}
        return SimResult(timeline=timeline, duration=now,
                         energy=self.meter.total, completed=completed,
                         stopped_early=stopped, shares=dict(self.shares),
                         final_values=final_values, errors=errors,
                         stage_reports=reports)

    # -- checkpoint (repro.ckpt) -----------------------------------------

    def _write_checkpoint(self, path: str, procs: dict[str, _Process],
                          reports: dict[str, StageReport],
                          timeline: Timeline, now: float,
                          heap: list) -> str:
        """Capture the run at the event loop's rest point.

        Virtual time needs no quiesce: between events nothing is
        mid-flight except (a) generators parked at their last yielded
        command — covered by the stage cursor protocol — and (b) heap
        events carrying a channel update that was dequeued but never
        delivered to its synchronous consumer; those are requeued into
        the checkpointed channel state so no stream element is lost.
        """
        from ..ckpt.state import (STATUS_COMPLETED, STATUS_DEGRADED,
                                  STATUS_FAILED, STATUS_LIVE,
                                  assemble_payload, save_checkpoint)

        requeue: dict[str, list[Any]] = {}
        for _at, _sq, pname, payload in sorted(heap):
            p = procs[pname]
            if p.done or not isinstance(p.stage, SynchronousStage):
                continue
            if payload is None or payload is _WAKE \
                    or payload is CHANNEL_END \
                    or isinstance(payload, dict) and all(
                        isinstance(v, Snapshot) for v in payload.values()):
                continue
            requeue.setdefault(p.stage.channel.name, []).append(payload)
        stages: dict[str, dict[str, Any]] = {}
        for pname, p in procs.items():
            report = reports[pname]
            cursor = None
            if not p.done:
                # note: a still-running stage may already carry the
                # degraded flag (final-after-abort); it stays LIVE here
                # — the flag rides along in its restored report
                status = STATUS_LIVE
                emitted = (p.stage.emit_to.emitted
                           if p.stage.emit_to is not None else 0)
                cursor = p.stage.capture_state(p.stage.output.version,
                                               emitted)
            elif report.failed:
                status = STATUS_FAILED
            elif report.degraded:
                status = STATUS_DEGRADED
            else:
                status = STATUS_COMPLETED
            stages[pname] = {"status": status, "cursor": cursor}
        payload = assemble_payload(
            self.graph, name=self.run_name, executor="simulated",
            stages=stages, reports=reports, energy=self.meter.total,
            timeline=timeline, duration=now, stop=self.stop,
            channel_requeue=requeue)
        return save_checkpoint(path, payload, app_spec=self.app_spec)
