"""Deterministic discrete-event execution of anytime automata.

This is the evaluation substrate standing in for the paper's 32-thread
POWER7+ machine (see DESIGN.md).  Every stage runs as a coroutine of
commands; :class:`Compute` costs are divided by the stage's core share and
advance a virtual clock; writes, waits and channel operations are
zero-time synchronization events.  The event order is fully deterministic
(ties broken by submission sequence), so runtime-accuracy profiles are
bit-reproducible — something wall-clock threading cannot offer, and the
reason the benchmarks use this executor.

The execution semantics are exactly the model's: stages run concurrently,
consumers see atomic buffer snapshots, a consumer that finishes a pass
picks up whichever newer version exists (asynchronous pipeline), and
synchronous channels deliver every update in order with optional
backpressure.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Any

from ..hw.energy import EnergyMeter, EnergyTable
from .buffer import Snapshot
from .channel import ChannelClosed, UpdateChannel
from .controller import StopCondition
from .graph import AutomatonGraph
from .recording import Timeline, WriteRecord
from .scheduling import SchedulingPolicy, proportional_shares
from .stage import (CHANNEL_END, CloseChannel, Compute, Emit, PollInputs,
                    Recv, Stage, WaitInputs, Write)
from .syncstage import SynchronousStage

__all__ = ["SimResult", "SimulatedExecutor", "ExecutionError"]


class ExecutionError(RuntimeError):
    """The execution wedged (deadlock) or a stage misbehaved."""


def _find_deadline(stop: StopCondition | None) -> float | None:
    """Extract the tightest virtual-time deadline from a stop tree."""
    from .controller import AnyOf, DeadlineStop

    if stop is None:
        return None
    if isinstance(stop, DeadlineStop):
        return stop.deadline
    if isinstance(stop, AnyOf):
        deadlines = [d for d in (_find_deadline(c)
                                 for c in stop.conditions)
                     if d is not None]
        return min(deadlines) if deadlines else None
    return None


#: payload marking a buffer-waiter wake-up (vs. a step completion)
_WAKE = object()

#: marks "no update pending" for a producer blocked on a full channel
_NO_PENDING = object()


@dataclass
class SimResult:
    """Outcome of one simulated run."""

    timeline: Timeline
    duration: float
    energy: float
    completed: bool            # all stages ran to completion
    stopped_early: bool        # a stop condition fired
    shares: dict[str, float]
    final_values: dict[str, Any] = field(default_factory=dict)

    def output_records(self, buffer: str) -> list[WriteRecord]:
        return self.timeline.for_buffer(buffer)


class _Process:
    """Bookkeeping for one stage's coroutine."""

    __slots__ = ("stage", "gen", "done", "waiting_inputs",
                 "waiting_recv", "waiting_emit")

    def __init__(self, stage: Stage) -> None:
        self.stage = stage
        self.gen = stage.body()
        self.done = False
        self.waiting_inputs: dict[str, int] | None = None
        self.waiting_recv = False
        self.waiting_emit: Any = _NO_PENDING  # pending update when blocked


class SimulatedExecutor:
    """Runs an :class:`AutomatonGraph` under virtual time.

    Parameters
    ----------
    graph:
        The validated automaton.
    total_cores:
        Core budget divided among stages by ``schedule``.
    schedule:
        A :data:`~repro.core.scheduling.SchedulingPolicy` or an explicit
        ``{stage: share}`` dict.
    stop:
        Optional :class:`StopCondition`, consulted after each watched
        write.
    watch:
        Buffer names whose written values are retained in the timeline
        (defaults to the terminal buffer).  The stop condition only sees
        watched writes.
    energy_table:
        Cost table for the energy meter.
    """

    def __init__(self, graph: AutomatonGraph,
                 total_cores: float = 32.0,
                 schedule: SchedulingPolicy | dict[str, float]
                 = proportional_shares,
                 stop: StopCondition | None = None,
                 watch: set[str] | None = None,
                 energy_table: EnergyTable | None = None,
                 dynamic_shares: bool = False) -> None:
        if total_cores <= 0:
            raise ValueError(f"total_cores must be positive: {total_cores}")
        self.graph = graph
        #: when True, cores are reassigned dynamically: the policy's
        #: shares become *weights* and the machine is divided among the
        #: stages computing at each instant (generalized processor
        #: sharing; paper IV-C2's future-work scheduler)
        self.dynamic_shares = bool(dynamic_shares)
        self.total_cores = float(total_cores)
        if callable(schedule):
            self.shares = schedule(graph, self.total_cores)
        else:
            self.shares = dict(schedule)
        for stage in graph.stages:
            share = self.shares.get(stage.name)
            if share is None or share <= 0:
                raise ValueError(
                    f"stage {stage.name!r} has no positive core share")
        self.stop = stop
        if watch is None:
            terminals = graph.terminal_stages()
            watch = {terminals[0].output.name} if len(terminals) == 1 \
                else {t.output.name for t in terminals}
        self.watch = set(watch)
        self.meter = EnergyMeter(table=energy_table or EnergyTable())

    # -- kernel ----------------------------------------------------------

    def run(self) -> SimResult:
        procs = {s.name: _Process(s) for s in self.graph.stages}
        channel_consumer: dict[int, _Process] = {}
        channel_producer: dict[int, _Process] = {}
        for p in procs.values():
            if isinstance(p.stage, SynchronousStage):
                channel_consumer[id(p.stage.channel)] = p
            if p.stage.emit_to is not None:
                channel_producer[id(p.stage.emit_to)] = p
        buffer_waiters: dict[str, list[_Process]] = {}

        timeline = Timeline()
        heap: list[tuple[float, int, str, Any]] = []
        seq = 0
        for name in sorted(procs):
            heapq.heappush(heap, (0.0, seq, name, None))
            seq += 1
        now = 0.0
        stopped = False
        pool = None
        if self.dynamic_shares:
            from .procsharing import ProcessorPool

            pool = ProcessorPool(self.total_cores, self.shares)
        # Deadlines are enforced by the kernel itself: no event past the
        # deadline executes, so the timeline never contains an output
        # version the deadline would not actually have allowed.
        deadline = _find_deadline(self.stop)

        def snapshots(stage: Stage) -> dict[str, Snapshot]:
            return {b.name: b.snapshot() for b in stage.inputs}

        def wait_satisfied(stage: Stage, seen: dict[str, int],
                           ) -> dict[str, Snapshot] | None:
            snaps = snapshots(stage)
            if not snaps:
                return snaps
            if any(s.empty for s in snaps.values()):
                return None
            if any(s.version > seen.get(n, 0) for n, s in snaps.items()):
                return snaps
            return None

        def schedule(proc: _Process, at: float, payload: Any) -> None:
            nonlocal seq
            heapq.heappush(heap, (at, seq, proc.stage.name, payload))
            seq += 1

        while not stopped:
            # Pick the next event: the heap's head or, under dynamic
            # sharing, the processor pool's earliest compute completion.
            heap_time = heap[0][0] if heap else None
            completion = pool.next_completion() if pool else None
            if heap_time is None and completion is None:
                break
            use_pool = completion is not None and (
                heap_time is None or completion[0] < heap_time)
            next_time = completion[0] if use_pool else heap_time
            if deadline is not None and next_time > deadline:
                stopped = True
                break
            if use_pool:
                now, name = completion
                pool.complete(name, now)
                payload = None
            else:
                now, _, name, payload = heapq.heappop(heap)
            proc = procs[name]
            if proc.done:
                continue
            if payload is _WAKE:
                # Wake-up from a buffer write.  Stale wakes (the process
                # was already resumed via another input's write) and
                # unsatisfied wakes re-block without touching the
                # generator.
                if proc.waiting_inputs is None:
                    continue
                snaps = wait_satisfied(proc.stage, proc.waiting_inputs)
                if snaps is None:
                    continue
                proc.waiting_inputs = None
                payload = snaps
            send_value = payload
            while True:
                try:
                    cmd = proc.gen.send(send_value)
                except StopIteration:
                    proc.done = True
                    break
                send_value = None
                if isinstance(cmd, Compute):
                    self.meter.charge(cmd.energy if cmd.energy is not None
                                      else cmd.cost)
                    if pool is not None:
                        pool.start(name, cmd.cost, now)
                    else:
                        schedule(proc, now + cmd.cost / self.shares[name],
                                 None)
                    break
                elif isinstance(cmd, Write):
                    stage = proc.stage
                    version = stage.output.write(cmd.value, cmd.final,
                                                 writer=stage.name)
                    watched = stage.output.name in self.watch
                    record = WriteRecord(
                        now, stage.output.name, version, cmd.final,
                        self.meter.total,
                        cmd.value if watched else None)
                    timeline.add(record)
                    for waiter in buffer_waiters.pop(
                            stage.output.name, []):
                        if not waiter.done:
                            schedule(waiter, now, _WAKE)
                    if watched and self.stop is not None \
                            and self.stop.should_stop(record):
                        stopped = True
                        break
                elif isinstance(cmd, WaitInputs):
                    snaps = wait_satisfied(proc.stage, cmd.seen)
                    if snaps is not None:
                        send_value = snaps
                        continue
                    proc.waiting_inputs = dict(cmd.seen)
                    for b in proc.stage.inputs:
                        buffer_waiters.setdefault(b.name, []).append(proc)
                    break
                elif isinstance(cmd, PollInputs):
                    send_value = wait_satisfied(
                        proc.stage, cmd.seen) is not None
                elif isinstance(cmd, Emit):
                    channel = proc.stage.emit_to
                    assert channel is not None
                    if channel.full:
                        proc.waiting_emit = cmd.update
                        break
                    channel.emit(cmd.update)
                    consumer = channel_consumer[id(channel)]
                    if consumer.waiting_recv:
                        consumer.waiting_recv = False
                        ok, update = channel.try_recv()
                        assert ok
                        schedule(consumer, now, update)
                elif isinstance(cmd, CloseChannel):
                    channel = proc.stage.emit_to
                    assert channel is not None
                    channel.close()
                    consumer = channel_consumer[id(channel)]
                    if consumer.waiting_recv and len(channel) == 0:
                        consumer.waiting_recv = False
                        schedule(consumer, now, CHANNEL_END)
                elif isinstance(cmd, Recv):
                    channel = proc.stage.channel  # type: ignore[attr-defined]
                    was_full = channel.full
                    try:
                        ok, update = channel.try_recv()
                    except ChannelClosed:
                        send_value = CHANNEL_END
                        continue
                    if ok:
                        send_value = update
                        if was_full:
                            producer = channel_producer[id(channel)]
                            pending = producer.waiting_emit
                            if pending is not _NO_PENDING:
                                producer.waiting_emit = _NO_PENDING
                                channel.emit(pending)
                                schedule(producer, now, None)
                        continue
                    proc.waiting_recv = True
                    break
                else:
                    raise ExecutionError(
                        f"stage {name!r} yielded unknown command "
                        f"{cmd!r}")

        completed = all(p.done for p in procs.values())
        if not completed and not stopped and not heap:
            blocked = [n for n, p in procs.items() if not p.done]
            raise ExecutionError(
                f"execution wedged; blocked stages: {blocked}")
        final_values = {b.name: b.snapshot().value
                        for b in self.graph.buffers.values()}
        return SimResult(timeline=timeline, duration=now,
                         energy=self.meter.total, completed=completed,
                         stopped_early=stopped, shares=dict(self.shares),
                         final_values=final_values)
