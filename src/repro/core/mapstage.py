"""Output-sampled map stages (paper Section III-B2, "Output Sampling").

A map computation generates a set of distinct output elements, each a
function of some input elements: ``O_i[p(i)] = x_{m(p(i))}(I)``.  Output
sampling permutes the order in which output elements are produced; the
elements computed so far, completed by a fill policy, form the current
approximation.  This is the workhorse of the paper's image applications
(2dconv, debayer, histeq's apply stage, kmeans' assignment stage).
"""

from __future__ import annotations

from typing import Any, Callable, Sequence

import numpy as np

from ..anytime.fill import FillPolicy, TreeFill
from ..anytime.permutations import Permutation, TreePermutation
from .buffer import VersionedBuffer
from .channel import UpdateChannel
from .diffusive import DiffusiveStage

__all__ = ["MapStage"]


class MapStage(DiffusiveStage):
    """A diffusive stage computing output elements in permuted order.

    Parameters
    ----------
    element_fn:
        ``element_fn(flat_indices, *input_values) -> values`` — computes
        the output elements at the given flat indices (vectorized).  Must
        be pure (Property 1).
    out_shape:
        Shape of the output array; its leading axes (as many as
        ``shape``) are the sampled element space, trailing axes (e.g.
        RGB channels) ride along per element.
    dtype:
        Output element dtype.
    fill:
        Fill policy completing the unsampled elements; defaults to
        progressive-resolution :class:`TreeFill` for tree permutations
        and zero-fill semantics otherwise (a FillPolicy instance is
        required for non-tree permutations if filling matters).
    warm_start:
        Optional dense array seeding the output state — e.g. the
        previous frame's output in a streaming pipeline.  Elements not
        yet recomputed publish the warm values instead of fills, so
        even the very first version of a similar frame is already
        close (temporal diffusion).
    """

    def __init__(self, name: str, output: VersionedBuffer,
                 inputs: tuple[VersionedBuffer, ...],
                 element_fn: Callable[..., np.ndarray],
                 shape: int | Sequence[int],
                 out_shape: Sequence[int] | None = None,
                 dtype: np.dtype | type = np.float64,
                 permutation: Permutation | None = None,
                 fill: FillPolicy | None = None,
                 chunks: int = 32,
                 cost_per_element: float = 1.0,
                 prefetcher: bool = False,
                 reorder: bool = False,
                 chunk_schedule: str = "uniform",
                 warm_start: np.ndarray | None = None,
                 emit_to: UpdateChannel | None = None,
                 restart_policy: str = "complete") -> None:
        permutation = permutation or TreePermutation()
        super().__init__(name, output, inputs, shape, permutation,
                         chunks=chunks, cost_per_element=cost_per_element,
                         prefetcher=prefetcher, reorder=reorder,
                         chunk_schedule=chunk_schedule,
                         emit_to=emit_to, restart_policy=restart_policy)
        self.element_fn = element_fn
        self.out_shape = (tuple(out_shape) if out_shape is not None
                          else self.shape)
        if self.out_shape[:len(self.shape)] != self.shape:
            raise ValueError(
                f"out_shape {self.out_shape} must start with the sampled "
                f"shape {self.shape}")
        self.dtype = np.dtype(dtype)
        if fill is None:
            fill = TreeFill(spatial_ndim=len(self.shape))
            if permutation.name != "tree":
                raise ValueError(
                    f"stage {name!r}: a fill policy is required for "
                    f"non-tree permutations")
        self.fill = fill
        if warm_start is not None:
            warm_start = np.asarray(warm_start, dtype=self.dtype)
            if warm_start.shape != self.out_shape:
                raise ValueError(
                    f"warm_start shape {warm_start.shape} != out_shape "
                    f"{self.out_shape}")
        self.warm_start = warm_start
        # Map outputs are elementwise, so state persists across passes:
        # a restarted pass (new input version) overwrites pixels
        # progressively while the rest keep last-pass values — the
        # published output never regresses to a coarse fill.
        self.persistent_state = True
        # materialize() returns state.copy() or fill.fill(...) — both
        # freshly allocated — so writes can transfer ownership and skip
        # the buffer's defensive copy.
        self.fresh_materialize = True
        # element_fn is pure and elementwise, so several chunks can be
        # computed in one call and scattered chunk by chunk — each
        # published level stays bit-identical to unbatched execution.
        self.supports_batch = True

    def init_state(self, values: tuple[Any, ...]) -> np.ndarray:
        if self.warm_start is not None:
            return self.warm_start.copy()
        return np.zeros(self.out_shape, dtype=self.dtype)

    def process_chunk(self, state: np.ndarray, indices: np.ndarray,
                      values: tuple[Any, ...]) -> Any:
        computed = self.element_fn(indices, *values)
        flat = state.reshape((self.n_elements,)
                             + self.out_shape[len(self.shape):])
        flat[indices] = computed
        return (indices, computed)

    def batch_chunks(self, state: np.ndarray, indices: np.ndarray,
                     values: tuple[Any, ...]) -> np.ndarray:
        # one element_fn call for all fused chunks; pure — the dense
        # state is untouched until apply_chunk scatters level by level
        return np.asarray(self.element_fn(indices, *values))

    def apply_chunk(self, state: np.ndarray, indices: np.ndarray,
                    batch: np.ndarray, offset: int,
                    values: tuple[Any, ...]) -> Any:
        computed = batch[offset:offset + len(indices)]
        flat = state.reshape((self.n_elements,)
                             + self.out_shape[len(self.shape):])
        flat[indices] = computed
        return (indices, computed)

    def materialize(self, state: np.ndarray, count: int,
                    values: tuple[Any, ...]) -> np.ndarray:
        if count >= self.n_elements or self._completed_passes > 0 \
                or self.warm_start is not None:
            # The dense array is fully populated (a complete pass ran,
            # or a warm start seeded it); later chunks refine elements
            # in place, no fill needed.
            return state.copy()
        return self.fill.fill(state, self.order, count)

    def precise(self, input_values: dict[str, Any]) -> np.ndarray:
        values = tuple(input_values[b.name] for b in self.inputs)
        out = np.zeros(self.out_shape, dtype=self.dtype)
        flat = out.reshape((self.n_elements,)
                           + self.out_shape[len(self.shape):])
        all_indices = np.arange(self.n_elements, dtype=np.int64)
        flat[all_indices] = self.element_fn(all_indices, *values)
        return out
