"""Structured execution tracing for anytime automata.

The automaton's whole value proposition is the *shape* of its
accuracy-vs-time curve (paper Figures 11-20), yet a timeline of terminal
buffer writes alone cannot explain that shape: why a stage sat idle, when
a fault policy restarted it, how far the synchronous channel ran ahead.
This module makes the execution itself observable.  Both executors emit
:class:`TraceEvent` records into a pluggable :class:`TraceSink`; with no
sink attached (the default) every hook short-circuits on a single
``is None`` check, so tracing is zero-overhead when off.

Event vocabulary (the ``kind`` field):

``stage.start`` / ``stage.finish``
    One pair per stage *attempt* (restarts open a new pair).  ``finish``
    carries ``status``: ``completed``, ``degraded``, ``failed``,
    ``error`` (attempt raised), ``halted`` or ``stopped``.
``stage.restart``
    Instant marker: the fault policy restarted the stage
    (``failures``, ``delay``).
``stage.wait``
    One *span* per blocking wait, emitted at wake-up with the wait's
    start timestamp and ``dur`` — ``wait`` names what blocked:
    ``inputs``, ``recv`` or ``emit``.
``buffer.write`` / ``buffer.seal``
    Buffer publications with ``version`` and ``final``; seals mark
    graceful degradation.
``channel.emit`` / ``channel.recv`` / ``channel.close`` / ``channel.abort``
    Synchronous-pipeline stream operations (``queued`` = depth after).
``shm.pin`` / ``shm.unpin``
    Shared-memory data-plane slot lifecycle under the process executor
    (``segment``, ``slot``; ``stage`` = the consuming stage, ``target``
    = the buffer): a slot stays pinned while a consumer may still read
    its payload.  :mod:`repro.check` audits that unpins never outnumber
    pins.
``fault.injected``
    A :class:`~repro.core.faults.FaultInjector` spec fired
    (``at`` = command count, ``fault`` = kind).
``accuracy.sample``
    Accuracy of a watched buffer write against a reference, when the
    executor was given ``trace_metric``/``trace_reference`` — the raw
    material of a live accuracy-vs-time stream.
``server.*``
    Serving-layer request lifecycle (emitted by
    :class:`~repro.serve.AnytimeServer`, ``stage`` = request name):
    ``server.enqueue``, ``server.admit``, ``server.shed``,
    ``server.preempt``, ``server.resume``, ``server.complete``,
    ``server.cancel``.  Unknown kinds render as instants in the
    Chrome sink, so server events compose with per-run events in one
    trace file.

Sinks:

:class:`NullSink`       discard everything (``enabled=False``: executors
                        skip event construction entirely).
:class:`InMemorySink`   keep events in a list (tests, live dashboards).
:class:`JsonlSink`      one JSON object per line (stream processing).
:class:`ChromeTraceSink` chrome://tracing / Perfetto "Trace Event
                        Format" JSON: stages become tracks, attempts
                        become B/E duration pairs, waits become complete
                        ("X") spans, accuracy samples become counter
                        tracks.
"""

from __future__ import annotations

import json
import math
import threading
from dataclasses import dataclass, field
from typing import Any, IO, Mapping, Protocol, runtime_checkable

__all__ = [
    "TraceEvent", "TraceSink", "NullSink", "InMemorySink", "JsonlSink",
    "ChromeTraceSink", "active_sink",
]


@dataclass(frozen=True)
class TraceEvent:
    """One structured execution event.

    ``ts`` is virtual work units under the simulator and wall seconds
    under the threaded executor — comparable in *shape*, not magnitude.
    ``target`` names the buffer or channel the event concerns, if any.
    """

    ts: float
    kind: str
    stage: str | None = None
    target: str | None = None
    args: Mapping[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {"ts": self.ts, "kind": self.kind}
        if self.stage is not None:
            out["stage"] = self.stage
        if self.target is not None:
            out["target"] = self.target
        if self.args:
            out["args"] = dict(self.args)
        return out


@runtime_checkable
class TraceSink(Protocol):
    """Where trace events go.

    Implementations must tolerate concurrent :meth:`emit` calls (the
    threaded executor emits from every stage thread).  ``enabled`` is an
    optional attribute: a sink exposing ``enabled = False`` tells the
    executor not to construct events at all (see :func:`active_sink`).
    """

    def emit(self, event: TraceEvent) -> None: ...

    def close(self) -> None: ...


def active_sink(sink: TraceSink | None) -> TraceSink | None:
    """Normalize a sink parameter: disabled sinks become None.

    Executors call this once at construction so that every per-event
    hook reduces to a single ``if sink is None`` check — the
    zero-overhead-when-off guarantee.
    """
    if sink is None or not getattr(sink, "enabled", True):
        return None
    return sink


class NullSink:
    """Discards every event; ``enabled=False`` skips construction too."""

    enabled = False

    def emit(self, event: TraceEvent) -> None:
        pass

    def close(self) -> None:
        pass


class InMemorySink:
    """Collects events in order; the test and dashboard sink."""

    enabled = True

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.events: list[TraceEvent] = []
        self.closed = False

    def emit(self, event: TraceEvent) -> None:
        with self._lock:
            self.events.append(event)

    def close(self) -> None:
        self.closed = True

    # -- query helpers ---------------------------------------------------

    def for_kind(self, kind: str) -> list[TraceEvent]:
        return [e for e in self.events if e.kind == kind]

    def for_stage(self, stage: str) -> list[TraceEvent]:
        return [e for e in self.events if e.stage == stage]

    def counts(self) -> dict[str, int]:
        """``{kind: occurrences}`` over everything seen so far."""
        out: dict[str, int] = {}
        for e in self.events:
            out[e.kind] = out.get(e.kind, 0) + 1
        return out

    def accuracy_stream(self, target: str | None = None,
                        ) -> list[tuple[float, float]]:
        """The accuracy-vs-time event stream: ``[(ts, accuracy), ...]``."""
        return [(e.ts, e.args["accuracy"])
                for e in self.events
                if e.kind == "accuracy.sample"
                and (target is None or e.target == target)]


def _json_safe(obj: Any) -> Any:
    """Strict-JSON-serializable view: non-finite floats become strings.

    ``json.dumps`` would happily write ``Infinity``, which strict
    parsers (including chrome://tracing's) reject — and accuracy metrics
    like SNR legitimately produce ``inf`` at the precise output.
    """
    if isinstance(obj, float):
        return obj if math.isfinite(obj) else repr(obj)
    if isinstance(obj, Mapping):
        return {k: _json_safe(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_json_safe(v) for v in obj]
    return obj


class JsonlSink:
    """Writes one JSON object per event line (stream-processable).

    Accepts a path (opened and owned; closed by :meth:`close`) or any
    writable text file object (borrowed; flushed but left open).
    """

    enabled = True

    def __init__(self, path_or_file: str | IO[str]) -> None:
        self._lock = threading.Lock()
        if isinstance(path_or_file, str):
            self._file: IO[str] = open(path_or_file, "w",
                                       encoding="utf-8")
            self._owns = True
        else:
            self._file = path_or_file
            self._owns = False
        self.emitted = 0

    def emit(self, event: TraceEvent) -> None:
        line = json.dumps(_json_safe(event.to_dict()), default=str)
        with self._lock:
            self._file.write(line + "\n")
            self.emitted += 1

    def close(self) -> None:
        with self._lock:
            self._file.flush()
            if self._owns and not self._file.closed:
                self._file.close()


#: instant-event scope: thread-scoped markers render as small arrows
_INSTANT_SCOPE = "t"

#: clamp for non-finite accuracy counter values (chrome counters must
#: be finite numbers; an SNR of inf means "precise output reached")
ACCURACY_COUNTER_CAP = 1e9


class ChromeTraceSink:
    """Exports the run as Trace Event Format JSON for chrome://tracing.

    Each stage gets its own ``tid`` track; attempts are B/E duration
    pairs named after the stage, waits are complete ("X") spans,
    buffer/channel/fault events are instants, and accuracy samples
    become counter ("C") tracks plottable directly in the viewer.

    ``time_scale`` converts event timestamps to the format's
    microseconds: the default ``1e6`` treats them as seconds (right for
    the threaded executor); for simulated runs any positive scale works
    because the viewer only shows relative time.

    Events are buffered and written sorted by ``ts`` on :meth:`close`
    (threaded emission order is not monotonic across threads).
    """

    enabled = True

    def __init__(self, path_or_file: str | IO[str],
                 time_scale: float = 1e6) -> None:
        if time_scale <= 0:
            raise ValueError(f"time_scale must be positive: {time_scale}")
        self._lock = threading.Lock()
        self._path_or_file = path_or_file
        self.time_scale = float(time_scale)
        self._raw: list[TraceEvent] = []
        self._tids: dict[str, int] = {}
        self.closed = False

    def emit(self, event: TraceEvent) -> None:
        with self._lock:
            self._raw.append(event)

    def _tid(self, stage: str | None) -> int:
        if stage is None:
            return 0
        if stage not in self._tids:
            self._tids[stage] = len(self._tids) + 1
        return self._tids[stage]

    def _convert(self, e: TraceEvent) -> dict[str, Any]:
        base: dict[str, Any] = {
            "pid": 1, "tid": self._tid(e.stage),
            "ts": e.ts * self.time_scale,
            "args": dict(e.args),
        }
        if e.target is not None:
            base["args"]["target"] = e.target
        if e.kind == "stage.start":
            base.update(ph="B", name=e.stage, cat="stage")
        elif e.kind == "stage.finish":
            base.update(ph="E", name=e.stage, cat="stage")
        elif e.kind == "stage.wait":
            dur = float(e.args.get("dur", 0.0))
            base.update(ph="X", cat="wait",
                        name=f"wait:{e.args.get('wait', '?')}",
                        dur=dur * self.time_scale)
        elif e.kind == "accuracy.sample":
            base.update(ph="C", cat="accuracy",
                        name=f"accuracy:{e.target}")
            # counter tracks must stay numeric: clamp the legitimate
            # infinities (e.g. SNR of the precise output) to a cap
            acc = float(e.args.get("accuracy", 0.0))
            if not math.isfinite(acc):
                acc = math.copysign(ACCURACY_COUNTER_CAP, acc)
            base["args"] = {"accuracy": acc}
        else:
            base.update(ph="i", s=_INSTANT_SCOPE, cat="event",
                        name=e.kind)
        return base

    def trace_events(self) -> list[dict[str, Any]]:
        """The converted, ts-sorted Trace Event Format records."""
        with self._lock:
            raw = sorted(self._raw, key=lambda e: e.ts)
            # stable track numbering: assign tids in stage-start order
            for e in raw:
                if e.stage is not None:
                    self._tid(e.stage)
            converted = [self._convert(e) for e in raw]
            names = [
                {"ph": "M", "pid": 1, "tid": tid,
                 "name": "thread_name", "args": {"name": stage}}
                for stage, tid in self._tids.items()
            ]
            return names + converted

    def close(self) -> None:
        if self.closed:
            return
        payload = _json_safe({"traceEvents": self.trace_events(),
                              "displayTimeUnit": "ms"})
        if isinstance(self._path_or_file, str):
            with open(self._path_or_file, "w", encoding="utf-8") as fh:
                json.dump(payload, fh, default=str)
        else:
            json.dump(payload, self._path_or_file, default=str)
        self.closed = True


def make_sink(path: str, fmt: str = "chrome") -> TraceSink:
    """Build a file sink from a CLI-style (path, format) pair."""
    if fmt == "jsonl":
        return JsonlSink(path)
    if fmt == "chrome":
        return ChromeTraceSink(path)
    raise ValueError(
        f"unknown trace format {fmt!r}; expected 'jsonl' or 'chrome'")


__all__.append("make_sink")
