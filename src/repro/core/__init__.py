"""The Anytime Automaton computation model (the paper's contribution).

Stages (precise, iterative, diffusive: map and reduction, synchronous
consumers), single-writer versioned buffers, update channels, the DAG,
three executors (deterministic discrete-event simulation, real threads,
and one process per stage over a shared-memory data plane), stop
conditions, scheduling policies and property validators.
"""

from .automaton import AnytimeAutomaton
from .buffer import Snapshot, VersionedBuffer
from .channel import ChannelClosed, UpdateChannel
from .contract import ContractPlan, plan_contract, run_contract
from .controller import (AccuracyTarget, AnyOf, DeadlineStop, EnergyBudget,
                         FailureBudget, ManualStop, StopCondition,
                         VersionCountStop)
from .diffusive import DiffusiveStage, chunk_boundaries
from .executor import RunHandle, ThreadedExecutor, ThreadedResult
from .faults import (FaultInjected, FaultInjector, FaultPolicy, FaultSpec,
                     StageReport, parse_fault_spec, resolve_policy)
from .graph import AutomatonGraph, GraphError
from .iterative import AccuracyLevel, IterativeStage
from .mapstage import MapStage
from .procexec import ProcessExecutor
from .procsharing import ProcessorPool
from .properties import (PurityViolation, check_atomicity, check_purity,
                         check_single_writer)
from .recording import Timeline, WriteRecord
from .reduction import ReductionStage
from .scheduling import (POLICIES, equal_shares, final_stage_shares,
                         first_output_shares, proportional_shares)
from .simexec import ExecutionError, SimResult, SimulatedExecutor
from .stage import (CHANNEL_END, Compute, DEFAULT_ACCESS_PENALTIES, Emit,
                    PollInputs, PreciseStage, Recv, Stage, WaitInputs,
                    Write, access_penalty)
from .syncstage import SynchronousStage
from .tracing import (ChromeTraceSink, InMemorySink, JsonlSink, NullSink,
                      TraceEvent, TraceSink, make_sink)

__all__ = [
    "AnytimeAutomaton",
    "Snapshot", "VersionedBuffer",
    "ChannelClosed", "UpdateChannel",
    "ContractPlan", "plan_contract", "run_contract",
    "AccuracyTarget", "AnyOf", "DeadlineStop", "EnergyBudget",
    "FailureBudget", "ManualStop", "StopCondition", "VersionCountStop",
    "DiffusiveStage", "chunk_boundaries",
    "RunHandle", "ThreadedExecutor", "ThreadedResult",
    "FaultInjected", "FaultInjector", "FaultPolicy", "FaultSpec",
    "StageReport", "parse_fault_spec", "resolve_policy",
    "AutomatonGraph", "GraphError",
    "AccuracyLevel", "IterativeStage",
    "MapStage",
    "ProcessExecutor",
    "ProcessorPool",
    "PurityViolation", "check_atomicity", "check_purity",
    "check_single_writer",
    "Timeline", "WriteRecord",
    "ReductionStage",
    "POLICIES", "equal_shares", "final_stage_shares",
    "first_output_shares", "proportional_shares",
    "ExecutionError", "SimResult", "SimulatedExecutor",
    "CHANNEL_END", "Compute", "DEFAULT_ACCESS_PENALTIES", "Emit",
    "PollInputs", "PreciseStage", "Recv", "Stage", "WaitInputs", "Write",
    "access_penalty",
    "SynchronousStage",
    "ChromeTraceSink", "InMemorySink", "JsonlSink", "NullSink",
    "TraceEvent", "TraceSink", "make_sink",
]
