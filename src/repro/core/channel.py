"""Update channels for synchronous pipelines (paper Section III-C2).

A synchronous pipeline streams a diffusive parent's *updates* ``X_i`` to a
distributive child instead of whole output versions ``F_i``.  Unlike the
asynchronous case — where skipping versions is fine because only ``F_n``
matters — every update is necessary for the child's final output, so the
parent "must synchronize such that f does not overwrite X_i with X_{i+1}
before g_S(X_i) begins executing".  A FIFO queue provides exactly that
guarantee; an optional capacity bound models a small hardware buffer with
backpressure.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Any

__all__ = ["ChannelClosed", "UpdateChannel"]


class ChannelClosed(Exception):
    """Raised when receiving from a closed, drained channel."""


class UpdateChannel:
    """A FIFO stream of updates from one producer to one consumer.

    Parameters
    ----------
    name:
        Channel name (for diagnostics).
    capacity:
        Maximum queued updates before the producer blocks (None =
        unbounded).  Capacity 1 reproduces the paper's strictest
        synchronization: the producer may run at most one update ahead.
    """

    def __init__(self, name: str, capacity: int | None = None) -> None:
        if capacity is not None and capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.name = name
        self.capacity = capacity
        self._cond = threading.Condition()
        self._queue: deque[Any] = deque()
        self._closed = False
        self._aborted = False
        self.emitted = 0
        self.received = 0
        #: optional observability hook ``tracer(kind, name, **args)``,
        #: installed by an executor when tracing is enabled (see
        #: :mod:`repro.core.tracing`); called outside the lock
        self.tracer = None

    @property
    def closed(self) -> bool:
        with self._cond:
            return self._closed

    @property
    def aborted(self) -> bool:
        with self._cond:
            return self._aborted

    def __len__(self) -> int:
        with self._cond:
            return len(self._queue)

    @property
    def full(self) -> bool:
        with self._cond:
            return (self.capacity is not None
                    and len(self._queue) >= self.capacity)

    def emit(self, update: Any, timeout: float | None = None) -> None:
        """Enqueue one update; blocks while the channel is full."""
        with self._cond:
            if self._closed:
                raise ChannelClosed(
                    f"emit on closed channel {self.name!r}")
            while (self.capacity is not None
                   and len(self._queue) >= self.capacity):
                if not self._cond.wait(timeout):
                    raise TimeoutError(
                        f"emit timed out on full channel {self.name!r}")
                if self._closed:
                    raise ChannelClosed(
                        f"emit on closed channel {self.name!r}")
            self._queue.append(update)
            self.emitted += 1
            self._cond.notify_all()
            queued = len(self._queue)
        if self.tracer is not None:
            self.tracer("channel.emit", self.name, queued=queued)

    def try_emit(self, update: Any) -> bool:
        """Non-blocking emit; returns False when full."""
        with self._cond:
            if self._closed:
                raise ChannelClosed(
                    f"emit on closed channel {self.name!r}")
            if (self.capacity is not None
                    and len(self._queue) >= self.capacity):
                return False
            self._queue.append(update)
            self.emitted += 1
            self._cond.notify_all()
            queued = len(self._queue)
        if self.tracer is not None:
            self.tracer("channel.emit", self.name, queued=queued)
        return True

    def close(self) -> None:
        """Mark the stream complete; queued updates remain receivable."""
        with self._cond:
            already = self._closed
            self._closed = True
            self._cond.notify_all()
        if self.tracer is not None and not already:
            self.tracer("channel.close", self.name)

    def abort(self) -> None:
        """Close the stream because one endpoint died (fault path).

        Unlike :meth:`close`, an aborted channel marks the stream
        *incomplete*: updates were lost, so the consumer's aggregate
        must not be published as final.  Queued updates remain
        receivable; a blocked producer is released (its next emit
        raises :class:`ChannelClosed`).
        """
        with self._cond:
            already = self._aborted
            self._closed = True
            self._aborted = True
            self._cond.notify_all()
            queued = len(self._queue)
        if self.tracer is not None and not already:
            self.tracer("channel.abort", self.name, queued=queued)

    def restore(self, queue: list[Any], emitted: int, received: int,
                closed: bool, aborted: bool) -> None:
        """Reinstate a checkpointed stream state (see :mod:`repro.ckpt`).

        ``queue`` holds the updates emitted but not yet received, in
        FIFO order; the cursors record the totals either side of it.
        Only legal before the graph is launched.
        """
        if received > emitted or len(queue) != emitted - received:
            raise ValueError(
                f"channel {self.name!r}: inconsistent cursors "
                f"(emitted={emitted}, received={received}, "
                f"queued={len(queue)})")
        with self._cond:
            self._queue = deque(queue)
            self.emitted = int(emitted)
            self.received = int(received)
            self._closed = bool(closed)
            self._aborted = bool(aborted)
            self._cond.notify_all()

    def recv(self, timeout: float | None = None) -> Any:
        """Dequeue the next update; blocks while empty.

        Raises :class:`ChannelClosed` once the channel is closed and
        drained — the consumer's signal to finalize its output.
        """
        with self._cond:
            while not self._queue:
                if self._closed:
                    raise ChannelClosed(
                        f"channel {self.name!r} is closed and drained")
                if not self._cond.wait(timeout):
                    raise TimeoutError(
                        f"recv timed out on channel {self.name!r}")
            update = self._queue.popleft()
            self.received += 1
            self._cond.notify_all()
            queued = len(self._queue)
        if self.tracer is not None:
            self.tracer("channel.recv", self.name, queued=queued)
        return update

    def try_recv(self) -> tuple[bool, Any]:
        """Non-blocking receive: (True, update) or (False, None).

        Raises :class:`ChannelClosed` when closed and drained.
        """
        with self._cond:
            if not self._queue:
                if self._closed:
                    raise ChannelClosed(
                        f"channel {self.name!r} is closed and drained")
                return False, None
            self.received += 1
            update = self._queue.popleft()
            self._cond.notify_all()
            queued = len(self._queue)
        if self.tracer is not None:
            self.tracer("channel.recv", self.name, queued=queued)
        return True, update
