"""Process-parallel execution with a shared-memory data plane.

One worker *process* per stage, interpreting the same command protocol
as the simulated and threaded executors — but sidestepping the GIL, so
NumPy-light pipelines actually overlap on real cores (the paper's
POWER7+ machine ran its stages on 32 hardware threads; see Figure 11).

Architecture: the parent is a single-threaded **reactor** that owns the
authoritative :class:`VersionedBuffer` / :class:`UpdateChannel` objects,
the timeline, the stop condition, fault policies and the trace sink.
Each worker talks to it over a duplex pipe carrying *control* messages
only: ndarray payloads are written once into per-buffer
:class:`~repro.core.shmplane.SlabRing` slabs and cross the pipe as
:class:`~repro.core.shmplane.NDRef` descriptors (see
:mod:`repro.core.shmplane` for the pinning protocol that keeps
snapshots atomic).  Because the parent reuses the real buffer/channel
objects, Property-2/3 enforcement, seal/abort cascades and the tracing
vocabulary are identical to the threaded executor — the trace-shape
parity test in ``tests/test_tracing.py`` holds across all three
backends.

Design notes and tradeoffs:

- **fork only.**  Stage bodies are closures over lambdas and ndarrays;
  they cannot be pickled, so workers are forked (the graph is inherited
  copy-on-write).  :class:`ProcessExecutor` raises on platforms without
  the ``fork`` start method.
- **Channel emits travel inline.**  Synchronous-pipeline updates are
  usually small (per-chunk partials); they are pickled over the control
  pipe.  The slab plane covers buffer versions, which dominate traffic.
- **Command leases amortize round-trips.**  Replies to waits and
  synchronous writes carry *write credits* (capped by ``lease_k``): a
  worker holding credits streams its next non-final writes without
  waiting for per-write replies — one pipe round-trip per lease
  instead of per accuracy level.  Grants are *speculative* (doubled)
  when every input snapshot is already final or sealed, since no
  future reply can change the stage's command stream.  Credits are
  revoked (``("revoke",)``) on pause and halt so ``repro.serve``
  quantum preemption and shutdown stay prompt, and a lease-held slab
  slot is only reused after a later synchronous reply proves the
  parent consumed the streamed write (pipe FIFO ordering).
- **Worker death is a fault.**  A worker that dies without reporting
  (segfault, ``kill -9``) is handled through the stage's
  :class:`~repro.core.faults.FaultPolicy` like any raise: ``restart``
  re-forks the stage from the parent's pristine copy (a re-forked
  diffusive stage loses its dense state and injected-fault counters —
  accuracy may transiently regress, which in-process restarts avoid),
  ``degrade`` seals its output, ``fail`` halts the run.
- **Shutdown never leaks.**  On completion, stop, fault-halt or
  ``timeout_s`` expiry the parent answers every parked request with a
  halt, gives workers a grace period, terminates stragglers, joins
  them, and unlinks every shared-memory segment it ever heard of —
  verified by the leak test in ``tests/test_procexec.py``.
"""

from __future__ import annotations

import multiprocessing as mp
import threading
import time as _time
from multiprocessing import connection as mp_connection
from typing import Any, Callable

from .buffer import Snapshot
from .channel import ChannelClosed
from .controller import StopCondition
from .executor import RunHandle, ThreadedResult
from .faults import (FaultInjector, FaultPolicy, StageReport,
                     resolve_policy)
from .graph import AutomatonGraph
from .recording import Timeline, WriteRecord
from .stage import (CHANNEL_END, CloseChannel, Compute, Emit, Lease,
                    PollInputs, Recv, WaitInputs, Write)
from .shmplane import SegmentRegistry, SlabWriter, decode_payload
from .syncstage import SynchronousStage
from .tracing import TraceEvent, TraceSink, active_sink

__all__ = ["ProcessExecutor"]

#: reactor poll interval (halt/timeout/restart checks stay live)
_WAIT_S = 0.02

#: sentinel mirroring the threaded executor's exhausted-inputs outcome
_EXHAUSTED = object()


# ---------------------------------------------------------------------------
# Worker side


class _Worker:
    """Runs one stage's generator inside a forked process.

    Mirrors ``ThreadedExecutor._run_stage`` / ``_interpret``, except
    every blocking decision is delegated to the parent over the pipe:
    the worker sends a request and blocks on the reply, which may be a
    ``("halt",)`` at any point.  In-process restarts keep diffusive
    state and injector counters, exactly like threaded restarts.
    """

    def __init__(self, stage, conn, slots: int, lock,
                 injector: FaultInjector | None, tracing: bool,
                 lease_k: int) -> None:
        self.stage = stage
        self.conn = conn
        self.injector = injector
        self.lease_k = int(lease_k)
        self.registry = SegmentRegistry()
        self.writer = SlabWriter(
            stage.output.name, slots, lock,
            on_segment=lambda names: conn.send(("segments", names)))
        # Resumed runs (repro.ckpt) fork with the output buffer already
        # holding its checkpointed ladder; version numbering continues
        # from there (zero on a fresh run).
        self._version = stage.output.version
        #: write credits from the parent's last wait / sync-write reply:
        #: how many upcoming non-final writes may skip their replies
        self._credits = 0
        if tracing and injector is not None:
            # raw worker clock; the parent delta-corrects against the
            # epoch handshake below, so merged traces are monotone even
            # across processes with skewed perf_counter epochs
            injector.tracer = (
                lambda s, c, k: conn.send(
                    ("trace", "fault.injected", _time.perf_counter(),
                     {"at": c, "fault": k})))

    def _request(self, msg: tuple) -> tuple:
        self._credits = 0
        self.conn.send(msg)
        while True:
            reply = self.conn.recv()
            if reply[0] == "revoke":
                # lease revoked mid-request; credits already zero
                continue
            if reply[0] == "capture":
                # checkpoint quiesce (repro.ckpt): the parent asks for
                # this stage's resume cursor while our request stays
                # unanswered; reply[1]/reply[2] are the authoritative
                # write/emit counts it has applied so far
                self.conn.send(("state",
                                self.stage.capture_state(reply[1],
                                                         reply[2])))
                continue
            # any reply proves the parent consumed every message sent
            # before this request (pipe FIFO) — streamed leased writes
            # included, so their slab slots are safe to reuse
            self.writer.release_held()
            return reply

    def _drain_revokes(self) -> None:
        """Consume asynchronous lease revocations before a leased write.

        Between requests the only unsolicited parent->worker messages
        are ``("revoke",)`` — replies are always consumed inside
        :meth:`_request` — so a non-blocking drain here is safe.
        """
        while self.conn.poll():
            if self.conn.recv()[0] == "revoke":
                self._credits = 0

    @staticmethod
    def _reraise(reply: tuple) -> None:
        if reply[1] == "closed":
            raise ChannelClosed(reply[2])
        raise RuntimeError(reply[2])

    def run(self) -> None:
        try:
            # epoch handshake: the parent stamps its own receipt time
            # and delta-corrects every later raw worker timestamp
            self.conn.send(("epoch", _time.perf_counter()))
            self._run_stage()
        finally:
            self.writer.close()
            self.registry.close_all()
            try:
                self.conn.close()
            except OSError:   # pragma: no cover - defensive
                pass

    def _run_stage(self) -> None:
        stage = self.stage
        while True:
            gen = stage.body()
            if self.injector is not None:
                gen = self.injector.wrap(stage.name, gen, realtime=True)
            try:
                outcome = self._interpret(gen)
            except BaseException as exc:   # noqa: BLE001 - reported
                reply = self._request(("failed", repr(exc)))
                action, delay = reply[1], reply[2]
                if action == "restart":
                    if delay > 0:
                        _time.sleep(delay)
                    continue
                return   # degrade / fail / halt: the parent seals
            if outcome == "done":
                self.conn.send(("done",))
            elif outcome is _EXHAUSTED:
                self.conn.send(("degraded",))
            else:
                self.conn.send(("halted",))
            return

    def _interpret(self, gen) -> Any:
        send_value: Any = None
        while True:
            try:
                cmd = gen.send(send_value)
            except StopIteration:
                return "done"
            send_value = None
            if isinstance(cmd, Compute):
                amount = cmd.energy if cmd.energy is not None else cmd.cost
                self.conn.send(("energy", amount))
            elif isinstance(cmd, Write):
                self._version += 1
                if self._credits > 0:
                    self._drain_revokes()
                if self._credits > 0 and not cmd.final:
                    # leased write: stream it, no reply round-trip; the
                    # slot stays held until a later sync reply
                    self._credits -= 1
                    payload = self.writer.encode(cmd.value,
                                                 self._version,
                                                 hold=True)
                    self.conn.send(("write", payload, False, True))
                    continue
                payload = self.writer.encode(cmd.value, self._version)
                reply = self._request(("write", payload,
                                       bool(cmd.final), False))
                if reply[0] == "halt":
                    return "halted"
                if reply[0] == "raise":
                    self._reraise(reply)
                if len(reply) > 2:
                    self._credits = reply[2]
            elif isinstance(cmd, WaitInputs):
                reply = self._request(("wait", dict(cmd.seen)))
                if reply[0] == "halt":
                    return "halted"
                if reply[0] == "exhausted":
                    gen.close()
                    return _EXHAUSTED
                if reply[0] == "raise":
                    self._reraise(reply)
                send_value = {
                    name: Snapshot(name,
                                   decode_payload(p, self.registry),
                                   version, final, sealed)
                    for name, p, version, final, sealed in reply[1]}
                if len(reply) > 2:
                    self._credits = reply[2]
            elif isinstance(cmd, PollInputs):
                reply = self._request(("poll", dict(cmd.seen)))
                if reply[0] == "halt":
                    return "halted"
                if reply[0] == "raise":
                    self._reraise(reply)
                send_value = reply[1]
            elif isinstance(cmd, Emit):
                reply = self._request(("emit", cmd.update))
                if reply[0] == "halt":
                    return "halted"
                if reply[0] == "raise":
                    self._reraise(reply)
            elif isinstance(cmd, CloseChannel):
                reply = self._request(("close_channel",))
                if reply[0] == "halt":
                    return "halted"
                if reply[0] == "raise":
                    self._reraise(reply)
            elif isinstance(cmd, Recv):
                reply = self._request(("recv",))
                if reply[0] == "halt":
                    return "halted"
                if reply[0] == "raise":
                    self._reraise(reply)
                send_value = (CHANNEL_END if reply[0] == "end"
                              else reply[1])
            elif isinstance(cmd, Lease):
                # answered locally — zero round-trips.  The grant caps
                # the kernel's vectorization width; reply elision is
                # governed separately by the parent's write credits.
                send_value = max(1, min(cmd.want, self.lease_k))
            else:
                raise TypeError(
                    f"stage {self.stage.name!r} yielded unknown command "
                    f"{cmd!r}")


def _worker_main(stage, conn, inherited, slots, lock, injector,
                 tracing, lease_k) -> None:
    for other in inherited:
        # parent-end copies of earlier pipes, inherited through fork;
        # closing them keeps EOF detection per worker crisp
        try:
            other.close()
        except OSError:   # pragma: no cover - defensive
            pass
    _Worker(stage, conn, slots, lock, injector, tracing,
            lease_k).run()


# ---------------------------------------------------------------------------
# Parent side


class _Parked:
    """One blocked worker request awaiting a state change."""

    __slots__ = ("worker", "kind", "payload", "started")

    def __init__(self, worker, kind: str, payload: Any,
                 started: float) -> None:
        self.worker = worker
        self.kind = kind
        self.payload = payload
        self.started = started


class _WorkerHandle:
    __slots__ = ("stage", "proc", "conn", "terminal", "restart_at",
                 "epoch_raw", "epoch_rel", "pending_error")

    def __init__(self, stage) -> None:
        self.stage = stage
        self.proc = None
        self.conn = None
        self.terminal = False          # reported an outcome / was resolved
        self.restart_at: float | None = None   # pending re-fork deadline
        self.epoch_raw: float | None = None    # worker perf_counter epoch
        self.epoch_rel = 0.0           # parent-relative receipt time
        self.pending_error: tuple | None = None   # failed leased write


class ProcessExecutor:
    """Runs an :class:`AutomatonGraph` on one process per stage.

    Parameters mirror :class:`~repro.core.executor.ThreadedExecutor`
    (the result type is shared); ``grace_s`` bounds how long shutdown
    waits for workers to exit voluntarily before terminating them.
    """

    def __init__(self, graph: AutomatonGraph,
                 stop: StopCondition | None = None,
                 watch: set[str] | None = None,
                 faults: FaultPolicy | dict[str, FaultPolicy] | None = None,
                 injector: FaultInjector | None = None,
                 strict: bool = False,
                 trace: TraceSink | None = None,
                 trace_metric: Any = None,
                 trace_reference: Any = None,
                 grace_s: float = 5.0,
                 lease_k: int = 8,
                 resume: Any = None) -> None:
        if "fork" not in mp.get_all_start_methods():
            raise RuntimeError(
                "ProcessExecutor requires the 'fork' start method "
                "(stage bodies close over unpicklable state); this "
                "platform does not provide it — use run_threaded")
        if lease_k < 1:
            raise ValueError(f"lease_k must be >= 1, got {lease_k}")
        self.graph = graph
        self.lease_k = int(lease_k)
        self.stop = stop
        if watch is None:
            watch = {t.output.name for t in graph.terminal_stages()}
        self.watch = set(watch)
        self.faults = faults
        self.injector = injector
        self.strict = strict
        self.grace_s = float(grace_s)
        self._sink = active_sink(trace)
        self.trace_metric = trace_metric
        self.trace_reference = trace_reference
        self._ctx = mp.get_context("fork")
        self._locks = {name: self._ctx.Lock() for name in graph.buffers}
        # latest + one pin per consumer + a spare, plus headroom for
        # lease-held slots of streamed writes awaiting a sync reply
        # (at most one speculative grant of 2 * lease_k in flight)
        self._slots = {name: max(3, len(graph.consumers_of(name)) + 2
                                 + 2 * self.lease_k)
                       for name in graph.buffers}
        self._registry = SegmentRegistry()
        self._payloads: dict[str, Any] = {}
        self._ext_writers: list[SlabWriter] = []
        self._pins: dict[tuple[str, str], list] = {}
        self._workers = {s.name: _WorkerHandle(s) for s in graph.stages}
        self._by_conn: dict[Any, _WorkerHandle] = {}
        self._parked: list[_Parked] = []
        self._timeline = Timeline()
        self._errors: list[tuple[str, BaseException]] = []
        self._reports = {s.name: StageReport(stage=s.name)
                         for s in graph.stages}
        self._energy = 0.0
        self._halted = False
        self._stop_requested = False
        self._paused = False
        self._pause_revoked = False
        self._grace_deadline = 0.0
        self._t0 = 0.0
        self._timeout_s: float | None = None
        self._reactor: threading.Thread | None = None
        self._ended_at: float | None = None
        self._final_lock = threading.Lock()
        self._final_result: ThreadedResult | None = None
        #: newest decoded value per watched buffer (the handle's peek
        #: path — decoding a slab from outside the reactor could race a
        #: writer reusing slots, so the reactor caches at write time)
        self._latest: dict[str, Snapshot] = {}
        #: debug hook ``tap(direction, stage, message)`` observing every
        #: control message ("recv" = worker->parent, "send" = reply);
        #: the zero-copy test uses it to prove descriptor-only traffic
        self._message_tap: Callable[[str, str, tuple], None] | None = None
        # Checkpoint support (repro.ckpt).  A checkpoint request is a
        # small reactor-side state machine: phase 1 quiesces (worker
        # requests are diverted unanswered into _qparked), phase 2
        # round-trips ("capture", ...) to every parked worker for its
        # cursor, phase 3 writes the file and replays the diverted
        # requests as if nothing happened.
        self.run_name = "automaton"
        self.app_spec: dict[str, Any] | None = None
        self._resume = resume
        self._t_offset = 0.0
        self._ckpt_request: str | None = None
        self._ckpt_phase = 0
        self._ckpt_expect: set[str] = set()
        self._captured: dict[str, dict] = {}
        self._qparked: list[tuple[_WorkerHandle, tuple]] = []
        self._ckpt_event: threading.Event | None = None
        self._ckpt_result: tuple | None = None
        self._ckpt_revoked = False
        if resume is not None:
            self._energy = float(resume.energy)
            self._t_offset = float(resume.duration)
            self._reports = resume.seed_reports(
                [s.name for s in graph.stages])
            from ..ckpt.state import restore_stop
            restore_stop(self.stop, resume.stop)

    def request_stop(self) -> None:
        """Interrupt the automaton (effective at the next reactor turn)."""
        self._stop_requested = True

    # -- tracing (mirrors ThreadedExecutor) ------------------------------

    def _now(self) -> float:
        # resumed runs continue the interrupted run's clock (repro.ckpt)
        return _time.perf_counter() - self._t0 + self._t_offset

    def _trace(self, kind: str, stage: str | None = None,
               target: str | None = None, ts: float | None = None,
               **args: Any) -> None:
        if self._sink is None:
            return
        self._sink.emit(TraceEvent(self._now() if ts is None else ts,
                                   kind, stage=stage, target=target,
                                   args=args))

    def _install_hooks(self) -> None:
        if self._sink is None:
            return
        chan_stage: dict[tuple[str, str], str] = {}
        for s in self.graph.stages:
            if s.emit_to is not None:
                chan_stage[(s.emit_to.name, "out")] = s.name
            if isinstance(s, SynchronousStage):
                chan_stage[(s.channel.name, "in")] = s.name

        def buffer_hook(kind: str, name: str, **args: Any) -> None:
            self._trace(kind, stage=args.pop("writer", None),
                        target=name, **args)

        def channel_hook(kind: str, name: str, **args: Any) -> None:
            side = "in" if kind == "channel.recv" else "out"
            self._trace(kind, stage=chan_stage.get((name, side)),
                        target=name, **args)

        for b in self.graph.buffers.values():
            b.tracer = buffer_hook
        for s in self.graph.stages:
            if s.emit_to is not None:
                s.emit_to.tracer = channel_hook

    # -- data plane ------------------------------------------------------

    def _encode_externals(self) -> None:
        """Move external input arrays into slabs once, before forking."""
        for name, buffer in self.graph.buffers.items():
            snap = buffer.snapshot()
            if snap.version == 0:
                continue
            writer = SlabWriter(name, self._slots[name],
                                self._locks[name],
                                on_segment=self._registry.register)
            self._payloads[name] = writer.encode(snap.value, snap.version)
            self._ext_writers.append(writer)

    def _hand_payload(self, stage_name: str, buffer_name: str) -> Any:
        """Pin the current payload's slots for one consumer stage.

        Pin-before-unpin under the buffer's slab lock: the writer can
        only reuse a slot that is unpinned *and* not its most recent
        write, so a slot handed out here stays intact until this stage
        is handed a newer version.
        """
        payload = self._payloads[buffer_name]
        refs = [r for r in (payload[2] if payload[0] == "tree" else ())]
        key = (stage_name, buffer_name)
        old = self._pins.get(key, [])
        with self._locks[buffer_name]:
            for r in refs:
                self._registry.ring_for(r).pin(r.slot)
            for r in old:
                self._registry.ring_for(r).unpin(r.slot)
        self._pins[key] = refs
        for r in refs:
            self._trace("shm.pin", stage=stage_name, target=buffer_name,
                        segment=r.segment, slot=r.slot)
        for r in old:
            self._trace("shm.unpin", stage=stage_name,
                        target=buffer_name, segment=r.segment,
                        slot=r.slot)
        return payload

    def _decode(self, buffer_name: str) -> Any:
        payload = self._payloads.get(buffer_name)
        if payload is None:
            return None
        return decode_payload(payload, self._registry, copy=True)

    # -- lifecycle -------------------------------------------------------

    def _launch(self, w: _WorkerHandle) -> None:
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        inherited = [h.conn for h in self._workers.values()
                     if h.conn is not None]
        injector = self.injector if self.injector is not None and any(
            spec.stage == w.stage.name
            for spec in self.injector.faults) else None
        proc = self._ctx.Process(
            target=_worker_main,
            args=(w.stage, child_conn, inherited,
                  self._slots[w.stage.output.name],
                  self._locks[w.stage.output.name],
                  injector, self._sink is not None, self.lease_k),
            name=f"stage-{w.stage.name}", daemon=True)
        proc.start()
        child_conn.close()
        w.proc, w.conn, w.restart_at = proc, parent_conn, None
        w.epoch_raw, w.pending_error = None, None
        self._by_conn[parent_conn] = w
        report = self._reports[w.stage.name]
        report.attempts += 1
        self._trace("stage.start", stage=w.stage.name,
                    attempt=report.attempts)

    def _retire_conn(self, w: _WorkerHandle) -> None:
        if w.conn is not None:
            self._by_conn.pop(w.conn, None)
            try:
                w.conn.close()
            except OSError:   # pragma: no cover - defensive
                pass
            w.conn = None
        self._parked = [p for p in self._parked if p.worker is not w]
        self._qparked = [(ww, m) for ww, m in self._qparked
                         if ww is not w]

    def _reply(self, w: _WorkerHandle, msg: tuple) -> None:
        if self._message_tap is not None:
            self._message_tap("send", w.stage.name, msg)
        if msg[0] != "revoke":
            # every non-revoke parent->worker message answers a blocked
            # worker request: one completed pipe round-trip
            self._reports[w.stage.name].round_trips += 1
        try:
            w.conn.send(msg)
        except (BrokenPipeError, OSError):
            pass   # the worker died; the EOF path will handle it

    # -- request servicing ----------------------------------------------

    def _snapshots(self, stage):
        return {b.name: b.snapshot() for b in stage.inputs}

    @staticmethod
    def _inputs_exhausted(snaps) -> bool:
        if any(s.empty and s.sealed for s in snaps.values()):
            return True
        return all(s.exhausted for s in snaps.values())

    def _try_wait(self, w: _WorkerHandle, seen: dict) -> tuple | None:
        stage = w.stage
        snaps = self._snapshots(stage)
        if not snaps:
            return ("snaps", [], self._wait_credits(()))
        if not any(s.empty for s in snaps.values()) and any(
                s.version > seen.get(n, 0) for n, s in snaps.items()):
            wire = [(n, self._hand_payload(stage.name, n), s.version,
                     s.final, s.sealed) for n, s in snaps.items()]
            return ("snaps", wire, self._wait_credits(snaps.values()))
        if self._inputs_exhausted(snaps):
            return ("exhausted",)
        return None

    def _wait_credits(self, snaps) -> int:
        """Write credits granted alongside an input snapshot.

        Speculative (doubled) when every input is already final or
        sealed — and for source stages, which have no inputs at all —
        because then no future reply can change the stage's command
        stream, so a longer unacknowledged write run is safe.
        """
        if self.lease_k <= 1:
            return 0
        if all(s.final or s.sealed for s in snaps):
            return 2 * self.lease_k
        return self.lease_k

    def _write_credits(self) -> int:
        """Write credits refreshed by a synchronous write reply."""
        return 0 if self.lease_k <= 1 else self.lease_k

    def _try_poll(self, w: _WorkerHandle, seen: dict) -> tuple:
        snaps = self._snapshots(w.stage)
        if not snaps or any(s.empty for s in snaps.values()):
            return ("poll_ok", False)
        return ("poll_ok",
                any(s.version > seen.get(n, 0)
                    for n, s in snaps.items()))

    def _try_emit(self, w: _WorkerHandle, update: Any) -> tuple | None:
        channel = w.stage.emit_to
        try:
            return ("ok",) if channel.try_emit(update) else None
        except ChannelClosed as exc:
            return ("raise", "closed", str(exc))

    def _try_recv(self, w: _WorkerHandle) -> tuple | None:
        try:
            got, update = w.stage.channel.try_recv()
        except ChannelClosed:
            return ("end",)
        return ("update", update) if got else None

    def _do_write(self, w: _WorkerHandle, payload: Any,
                  final: bool) -> tuple:
        stage = w.stage
        report = self._reports[stage.name]
        if final and isinstance(stage, SynchronousStage) \
                and stage.channel.aborted:
            # updates were lost upstream: the aggregate is approximate
            final = False
            report.degraded = True
        try:
            version = stage.output.write(payload, final,
                                         writer=stage.name)
        except ValueError as exc:
            return ("raise", "error", str(exc))
        self._payloads[stage.output.name] = payload
        watched = stage.output.name in self.watch
        now = self._now()
        value = self._decode(stage.output.name) if watched else None
        if watched:
            self._latest[stage.output.name] = Snapshot(
                stage.output.name, value, version, final)
        record = WriteRecord(now, stage.output.name, version, final,
                             self._energy, value)
        self._timeline.add(record)
        if watched and self.stop is not None \
                and self.stop.should_stop(record):
            self._stop_requested = True
        if self._sink is not None and watched \
                and self.trace_metric is not None:
            self._trace("accuracy.sample", stage=stage.name,
                        target=stage.output.name, ts=now,
                        accuracy=float(self.trace_metric(
                            value, self.trace_reference)),
                        version=version)
        return ("ok", version)

    #: blocking request kinds -> (service fn name, stage.wait label)
    _BLOCKING = {"wait": "inputs", "emit": "emit", "recv": "recv"}

    def _service(self, w: _WorkerHandle, kind: str,
                 payload: Any) -> tuple | None:
        if kind == "wait":
            return self._try_wait(w, payload)
        if kind == "poll":
            return self._try_poll(w, payload)
        if kind == "emit":
            return self._try_emit(w, payload)
        if kind == "recv":
            return self._try_recv(w)
        raise AssertionError(kind)   # pragma: no cover

    def _service_parked(self) -> None:
        """Retry every parked request until a pass makes no progress."""
        progressed = True
        while progressed and self._parked:
            progressed = False
            for parked in list(self._parked):
                reply = self._service(parked.worker, parked.kind,
                                      parked.payload)
                if reply is None:
                    continue
                self._parked.remove(parked)
                progressed = True
                self._finish_wait(parked)
                self._reply(parked.worker, self._wire(reply))

    def _finish_wait(self, parked: _Parked) -> None:
        elapsed = self._now() - parked.started
        self._reports[parked.worker.stage.name].record_wait(elapsed)
        if self._sink is not None:
            self._sink.emit(TraceEvent(
                parked.started, "stage.wait",
                stage=parked.worker.stage.name,
                args={"dur": elapsed,
                      "wait": self._BLOCKING[parked.kind]}))

    @staticmethod
    def _wire(reply: tuple) -> tuple:
        # "poll_ok" is internal (distinguishes a False poll result from
        # "park me"); on the wire both flavors are plain ("ok", ...)
        return ("ok", reply[1]) if reply[0] == "poll_ok" else reply

    # -- message handling -------------------------------------------------

    def _handle(self, w: _WorkerHandle, msg: tuple) -> None:
        if self._message_tap is not None:
            self._message_tap("recv", w.stage.name, msg)
        kind = msg[0]
        if self._ckpt_phase > 0 and not self._halted:
            # Quiescing for a checkpoint: divert every request that
            # needs a reply (blocking commands and synchronous writes)
            # unanswered — the worker stays parked at its command
            # boundary.  Leased writes stream on through: they are
            # effects already committed worker-side and must land
            # before capture (pipe FIFO guarantees they did, relative
            # to the blocking request that follows them).
            if kind in ("wait", "poll", "emit", "recv",
                        "close_channel"):
                self._qparked.append((w, msg))
                return
            if kind == "write" and not (len(msg) > 3 and msg[3]):
                self._qparked.append((w, msg))
                return
        if kind == "state":
            # a quiesced worker's resume cursor (checkpoint phase 2)
            self._captured[w.stage.name] = msg[1]
            return
        report = self._reports[w.stage.name]
        if kind == "energy":
            report.commands += 1
            self._energy += msg[1]
        elif kind == "segments":
            self._registry.register(msg[1])
        elif kind == "epoch":
            w.epoch_raw = msg[1]
            w.epoch_rel = self._now()
        elif kind == "trace":
            ts = msg[2]
            if w.epoch_raw is not None:
                # delta-correct the worker's raw clock against the
                # epoch handshake: merged traces stay monotone even if
                # the two processes' perf_counter epochs are skewed.
                # The handshake overestimates the offset by the epoch
                # message's transit time, so clamp to the receipt
                # instant — an event cannot postdate the moment the
                # parent read it, and min() of two nondecreasing
                # per-worker sequences stays monotone.
                ts = min(w.epoch_rel + (ts - w.epoch_raw), self._now())
            self._trace(msg[1], stage=w.stage.name, ts=ts, **msg[3])
        elif kind == "write":
            report.commands += 1
            leased = len(msg) > 3 and msg[3]
            if self._halted or self._stop_requested:
                # mirror the threaded halt check before each command: a
                # write racing shutdown must not hit a sealed buffer
                # (a leased write expects no reply — just drop it; the
                # worker halts at its next synchronous request).  A
                # stop *request* counts too: a leased worker may have
                # streamed writes past the one that satisfied the stop
                # condition before the reactor loop could halt — under
                # sync semantics those writes never happen, so they
                # must not be recorded here either
                if not leased:
                    self._reply(w, ("halt",))
                return
            if w.pending_error is not None:
                # an earlier leased write failed: under sync semantics
                # the stage would have raised there, so later streamed
                # writes never happen — drop them and deliver the
                # error at the worker's next synchronous request
                if not leased:
                    error, w.pending_error = w.pending_error, None
                    self._reply(w, error)
                return
            result = self._do_write(w, msg[1], msg[2])
            if leased:
                if result[0] == "raise":
                    w.pending_error = result
                return
            if result[0] == "raise":
                self._reply(w, result)
            else:
                self._reply(w, result + (self._write_credits(),))
        elif kind in ("wait", "poll", "emit", "recv"):
            report.commands += 1
            if self._halted:
                self._reply(w, ("halt",))
                return
            if w.pending_error is not None:
                error, w.pending_error = w.pending_error, None
                self._reply(w, error)
                return
            reply = self._service(w, kind, msg[1] if len(msg) > 1
                                  else None)
            if reply is None:
                self._parked.append(_Parked(w, kind,
                                            msg[1] if len(msg) > 1
                                            else None, self._now()))
            else:
                self._reply(w, self._wire(reply))
        elif kind == "close_channel":
            report.commands += 1
            if w.pending_error is not None and not self._halted:
                error, w.pending_error = w.pending_error, None
                self._reply(w, error)
                return
            w.stage.emit_to.close()
            self._reply(w, ("halt",) if self._halted else ("ok",))
        elif kind == "failed":
            w.pending_error = None
            self._on_failure(w, RuntimeError(msg[1]), in_process=True)
        elif kind in ("done", "degraded", "halted"):
            self._on_terminal(w, kind)
        else:   # pragma: no cover - protocol invariant
            raise RuntimeError(
                f"unknown worker message {msg!r} from {w.stage.name!r}")

    def _on_terminal(self, w: _WorkerHandle, kind: str) -> None:
        report = self._reports[w.stage.name]
        w.terminal = True
        if kind == "done" and not report.degraded:
            self._trace("stage.finish", stage=w.stage.name,
                        status="completed")
            report.completed = True
            self._seal_outputs(w.stage)
        elif kind in ("done", "degraded"):
            self._trace("stage.finish", stage=w.stage.name,
                        status="degraded")
            self._finish_degraded(w.stage, report)
        else:
            self._trace("stage.finish", stage=w.stage.name,
                        status="halted")

    def _on_failure(self, w: _WorkerHandle, exc: BaseException,
                    in_process: bool) -> None:
        """Shared fault path for reported raises and hard worker death.

        ``in_process=True`` means the worker is alive, blocked on the
        action reply (restart keeps its diffusive state and injector
        counters); ``False`` means the process died and restart means a
        re-fork from the parent's pristine stage copy.
        """
        stage = w.stage
        report = self._reports[stage.name]
        failures = report.record_failure(exc)
        self._trace("stage.finish", stage=stage.name, status="error",
                    error=repr(exc))
        self._errors.append((stage.name, exc))
        if self.stop is not None and self.stop.on_failure(stage.name,
                                                          exc):
            self._stop_requested = True
            self._finish_degraded(stage, report)
            w.terminal = True
            if in_process:
                self._reply(w, ("action", "halt", 0.0))
            return
        policy = resolve_policy(self.faults, stage.name)
        action = policy.decide(failures)
        if action == "restart" and stage.emit_to is not None:
            # a streaming parent cannot be restarted (double counting)
            action = "degrade"
        if action == "restart" and self._halted:
            action = "halt"
        if action == "restart":
            delay = policy.restart_delay(failures)
            self._trace("stage.restart", stage=stage.name,
                        failures=failures, delay=delay)
            if in_process:
                report.attempts += 1
                self._trace("stage.start", stage=stage.name,
                            attempt=report.attempts)
                self._reply(w, ("action", "restart", delay))
            else:
                w.restart_at = self._now() + delay
            return
        w.terminal = True
        if in_process:
            self._reply(w, ("action", action, 0.0))
        if action == "fail":
            report.failed = True
            self._seal_outputs(stage)
            self._initiate_halt()
        else:   # degrade / halt
            self._finish_degraded(stage, report)

    def _finish_degraded(self, stage, report: StageReport) -> None:
        report.degraded = True
        self._seal_outputs(stage)

    def _seal_outputs(self, stage) -> None:
        stage.output.seal()
        if stage.emit_to is not None and not stage.emit_to.closed:
            stage.emit_to.abort()
        if isinstance(stage, SynchronousStage) \
                and not stage.channel.closed:
            stage.channel.abort()

    # -- reactor loop ------------------------------------------------------

    def _drain(self, conn) -> None:
        w = self._by_conn.get(conn)
        if w is None:   # pragma: no cover - raced retire
            return
        try:
            while w.conn is conn and conn.poll():
                self._handle(w, conn.recv())
        except (EOFError, OSError):
            self._on_eof(w)

    def _on_eof(self, w: _WorkerHandle) -> None:
        self._retire_conn(w)
        if w.terminal:
            return
        if self._halted:
            # killed (or exiting) during shutdown: mirror the threaded
            # executor's halted finish for stages cut short
            w.terminal = True
            self._trace("stage.finish", stage=w.stage.name,
                        status="halted")
            return
        self._on_failure(
            w, RuntimeError(
                f"worker process for stage {w.stage.name!r} died "
                f"(exitcode={w.proc.exitcode})"),
            in_process=False)

    def _revoke_leases(self) -> None:
        """Zero every live worker's write credits (reactor thread only).

        A worker mid-lease sees the revoke before its next leased write
        (:meth:`_Worker._drain_revokes`) or inside its blocked request
        loop, and falls back to synchronous operation immediately.
        """
        for w in self._workers.values():
            if w.conn is not None and not w.terminal:
                self._reply(w, ("revoke",))

    def _initiate_halt(self) -> None:
        if self._halted:
            return
        self._halted = True
        self._revoke_leases()
        self._grace_deadline = self._now() + self.grace_s
        for parked in self._parked:
            self._reply(parked.worker, ("halt",))
        self._parked.clear()
        # abort any in-flight checkpoint: its diverted workers get the
        # same halt, and the requester an error instead of a file
        for w, _msg in self._qparked:
            self._reply(w, ("halt",))
        self._qparked.clear()
        if self._ckpt_request is not None and self._stop_requested:
            # a stop raced the quiesce: shutdown seals every buffer, so
            # the capture is lost — the requester gets an error.  (A
            # *natural* wind-down is fine: the requester captures the
            # completed state directly once the reactor exits.)
            from ..ckpt.format import CheckpointError
            self._ckpt_result = ("error", CheckpointError(
                "run halted while a checkpoint was being taken"))
            self._ckpt_request = None
            self._ckpt_phase = 0
            self._ckpt_revoked = False
            if self._ckpt_event is not None:
                self._ckpt_event.set()
        for w in self._workers.values():
            w.restart_at = None   # no re-forks once halting

    def _live_conns(self) -> list:
        return [w.conn for w in self._workers.values()
                if w.conn is not None]

    def _spawn_due_restarts(self) -> None:
        now = self._now()
        for w in self._workers.values():
            if w.restart_at is not None and now >= w.restart_at:
                self._retire_conn(w)
                self._launch(w)

    def _terminate_stragglers(self) -> None:
        for w in self._workers.values():
            if w.proc is not None and w.proc.is_alive():
                w.proc.terminate()

    def _join_all(self) -> None:
        deadline = _time.perf_counter() + max(self.grace_s, 1.0)
        for w in self._workers.values():
            if w.proc is None:
                continue
            w.proc.join(timeout=max(deadline - _time.perf_counter(),
                                    0.05))
            if w.proc.is_alive():   # pragma: no cover - last resort
                w.proc.kill()
                w.proc.join(timeout=1.0)
            self._retire_conn(w)

    def _cleanup_plane(self) -> None:
        for writer in self._ext_writers:
            writer.close()
        self._ext_writers.clear()
        self._registry.unlink_all()

    # -- checkpoint (repro.ckpt) -----------------------------------------

    def _quiesced(self) -> bool:
        """Every live, non-terminal worker is blocked on an unanswered
        request (pre-quiesce parked or quiesce-diverted) or is waiting
        out a re-fork backoff.  Leased writes have then all drained:
        they were sent before the blocking request, and the pipe is
        FIFO."""
        blocked = {p.worker.stage.name for p in self._parked}
        blocked.update(w.stage.name for w, _m in self._qparked)
        for w in self._workers.values():
            if w.terminal or w.restart_at is not None:
                continue
            if w.conn is None:
                continue   # death being resolved; EOF path will run
            if w.stage.name not in blocked:
                return False
        return True

    def _ckpt_step(self) -> None:
        """One reactor turn of the checkpoint state machine."""
        if self._ckpt_phase == 1:
            if not self._ckpt_revoked:
                # not needed for convergence (credits are only granted
                # by replies, which are diverted) but collapses the
                # quiesce latency for deeply-leased streaming workers
                self._ckpt_revoked = True
                self._revoke_leases()
            if not self._quiesced():
                return
            # ask every blocked worker for its resume cursor, passing
            # the authoritative applied-write / applied-emit counts
            self._ckpt_expect = set()
            for w in self._workers.values():
                if w.terminal or w.conn is None \
                        or w.restart_at is not None:
                    continue
                written = w.stage.output.version
                emitted = (w.stage.emit_to.emitted
                           if w.stage.emit_to is not None else 0)
                try:
                    w.conn.send(("capture", written, emitted))
                    self._ckpt_expect.add(w.stage.name)
                except (BrokenPipeError, OSError):
                    pass   # dying worker: resumes fresh (cursor None)
            self._ckpt_phase = 2
            return
        if self._ckpt_phase == 2:
            # drop expectations for workers that died mid-capture
            self._ckpt_expect = {
                n for n in self._ckpt_expect
                if self._workers[n].conn is not None}
            if not self._ckpt_expect <= set(self._captured):
                return
            try:
                result = ("ok", self._ckpt_write(self._ckpt_request))
            except BaseException as exc:   # noqa: BLE001 - reported
                result = ("error", exc)
            self._ckpt_result = result
            self._ckpt_request = None
            self._ckpt_phase = 0
            self._ckpt_revoked = False
            self._captured = {}
            # replay the diverted requests: the run continues as if the
            # checkpoint never happened
            qparked, self._qparked = self._qparked, []
            for w, msg in qparked:
                if w.conn is not None:
                    self._handle(w, msg)
            self._service_parked()
            if self._ckpt_event is not None:
                self._ckpt_event.set()

    def _ckpt_write(self, path: str) -> str:
        """Assemble and write the checkpoint file (run is quiesced)."""
        from ..ckpt.state import (STATUS_COMPLETED, STATUS_DEGRADED,
                                  STATUS_FAILED, STATUS_LIVE,
                                  assemble_payload, save_checkpoint)

        stages: dict[str, dict] = {}
        for name, w in self._workers.items():
            report = self._reports[name]
            cursor = None
            if not w.terminal:
                # still running — stays LIVE even if the degraded flag
                # is already set (final-after-abort); the flag rides
                # along in the restored report.  A worker in re-fork
                # backoff has no cursor: it resumes from a fresh
                # generator, re-consuming current snapshots (same as a
                # process-death restart would).
                status = STATUS_LIVE
                cursor = self._captured.get(name)
            elif report.failed:
                status = STATUS_FAILED
            elif report.degraded:
                status = STATUS_DEGRADED
            else:
                status = STATUS_COMPLETED
            stages[name] = {"status": status, "cursor": cursor}
        # parent-side buffers hold slab descriptors, not arrays —
        # decode each into a real value for the checkpoint
        buffer_values = {name: self._decode(name)
                         for name in self._payloads}
        records = list(self._timeline.records)
        if self._resume is not None and self._resume.prefix.records:
            records = self._resume.prefix.records + records
        payload = assemble_payload(
            self.graph, name=self.run_name, executor="process",
            stages=stages, reports=self._reports, energy=self._energy,
            timeline=Timeline(records), duration=self._now(),
            stop=self.stop, buffer_values=buffer_values)
        return save_checkpoint(path, payload, app_spec=self.app_spec)

    def _checkpoint(self, path: str) -> str:
        """Request a checkpoint from the reactor and wait for it."""
        from ..ckpt.format import CheckpointError

        if self._reactor is None:
            raise CheckpointError(
                "cannot checkpoint: the run was never launched")
        if self._stop_requested:
            raise CheckpointError(
                "cannot checkpoint a stopping run: shutdown seals "
                "every buffer (checkpoint before request_stop)")
        if self._halted or not self._reactor.is_alive():
            # the run already wound down naturally: every stage is
            # terminal, so the capture is a plain read of parent-side
            # state once the reactor finishes its cleanup
            self._reactor.join(timeout=self.grace_s + 10.0)
            if self._stop_requested:
                raise CheckpointError(
                    "cannot checkpoint a stopping run: shutdown seals "
                    "every buffer (checkpoint before request_stop)")
            if self._final_result is not None:
                raise CheckpointError(
                    "cannot checkpoint a collected run: its shared-"
                    "memory plane has been released")
            return self._ckpt_write(path)
        event = threading.Event()
        self._ckpt_event = event
        self._ckpt_result = None
        self._captured = {}
        self._ckpt_revoked = False
        self._ckpt_phase = 1
        self._ckpt_request = path    # the reactor picks this up
        while not event.wait(timeout=_WAIT_S):
            if not self._reactor.is_alive():
                break
        if self._ckpt_result is None:
            # reactor exited mid-request (run completed): capture the
            # final state directly — no concurrency left to manage
            if self._final_result is not None:
                raise CheckpointError(
                    "cannot checkpoint a collected run: its shared-"
                    "memory plane has been released")
            self._ckpt_request = None
            self._ckpt_phase = 0
            return self._ckpt_write(path)
        status, value = self._ckpt_result
        self._ckpt_result = None
        if status == "error":
            raise value
        return value

    # -- RunHandle protocol ----------------------------------------------

    def _set_paused(self, paused: bool) -> None:
        """Pause = the reactor stops draining and answering workers.

        Workers block on their next blocking command's reply (writes,
        waits, emits, recvs); pure compute between yields still runs to
        its next command — preemption lands at the command boundary,
        exactly like the threaded gate.
        """
        self._paused = bool(paused)

    def _is_paused(self) -> bool:
        return self._paused

    def _is_active(self) -> bool:
        return self._reactor is not None and self._reactor.is_alive()

    def _wait_done(self, timeout_s: float | None) -> bool:
        if self._reactor is None:
            raise RuntimeError("executor was never launched")
        self._reactor.join(timeout=timeout_s)
        return not self._reactor.is_alive()

    def _watch_name(self) -> str:
        if len(self.watch) == 1:
            return next(iter(self.watch))
        return self.graph.terminal_buffer().name

    def _peek(self) -> Snapshot:
        name = self._watch_name()
        flags = self.graph.buffers[name].snapshot()
        cached = self._latest.get(name)
        if cached is None:
            return Snapshot(name, None, flags.version, flags.final,
                            flags.sealed)
        if cached.version == flags.version:
            return Snapshot(name, cached.value, flags.version,
                            flags.final, flags.sealed)
        return cached   # a write raced the flag read; cached is valid

    # -- whole-run driver --------------------------------------------------

    def launch(self) -> RunHandle:
        """Fork the workers and start the reactor thread; returns a
        handle (see :class:`~repro.core.executor.RunHandle`).

        The caller's thread forks the workers (inheriting the graph
        copy-on-write); the reactor loop then runs in a daemon thread
        so the run is pause/resume/stop-able from outside.
        """
        if self._reactor is not None:
            raise RuntimeError("executor already launched")
        self._t0 = _time.perf_counter()
        self._install_hooks()
        try:
            # make sure the one resource tracker exists before forking,
            # so every worker registers segments with the same tracker
            # (and the parent's unlink below settles all of them)
            from multiprocessing import resource_tracker
            resource_tracker.ensure_running()
        except Exception:   # pragma: no cover - tracker is best-effort
            pass
        self._encode_externals()
        finished = (self._resume.finished
                    if self._resume is not None else {})
        try:
            for w in self._workers.values():
                if w.stage.name in finished:
                    # restored as already terminal: its output ladder
                    # was re-encoded by _encode_externals above
                    w.terminal = True
                    continue
                self._launch(w)
        except BaseException:
            self._initiate_halt()
            self._terminate_stragglers()
            self._join_all()
            self._cleanup_plane()
            raise
        self._reactor = threading.Thread(target=self._reactor_main,
                                         name="procexec-reactor",
                                         daemon=True)
        self._reactor.start()
        return RunHandle(self)

    def _reactor_main(self) -> None:
        deadline = (None if self._timeout_s is None
                    else self._t0 + self._timeout_s)
        try:
            while True:
                conns = self._live_conns()
                if not conns and not any(
                        w.restart_at is not None
                        for w in self._workers.values()):
                    break
                if not self._halted:
                    if deadline is not None \
                            and _time.perf_counter() > deadline:
                        self._stop_requested = True
                    if self._stop_requested:
                        self._initiate_halt()
                if self._halted and self._now() > self._grace_deadline:
                    self._terminate_stragglers()
                self._spawn_due_restarts()
                quiescing = (self._ckpt_request is not None
                             and not self._halted)
                if quiescing:
                    self._ckpt_step()
                    quiescing = self._ckpt_request is not None
                if self._paused and not self._halted and not quiescing:
                    # preempted: leave workers parked on their pipes;
                    # halt/stop checks above stay live.  Revoke leases
                    # once per pause episode so streaming workers stop
                    # spending credits and sync up promptly.  (A
                    # checkpoint of a paused run overrides this branch:
                    # the quiesce needs the pipes drained.)
                    if not self._pause_revoked:
                        self._pause_revoked = True
                        self._revoke_leases()
                    _time.sleep(_WAIT_S)
                    continue
                self._pause_revoked = False
                if conns:
                    for conn in mp_connection.wait(conns,
                                                   timeout=_WAIT_S):
                        self._drain(conn)
                else:
                    _time.sleep(_WAIT_S)
                if not quiescing:
                    # while quiescing, parked requests stay parked (a
                    # blocked worker is exactly what the capture wants)
                    self._service_parked()
        finally:
            self._initiate_halt()
            self._terminate_stragglers()
            self._join_all()
            self._ended_at = _time.perf_counter()

    def _finalize(self) -> ThreadedResult:
        """Assemble the result after the reactor has wound down."""
        with self._final_lock:
            if self._final_result is None:
                ended = (self._ended_at if self._ended_at is not None
                         else _time.perf_counter())
                duration = ended - self._t0 + self._t_offset
                if self._resume is not None \
                        and self._resume.prefix.records:
                    self._timeline = Timeline(
                        self._resume.prefix.records
                        + self._timeline.records)
                if self._stop_requested:
                    # same hygiene as ThreadedExecutor._shutdown_io:
                    # nothing outside the executor may hang on a buffer
                    # or channel no worker will ever touch again
                    for b in self.graph.buffers.values():
                        b.seal()
                    for c in self.graph.channels.values():
                        if not c.closed:
                            c.abort()
                completed = (all(r.completed
                                 for r in self._reports.values())
                             and not self._stop_requested)
                final_values = {name: self._decode(name)
                                for name in self.graph.buffers}
                self._cleanup_plane()
                self._final_result = ThreadedResult(
                    timeline=self._timeline, duration=duration,
                    completed=completed,
                    stopped_early=self._stop_requested,
                    final_values=final_values,
                    errors=list(self._errors),
                    stage_reports=dict(self._reports))
            if self.strict:
                unrecovered = [(n, r) for n, r in self._reports.items()
                               if r.last_error is not None
                               and not r.completed]
                if unrecovered:
                    name, _ = unrecovered[0]
                    first = next(exc for sname, exc in self._errors
                                 if sname == name)
                    raise RuntimeError(
                        f"stage {name!r} failed during process "
                        f"execution: {first}") from first
            return self._final_result

    def run(self, timeout_s: float | None = None) -> ThreadedResult:
        """Execute until completion, stop condition, or ``timeout_s``."""
        self._timeout_s = timeout_s
        return self.launch().result(timeout_s=None)
