"""Pipeline scheduling policies (paper Section IV-C2).

Given an architecture with limited cores, how many should each stage get?
The paper frames this as an optimization problem with two competing goals:

- minimize **time to first output** — favor the *longest* stage, since the
  first whole-application output O_1...1 waits for every stage's first
  intermediate output;
- minimize **inter-output gap** — favor the *final* stage, which must
  re-process everything for each fresh output version.

These policies assign (possibly fractional) core shares to stages; the
simulated executor divides step costs by the share.  Correctness never
depends on the assignment — "pipeline scheduling is merely an optimization
problem" — which the scheduling ablation verifies.
"""

from __future__ import annotations

from typing import Callable

from .graph import AutomatonGraph
from .stage import Stage

__all__ = ["SchedulingPolicy", "equal_shares", "proportional_shares",
           "first_output_shares", "final_stage_shares", "POLICIES"]

SchedulingPolicy = Callable[[AutomatonGraph, float], dict[str, float]]


def _normalize(raw: dict[str, float], total_cores: float,
               ) -> dict[str, float]:
    """Scale shares to ``total_cores`` with a one-core floor.

    No stage can use less than one hardware thread on a real machine, so
    cheap sequential stages (histeq's CDF, kmeans' reduce) keep a whole
    core instead of being starved by cost-proportional scaling.  When
    there are more stages than cores the floor becomes an equal split.
    """
    floor = min(1.0, total_cores / len(raw))
    scale = total_cores / sum(raw.values())
    shares = {name: share * scale for name, share in raw.items()}
    for _ in range(len(raw)):
        low = {n for n, s in shares.items() if s < floor}
        if not low:
            break
        high_total = sum(s for n, s in shares.items() if n not in low)
        remaining = total_cores - floor * len(low)
        for n in shares:
            shares[n] = (floor if n in low
                         else shares[n] / high_total * remaining)
    return shares


def equal_shares(graph: AutomatonGraph,
                 total_cores: float) -> dict[str, float]:
    """Every stage gets the same share."""
    return _normalize({s.name: 1.0 for s in graph.stages}, total_cores)


def proportional_shares(graph: AutomatonGraph,
                        total_cores: float) -> dict[str, float]:
    """Shares proportional to precise cost (latency balancing) — the
    conventional pipeline heuristic the paper says "may not be suitable"
    but remains a solid default."""
    raw = {s.name: max(s.precise_cost, 1e-12) for s in graph.stages}
    return _normalize(raw, total_cores)


def first_output_shares(graph: AutomatonGraph, total_cores: float,
                        boost: float = 3.0) -> dict[str, float]:
    """Boost the most expensive stage to minimize time-to-first-output."""
    raw = {s.name: max(s.precise_cost, 1e-12) for s in graph.stages}
    longest = max(raw, key=raw.get)
    raw[longest] *= boost
    return _normalize(raw, total_cores)


def final_stage_shares(graph: AutomatonGraph, total_cores: float,
                       boost: float = 3.0) -> dict[str, float]:
    """Boost the terminal stage to minimize the gap between consecutive
    whole-application outputs."""
    raw = {s.name: max(s.precise_cost, 1e-12) for s in graph.stages}
    terminals = graph.terminal_stages()
    for t in terminals:
        raw[t.name] *= boost
    return _normalize(raw, total_cores)


#: policy registry for benchmarks and the CLI-ish harness
POLICIES: dict[str, SchedulingPolicy] = {
    "equal": equal_shares,
    "proportional": proportional_shares,
    "first-output": first_output_shares,
    "final-stage": final_stage_shares,
}
