"""Runtime validators for the model's Properties 1-3.

- **Property 1 (purity)**: every intermediate computation is a pure
  function of its input and output buffers.  :func:`check_purity` is a
  test harness that runs a stage function twice on defensively copied
  inputs and verifies (a) identical outputs and (b) unmodified inputs.
- **Property 2 (single writer)**: enforced structurally by
  :class:`~repro.core.buffer.VersionedBuffer.register_writer` and
  :meth:`~repro.core.graph.AutomatonGraph.validate`;
  :func:`check_single_writer` re-audits a graph.
- **Property 3 (atomic writes)**: by construction — buffers copy values
  under a lock and hand out read-only snapshots; :func:`check_atomicity`
  verifies the frozen-snapshot behaviour for array values.
"""

from __future__ import annotations

from typing import Any, Callable, Sequence

import numpy as np

from .graph import AutomatonGraph

__all__ = ["PurityViolation", "check_purity", "check_single_writer",
           "check_atomicity"]


class PurityViolation(AssertionError):
    """A stage function broke Property 1."""


def _deep_copy(value: Any) -> Any:
    if isinstance(value, np.ndarray):
        return value.copy()
    if isinstance(value, (list, tuple)):
        return type(value)(_deep_copy(v) for v in value)
    if isinstance(value, dict):
        return {k: _deep_copy(v) for k, v in value.items()}
    return value


def _equal(a: Any, b: Any) -> bool:
    if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
        return (np.asarray(a).shape == np.asarray(b).shape
                and np.array_equal(np.asarray(a), np.asarray(b)))
    return a == b


def check_purity(fn: Callable[..., Any], args: Sequence[Any],
                 trials: int = 2) -> Any:
    """Verify that ``fn(*args)`` is pure; returns the output.

    Runs the function ``trials`` times on fresh copies of ``args``,
    asserting the arguments are never mutated and the outputs agree.
    Raises :class:`PurityViolation` with a diagnostic otherwise.  (A pure
    function could still read hidden global state that happens to be
    constant across trials — this is a detector, not a prover.)
    """
    if trials < 2:
        raise ValueError("purity check needs at least 2 trials")
    reference_args = [_deep_copy(a) for a in args]
    outputs = []
    for _ in range(trials):
        trial_args = [_deep_copy(a) for a in args]
        outputs.append(fn(*trial_args))
        for i, (orig, used) in enumerate(zip(reference_args, trial_args)):
            if not _equal(orig, used):
                raise PurityViolation(
                    f"{fn!r} mutated argument {i} (Property 1)")
    first = outputs[0]
    for i, out in enumerate(outputs[1:], start=2):
        if not _equal(first, out):
            raise PurityViolation(
                f"{fn!r} is non-deterministic: trial 1 and trial {i} "
                f"outputs differ (Property 1)")
    return first


def check_single_writer(graph: AutomatonGraph) -> None:
    """Re-audit Property 2 over a constructed graph."""
    writers: dict[str, list[str]] = {}
    for stage in graph.stages:
        writers.setdefault(stage.output.name, []).append(stage.name)
    offenders = {b: names for b, names in writers.items()
                 if len(names) > 1}
    if offenders:
        raise AssertionError(
            f"Property 2 violated: multiple writers {offenders}")
    for stage in graph.stages:
        owner = stage.output.writer
        if owner is not None and owner != stage.name:
            raise AssertionError(
                f"buffer {stage.output.name!r} registered to {owner!r} "
                f"but attached to stage {stage.name!r}")


def check_atomicity(buffer_value: Any) -> None:
    """Verify a snapshot value is tamper-proof (Property 3 corollary).

    Array snapshots must be read-only; attempting to mutate one must
    raise, so a consumer cannot corrupt the producer's published version.
    """
    if isinstance(buffer_value, np.ndarray):
        if buffer_value.flags.writeable:
            raise AssertionError(
                "snapshot array is writeable; Property 3 requires "
                "frozen published versions")
