"""Real-machine threaded execution of anytime automata.

One thread per stage, interpreting the same command protocol as the
simulated executor, but against wall-clock time: :class:`Compute` is a
no-op (the actual NumPy work happens inside the stage generator between
yields), waits block on buffer condition variables, and channels use their
built-in blocking operations.

This executor exists for what simulation cannot give — genuine
interactive interruption on a live machine (stop the automaton the moment
the on-screen output looks right).  Its runtime-accuracy numbers carry the
usual wall-clock caveats (CPython's GIL serializes pure-Python sections;
NumPy kernels release it), which is why the benchmarks use the
deterministic simulator and the examples use this.

Fault tolerance: a stage exception no longer discards the run.  Each
stage is governed by a :class:`~repro.core.faults.FaultPolicy` — it is
restarted from a fresh generator (legal because buffers are monotone),
degraded (its output buffer is *sealed* at the last published version and
downstream stages finish on it), or, under the fail-fast default, halts
the automaton while still returning the partial timeline.  Outcomes are
reported per stage in :attr:`ThreadedResult.stage_reports`; pass
``strict=True`` to restore the historical raise-on-failure behavior.
"""

from __future__ import annotations

import threading
import time as _time
from dataclasses import dataclass, field
from typing import Any

from .buffer import Snapshot
from .channel import ChannelClosed
from .controller import StopCondition
from .faults import (FaultInjector, FaultPolicy, StageReport,
                     resolve_policy)
from .graph import AutomatonGraph
from .recording import Timeline, WriteRecord
from .stage import (CHANNEL_END, CloseChannel, Compute, Emit, Lease,
                    PollInputs, Recv, WaitInputs, Write)
from .syncstage import SynchronousStage
from .tracing import TraceEvent, TraceSink, active_sink

__all__ = ["ThreadedExecutor", "ThreadedResult", "RunHandle"]

_POLL_S = 0.005

#: sentinel from ``_wait_inputs``: every input is final or sealed and no
#: unseen version exists, so the wait can never be satisfied
_EXHAUSTED = object()


@dataclass
class ThreadedResult:
    """Outcome of one threaded run (times are wall seconds from start).

    ``completed`` means every stage ran its generator to the natural
    end; ``stopped_early`` means a stop condition, user interrupt or
    timeout halted the run — a pure stage failure sets *neither*.
    ``stage_reports`` carries the per-stage fault record.
    """

    timeline: Timeline
    duration: float
    completed: bool
    stopped_early: bool
    final_values: dict[str, Any] = field(default_factory=dict)
    errors: list[tuple[str, BaseException]] = field(default_factory=list)
    stage_reports: dict[str, StageReport] = field(default_factory=dict)

    def output_records(self, buffer: str) -> list[WriteRecord]:
        return self.timeline.for_buffer(buffer)

    @property
    def degraded_stages(self) -> list[str]:
        return sorted(n for n, r in self.stage_reports.items()
                      if r.degraded)

    @property
    def failed_stages(self) -> list[str]:
        return sorted(n for n, r in self.stage_reports.items() if r.failed)


class RunHandle:
    """Control surface over a *launched*, in-flight executor run.

    This is the inversion of control the serving layer is built on: an
    executor no longer owns its run loop from start to finish — it is
    launched, and the holder of the handle decides when the run is
    paused, resumed, stopped, or collected.  Works identically over the
    threaded and process executors (both implement the small private
    protocol the handle delegates to).

    The anytime guarantee makes every operation safe at any moment:
    pausing, stopping or abandoning the run leaves the output buffer
    holding a valid approximation (Property 3), so a scheduler can
    preempt a run between output versions with nothing to clean up.
    """

    def __init__(self, executor: Any) -> None:
        self.executor = executor

    # -- preemption ------------------------------------------------------

    def pause(self) -> None:
        """Suspend progress at the next inter-command boundary.

        Stages stop pumping their generators (the threaded executor
        gates every command dispatch; the process executor stops
        answering worker requests, so workers block on their next
        blocking command).  Idempotent; wall clocks keep running.
        """
        self.executor._set_paused(True)

    def resume(self) -> None:
        """Undo :meth:`pause`; progress restarts within one poll tick."""
        self.executor._set_paused(False)

    @property
    def paused(self) -> bool:
        return self.executor._is_paused()

    # -- interruption ----------------------------------------------------

    def request_stop(self) -> None:
        """Interrupt the run (thread-safe, idempotent); also resumes a
        paused run so its stages can observe the halt and wind down."""
        self.executor.request_stop()

    # -- checkpoint ------------------------------------------------------

    def checkpoint(self, path: str) -> str:
        """Quiesce the run and serialize it to ``path`` (repro.ckpt).

        Pauses the run at its inter-command boundary, waits until every
        live stage has parked, captures the authoritative state —
        buffer ladders, channel queues, per-stage cursors, reports,
        energy, stop progress — and writes a digest-stamped checkpoint
        file.  The run then continues (its pause state is restored), so
        a checkpoint is an observation, not an interruption: take one
        and keep running, or take one and :meth:`request_stop`.

        Returns the payload digest.  Must precede any stop request (a
        stopping run seals its buffers, which is unrecoverable);
        raises :class:`repro.ckpt.CheckpointError` otherwise.
        """
        return self.executor._checkpoint(path)

    # -- observation -----------------------------------------------------

    @property
    def finished(self) -> bool:
        """True once every stage has wound down (result is ready)."""
        return not self.executor._is_active()

    def snapshot(self) -> Snapshot:
        """Atomic snapshot of the watched terminal buffer, right now.

        By Property 3 this is always a valid approximation (or empty
        before the first write) — the live ``peek`` a server streams
        intermediate refinements from.
        """
        return self.executor._peek()

    def wait(self, timeout_s: float | None = None) -> bool:
        """Block until the run finishes; False on timeout."""
        return self.executor._wait_done(timeout_s)

    # -- collection ------------------------------------------------------

    def result(self, timeout_s: float | None = None) -> ThreadedResult:
        """Collect the run's result, interrupting it at ``timeout_s``.

        Blocks until the run finishes; if ``timeout_s`` expires first
        the run is stopped and the partial result returned (the classic
        anytime contract).  Idempotent once finished.
        """
        if not self.executor._wait_done(timeout_s):
            self.executor.request_stop()
            self.executor._wait_done(None)
        return self.executor._finalize()


class ThreadedExecutor:
    """Runs an :class:`AutomatonGraph` on real threads.

    Parameters mirror the simulated executor where meaningful; there is
    no core-share scheduling — the OS scheduler decides.

    Parameters
    ----------
    faults:
        A :class:`FaultPolicy` for every stage, or a ``{stage: policy}``
        mapping (key ``"*"`` is the default).  None = fail-fast.
    injector:
        Optional :class:`FaultInjector` test harness (single-use).
    strict:
        When True, a run that ends with an unrecovered stage failure
        raises ``RuntimeError`` (the historical behavior) instead of
        returning the partial result.
    trace:
        Optional :class:`~repro.core.tracing.TraceSink` receiving
        structured execution events; None (or a disabled sink such as
        ``NullSink``) short-circuits every hook (zero overhead when
        off).  Timestamps are wall seconds from run start.
    trace_metric / trace_reference:
        When both tracing and a metric are supplied, each watched write
        additionally emits an ``accuracy.sample`` event with
        ``metric(value, trace_reference)``.
    lease_k:
        Cap on :class:`~repro.core.stage.Lease` grants — how many
        accuracy levels a stage may batch into one vectorized kernel
        pass.  ``1`` disables batching (each level computed on its own,
        the historical behavior); the published versions are
        bit-identical at any setting.
    """

    def __init__(self, graph: AutomatonGraph,
                 stop: StopCondition | None = None,
                 watch: set[str] | None = None,
                 faults: FaultPolicy | dict[str, FaultPolicy] | None = None,
                 injector: FaultInjector | None = None,
                 strict: bool = False,
                 trace: TraceSink | None = None,
                 trace_metric: Any = None,
                 trace_reference: Any = None,
                 lease_k: int = 8,
                 resume: Any = None) -> None:
        if lease_k < 1:
            raise ValueError(f"lease_k must be >= 1, got {lease_k}")
        self.graph = graph
        self.lease_k = int(lease_k)
        self.stop = stop
        if watch is None:
            terminals = graph.terminal_stages()
            watch = {t.output.name for t in terminals}
        self.watch = set(watch)
        self.faults = faults
        self.injector = injector
        self.strict = strict
        self._sink = active_sink(trace)
        self.trace_metric = trace_metric
        self.trace_reference = trace_reference
        # Cumulative *virtual* energy, charged from the Compute costs
        # the stages declare.  Wall time cannot recover per-stage cost,
        # but the declared costs can — so the threaded timeline's
        # energy column agrees in shape with the simulator's.
        self._energy = 0.0
        self._halt = threading.Event()
        self._stop_requested = threading.Event()
        # The pause gate: cleared = stage threads park between commands
        # (preemption boundary for the serving scheduler).
        self._gate = threading.Event()
        self._gate.set()
        self._threads: list[threading.Thread] | None = None
        self._stage_threads: dict[str, threading.Thread] = {}
        self._ended_at: float | None = None
        self._final_lock = threading.Lock()
        self._final_result: ThreadedResult | None = None
        self._lock = threading.Lock()
        self._timeline = Timeline()
        self._errors: list[tuple[str, BaseException]] = []
        self._reports = {s.name: StageReport(stage=s.name)
                         for s in graph.stages}
        # Checkpoint support (repro.ckpt): where each stage thread is
        # parked or blocked (the quiesce detector), the automaton name
        # and app spec stamped into checkpoint headers, and — when this
        # run *resumes* a checkpoint — the ResumeInfo seeding energy,
        # reports, timeline offset and the set of stages not relaunched.
        self._park_status: dict[str, tuple] = {}
        self.run_name = "automaton"
        self.app_spec: dict[str, Any] | None = None
        self._resume = resume
        self._t_offset = 0.0
        if resume is not None:
            self._energy = float(resume.energy)
            self._t_offset = float(resume.duration)
            self._reports = resume.seed_reports(
                [s.name for s in graph.stages])
            from ..ckpt.state import restore_stop
            restore_stop(self.stop, resume.stop)
        # One wake-up event per stage, subscribed to every input buffer:
        # a write to *any* input wakes the stage promptly (no rotation,
        # no busy-polling a single input).
        self._events = {s.name: threading.Event() for s in graph.stages}
        for s in graph.stages:
            for b in s.inputs:
                b.subscribe(self._events[s.name])
        self._t0 = 0.0

    def request_stop(self) -> None:
        """Interrupt the automaton (thread-safe, idempotent)."""
        self._stop_requested.set()
        self._halt.set()
        # release paused threads so they can observe the halt
        self._gate.set()

    # -- RunHandle protocol ----------------------------------------------

    def _set_paused(self, paused: bool) -> None:
        if paused:
            if not self._halt.is_set():
                self._gate.clear()
        else:
            self._gate.set()

    def _is_paused(self) -> bool:
        return not self._gate.is_set()

    def _is_active(self) -> bool:
        return self._threads is not None and any(
            t.is_alive() for t in self._threads)

    def _wait_done(self, timeout_s: float | None) -> bool:
        """Join all stage threads; False if ``timeout_s`` expired first."""
        if self._threads is None:
            raise RuntimeError("executor was never launched")
        deadline = (None if timeout_s is None
                    else _time.monotonic() + timeout_s)
        for t in self._threads:
            while t.is_alive():
                t.join(timeout=_POLL_S)
                if deadline is not None \
                        and _time.monotonic() >= deadline:
                    if self._is_active():
                        return False
        if self._ended_at is None:
            self._ended_at = _time.perf_counter()
        return True

    def _watch_name(self) -> str:
        if len(self.watch) == 1:
            return next(iter(self.watch))
        return self.graph.terminal_buffer().name

    def _peek(self) -> Snapshot:
        return self.graph.buffers[self._watch_name()].snapshot()

    # -- tracing ---------------------------------------------------------

    def _now(self) -> float:
        # resumed runs continue the interrupted run's clock, so the
        # combined timeline stays monotone across the checkpoint
        return _time.perf_counter() - self._t0 + self._t_offset

    def _trace(self, kind: str, stage: str | None = None,
               target: str | None = None, ts: float | None = None,
               **args: Any) -> None:
        if self._sink is None:
            return
        self._sink.emit(TraceEvent(self._now() if ts is None else ts,
                                   kind, stage=stage, target=target,
                                   args=args))

    def _trace_wait(self, stage_name: str, started: float,
                    kind: str) -> None:
        """Record one completed blocking wait (counter + span event)."""
        elapsed = self._now() - started
        self._reports[stage_name].record_wait(elapsed)
        if self._sink is not None:
            self._sink.emit(TraceEvent(
                started, "stage.wait", stage=stage_name,
                args={"dur": elapsed, "wait": kind}))

    def _install_hooks(self) -> None:
        """Point buffer/channel/injector tracers at the sink."""
        if self._sink is None:
            return

        chan_stage: dict[tuple[str, str], str] = {}
        for s in self.graph.stages:
            if s.emit_to is not None:
                chan_stage[(s.emit_to.name, "out")] = s.name
            if isinstance(s, SynchronousStage):
                chan_stage[(s.channel.name, "in")] = s.name

        def buffer_hook(kind: str, name: str, **args: Any) -> None:
            self._trace(kind, stage=args.pop("writer", None),
                        target=name, **args)

        def channel_hook(kind: str, name: str, **args: Any) -> None:
            side = "in" if kind == "channel.recv" else "out"
            self._trace(kind, stage=chan_stage.get((name, side)),
                        target=name, **args)

        for b in self.graph.buffers.values():
            b.tracer = buffer_hook
        for s in self.graph.stages:
            if s.emit_to is not None:
                s.emit_to.tracer = channel_hook
        if self.injector is not None:
            self.injector.tracer = (
                lambda s, c, k: self._trace("fault.injected", stage=s,
                                            at=c, fault=k))

    def _charge(self, cmd: Compute) -> None:
        amount = cmd.energy if cmd.energy is not None else cmd.cost
        with self._lock:
            self._energy += amount

    def _energy_total(self) -> float:
        with self._lock:
            return self._energy

    def _record(self, record: WriteRecord) -> None:
        with self._lock:
            self._timeline.add(record)
        if record.buffer in self.watch and self.stop is not None \
                and self.stop.should_stop(record):
            self.request_stop()

    # -- per-stage thread ------------------------------------------------

    def _run_stage(self, stage) -> None:
        report = self._reports[stage.name]
        policy = resolve_policy(self.faults, stage.name)
        while not self._halt.is_set():
            report.attempts += 1
            self._trace("stage.start", stage=stage.name,
                        attempt=report.attempts)
            gen = stage.body()
            if self.injector is not None:
                gen = self.injector.wrap(stage.name, gen, realtime=True)
            try:
                outcome = self._interpret(stage, gen)
            except BaseException as exc:   # noqa: BLE001 - reported
                failures = report.record_failure(exc)
                self._trace("stage.finish", stage=stage.name,
                            status="error", error=repr(exc))
                with self._lock:
                    self._errors.append((stage.name, exc))
                if self.stop is not None \
                        and self.stop.on_failure(stage.name, exc):
                    self.request_stop()
                    self._finish_degraded(stage, report)
                    return
                action = policy.decide(failures)
                if action == "restart" and stage.emit_to is not None:
                    # A streaming parent cannot be restarted: its
                    # consumer already folded updates that a fresh pass
                    # would re-emit (double counting).  Degrade instead.
                    action = "degrade"
                if action == "restart":
                    delay = policy.restart_delay(failures)
                    self._trace("stage.restart", stage=stage.name,
                                failures=failures, delay=delay)
                    self._backoff(delay)
                    continue
                if action == "fail":
                    report.failed = True
                    self._seal_outputs(stage)
                    self._halt.set()
                    return
                self._finish_degraded(stage, report)
                return
            if outcome is _EXHAUSTED or report.degraded:
                self._trace("stage.finish", stage=stage.name,
                            status="degraded")
                self._finish_degraded(stage, report)
            elif outcome == "done":
                self._trace("stage.finish", stage=stage.name,
                            status="completed")
                report.completed = True
                self._seal_outputs(stage)
            else:
                self._trace("stage.finish", stage=stage.name,
                            status="halted")
            return   # done, halted, or degraded

    def _interpret(self, stage, gen) -> Any:
        """Pump one generator until it ends ("done"), the run halts
        ("halted"), or its inputs are exhausted (``_EXHAUSTED``).
        Stage exceptions propagate to :meth:`_run_stage`."""
        send_value: Any = None
        # What the pending send_value answers ("wait" | "poll" | "lease"
        # | "recv" | None): a checkpoint taken while parked here must
        # know whether dropping it loses information.  Only a dequeued
        # channel update does — the checkpointer puts it back at the
        # head of the checkpointed queue; every other reply is
        # recomputed deterministically on resume.
        pending_kind: str | None = None
        report = self._reports[stage.name]
        while not self._halt.is_set():
            if not self._gate.is_set():
                # paused: park between commands (the preemption point);
                # the short timeout keeps the halt flag live
                self._park_status[stage.name] = (
                    "gate", pending_kind, send_value)
                self._gate.wait(timeout=_POLL_S)
                continue
            self._park_status.pop(stage.name, None)
            try:
                cmd = gen.send(send_value)
            except StopIteration:
                return "done"
            send_value = None
            pending_kind = None
            report.commands += 1
            if isinstance(cmd, Compute):
                # the work already ran inside the stage; charge its
                # declared cost so the timeline's energy column fills
                self._charge(cmd)
            elif isinstance(cmd, Write):
                final = cmd.final
                if final and isinstance(stage, SynchronousStage) \
                        and stage.channel.aborted:
                    # The update stream was cut short: the aggregate is
                    # an approximation, not the precise output.
                    final = False
                    report.degraded = True
                version = stage.output.write(cmd.value, final,
                                             writer=stage.name,
                                             transfer=cmd.transfer)
                watched = stage.output.name in self.watch
                now = self._now()
                self._record(WriteRecord(
                    now, stage.output.name, version, final,
                    self._energy_total(),
                    cmd.value if watched else None))
                if self._sink is not None and watched \
                        and self.trace_metric is not None:
                    self._trace("accuracy.sample", stage=stage.name,
                                target=stage.output.name, ts=now,
                                accuracy=float(self.trace_metric(
                                    cmd.value, self.trace_reference)),
                                version=version)
            elif isinstance(cmd, WaitInputs):
                send_value = self._wait_inputs(stage, cmd.seen)
                pending_kind = "wait"
                if send_value is None:          # halted while waiting
                    return "halted"
                if send_value is _EXHAUSTED:
                    gen.close()
                    return _EXHAUSTED
            elif isinstance(cmd, PollInputs):
                send_value = self._poll_inputs(stage, cmd.seen)
                pending_kind = "poll"
            elif isinstance(cmd, Emit):
                if not self._emit_update(stage, cmd.update):
                    # Halted before the update could be enqueued: stop
                    # here instead of silently dropping it and letting
                    # the generator run on to its next wait.
                    return "halted"
            elif isinstance(cmd, Lease):
                send_value = max(1, min(cmd.want, self.lease_k))
                pending_kind = "lease"
            elif isinstance(cmd, CloseChannel):
                stage.emit_to.close()
            elif isinstance(cmd, Recv):
                send_value = self._recv(stage)
                pending_kind = "recv"
                if send_value is None and self._halt.is_set():
                    return "halted"
            else:
                raise TypeError(
                    f"stage {stage.name!r} yielded unknown command "
                    f"{cmd!r}")
        return "halted"

    def _emit_update(self, stage, update) -> bool:
        """Halt-aware blocking emit; False = halted before enqueue.

        The caller must treat False as ``"halted"`` — the update was
        *not* delivered, so letting the generator keep running would
        silently desynchronize the stream.  :class:`ChannelClosed`
        propagates to the fault policy as before.
        """
        started: float | None = None
        try:
            while not self._halt.is_set():
                try:
                    stage.emit_to.emit(update, timeout=_POLL_S)
                    return True
                except TimeoutError:
                    if started is None:
                        started = self._now()
                    self._park_status[stage.name] = ("wait", "emit")
                    continue
            return False
        finally:
            self._park_status.pop(stage.name, None)
            if started is not None:
                self._trace_wait(stage.name, started, "emit")

    def _finish_degraded(self, stage, report: StageReport) -> None:
        report.degraded = True
        self._seal_outputs(stage)

    def _seal_outputs(self, stage) -> None:
        """Freeze everything the stage feeds, so consumers stop waiting.

        Sealing an already-final buffer is a harmless flag; aborting the
        emit channel releases a consumer blocked mid-stream."""
        stage.output.seal()
        if stage.emit_to is not None and not stage.emit_to.closed:
            stage.emit_to.abort()
        if isinstance(stage, SynchronousStage) \
                and not stage.channel.closed:
            # The consumer died: release a producer blocked on the full
            # channel (its next emit raises ChannelClosed and its own
            # policy takes over).
            stage.channel.abort()

    def _shutdown_io(self) -> None:
        """Freeze all buffers and channels after an interrupted run.

        A timeout or stop condition halts the stage threads, but
        anything *outside* the executor blocked on the graph — a UI
        thread in ``buffer.wait_newer``, a producer stuck emitting into
        a full, never-closed channel — would hang forever on objects no
        stage will touch again.  Sealing is idempotent and aborting is
        skipped for channels already closed, so a clean shutdown is
        unaffected.
        """
        for b in self.graph.buffers.values():
            b.seal()
        for c in self.graph.channels.values():
            if not c.closed:
                c.abort()

    def _backoff(self, delay: float) -> None:
        deadline = _time.monotonic() + delay
        while not self._halt.is_set():
            remaining = deadline - _time.monotonic()
            if remaining <= 0:
                return
            _time.sleep(min(remaining, _POLL_S))

    def _snapshots(self, stage):
        return {b.name: b.snapshot() for b in stage.inputs}

    def _poll_inputs(self, stage, seen) -> bool:
        snaps = self._snapshots(stage)
        if not snaps:
            return False
        if any(s.empty for s in snaps.values()):
            return False
        return any(s.version > seen.get(n, 0) for n, s in snaps.items())

    @staticmethod
    def _inputs_exhausted(snaps) -> bool:
        """The wait can never be satisfied: an input is empty and sealed
        (its producer died before publishing), or every input is frozen
        (final or sealed) so nothing newer will ever appear."""
        if any(s.empty and s.sealed for s in snaps.values()):
            return True
        return all(s.exhausted for s in snaps.values())

    def _wait_inputs(self, stage, seen):
        event = self._events[stage.name]
        started: float | None = None
        try:
            while not self._halt.is_set():
                event.clear()
                snaps = self._snapshots(stage)
                if not snaps:
                    return snaps
                if not any(s.empty for s in snaps.values()) and any(
                        s.version > seen.get(n, 0)
                        for n, s in snaps.items()):
                    return snaps
                if self._inputs_exhausted(snaps):
                    return _EXHAUSTED
                if started is None:
                    started = self._now()
                # A blocked wait is a quiesce point too: under pause the
                # producers are parked, so nothing can satisfy it.
                self._park_status[stage.name] = ("wait", "inputs")
                # The event is set by a write/seal to any input; the
                # short timeout keeps the halt flag live.
                event.wait(timeout=_POLL_S)
            return None
        finally:
            self._park_status.pop(stage.name, None)
            if started is not None:
                self._trace_wait(stage.name, started, "inputs")

    def _recv(self, stage):
        started: float | None = None
        try:
            while not self._halt.is_set():
                try:
                    return stage.channel.recv(timeout=_POLL_S)
                except TimeoutError:
                    if started is None:
                        started = self._now()
                    self._park_status[stage.name] = ("wait", "recv")
                    continue
                except ChannelClosed:
                    return CHANNEL_END
            return None
        finally:
            self._park_status.pop(stage.name, None)
            if started is not None:
                self._trace_wait(stage.name, started, "recv")

    # -- checkpoint (repro.ckpt) -----------------------------------------

    def _effects(self) -> tuple:
        """A counter of externally visible progress; stable across two
        polls (with every live stage parked) means the run is quiesced."""
        versions = sum(b.version for b in self.graph.buffers.values())
        chans = sum(c.emitted + c.received
                    for c in self.graph.channels.values())
        with self._lock:
            return (versions, chans, len(self._timeline.records),
                    self._energy)

    def _settle(self, timeout_s: float = 30.0) -> None:
        """Wait (with the gate down) until every live stage thread is
        parked at the gate or blocked in a wait, and nothing moved
        between two consecutive polls."""
        from ..ckpt.format import CheckpointError

        deadline = _time.monotonic() + timeout_s
        prev: tuple | None = None
        while _time.monotonic() < deadline:
            live = {n for n, t in self._stage_threads.items()
                    if t.is_alive()}
            state = (dict(self._park_status), self._effects())
            if live <= set(state[0]) and state == prev:
                return
            prev = state
            _time.sleep(_POLL_S)
        stuck = sorted(
            n for n, t in self._stage_threads.items()
            if t.is_alive() and n not in self._park_status)
        raise CheckpointError(
            f"run failed to quiesce within {timeout_s}s "
            f"(unparked stages: {stuck})")

    def _capture_stages(self) -> tuple[dict[str, dict], dict[str, list]]:
        """Per-stage checkpoint entries + channel requeue map.

        Must run quiesced.  A stage parked with an undelivered channel
        update in its send slot (dequeued by ``_recv``, never handed to
        the generator) gets that update put back at the head of the
        *checkpointed* queue — the live channel is untouched.
        """
        from ..ckpt.state import (STATUS_COMPLETED, STATUS_DEGRADED,
                                  STATUS_FAILED, STATUS_LIVE)

        stages: dict[str, dict] = {}
        requeue: dict[str, list] = {}
        for s in self.graph.stages:
            report = self._reports[s.name]
            cursor = None
            thread = self._stage_threads.get(s.name)
            if thread is not None and thread.is_alive():
                # still running — stays LIVE even when the degraded
                # flag is already set (final-after-abort); the flag
                # rides along in the restored report
                status = STATUS_LIVE
                park = self._park_status.get(s.name)
                if park is not None and park[0] == "gate" \
                        and park[1] == "recv" \
                        and isinstance(s, SynchronousStage):
                    update = park[2]
                    if update is not None \
                            and update is not CHANNEL_END:
                        requeue.setdefault(
                            s.channel.name, []).append(update)
                written = s.output.version
                emitted = (s.emit_to.emitted
                           if s.emit_to is not None else 0)
                cursor = s.capture_state(written, emitted)
            elif report.failed:
                status = STATUS_FAILED
            elif report.degraded:
                status = STATUS_DEGRADED
            else:
                status = STATUS_COMPLETED
            stages[s.name] = {"status": status, "cursor": cursor}
        return stages, requeue

    def _checkpoint(self, path: str) -> str:
        """Quiesce, capture, serialize; restores the pause state."""
        from ..ckpt.format import CheckpointError
        from ..ckpt.state import assemble_payload, save_checkpoint

        if self._threads is None:
            raise CheckpointError(
                "cannot checkpoint: the run was never launched")
        if self._stop_requested.is_set():
            raise CheckpointError(
                "cannot checkpoint a stopping run: shutdown seals "
                "every buffer (checkpoint before request_stop)")
        was_paused = self._is_paused()
        self._set_paused(True)
        try:
            self._settle()
            stages, requeue = self._capture_stages()
            with self._lock:
                records = list(self._timeline.records)
                energy = self._energy
            if self._resume is not None \
                    and self._resume.prefix.records:
                records = self._resume.prefix.records + records
            payload = assemble_payload(
                self.graph, name=self.run_name, executor="threaded",
                stages=stages, reports=self._reports, energy=energy,
                timeline=Timeline(records), duration=self._now(),
                stop=self.stop, channel_requeue=requeue)
            return save_checkpoint(path, payload,
                                   app_spec=self.app_spec)
        finally:
            if not was_paused:
                self._set_paused(False)

    # -- whole-run driver ------------------------------------------------

    def launch(self) -> RunHandle:
        """Start the stage threads without blocking; returns a handle.

        The run proceeds in the background; the caller pauses, resumes,
        stops and collects it through the :class:`RunHandle` — the
        schedulable-resource form of this executor.
        """
        if self._threads is not None:
            raise RuntimeError("executor already launched")
        self._t0 = _time.perf_counter()
        self._install_hooks()
        finished = (self._resume.finished if self._resume is not None
                    else {})
        # Stages that were already terminal at checkpoint time are not
        # relaunched: their buffers are final or sealed (a relaunch
        # would be rejected by the frozen-buffer rule) and their reports
        # carry the checkpointed outcome.
        self._stage_threads = {
            s.name: threading.Thread(target=self._run_stage, args=(s,),
                                     name=f"stage-{s.name}", daemon=True)
            for s in self.graph.stages if s.name not in finished}
        self._threads = list(self._stage_threads.values())
        for t in self._threads:
            t.start()
        return RunHandle(self)

    def _finalize(self) -> ThreadedResult:
        """Assemble the result after every stage thread has exited."""
        with self._final_lock:
            if self._final_result is None:
                ended = (self._ended_at if self._ended_at is not None
                         else _time.perf_counter())
                duration = ended - self._t0 + self._t_offset
                if self._stop_requested.is_set():
                    self._shutdown_io()
                completed = (all(r.completed
                                 for r in self._reports.values())
                             and not self._stop_requested.is_set())
                final_values = {b.name: b.snapshot().value
                                for b in self.graph.buffers.values()}
                timeline = self._timeline
                if self._resume is not None \
                        and self._resume.prefix.records:
                    # the resumed result's ladder spans the whole
                    # logical run, checkpoint prefix included
                    timeline = Timeline(self._resume.prefix.records
                                        + self._timeline.records)
                self._final_result = ThreadedResult(
                    timeline=timeline, duration=duration,
                    completed=completed,
                    stopped_early=self._stop_requested.is_set(),
                    final_values=final_values,
                    errors=list(self._errors),
                    stage_reports=dict(self._reports))
            if self.strict:
                unrecovered = [
                    (n, r) for n, r in self._reports.items()
                    if r.last_error is not None and not r.completed]
                if unrecovered:
                    name, _ = unrecovered[0]
                    first = next(exc for sname, exc in self._errors
                                 if sname == name)
                    raise RuntimeError(
                        f"stage {name!r} failed during threaded "
                        f"execution: {first}") from first
            return self._final_result

    def run(self, timeout_s: float | None = None) -> ThreadedResult:
        """Execute until completion, stop condition, or ``timeout_s``."""
        return self.launch().result(timeout_s=timeout_s)
