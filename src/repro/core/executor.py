"""Real-machine threaded execution of anytime automata.

One thread per stage, interpreting the same command protocol as the
simulated executor, but against wall-clock time: :class:`Compute` is a
no-op (the actual NumPy work happens inside the stage generator between
yields), waits block on buffer condition variables, and channels use their
built-in blocking operations.

This executor exists for what simulation cannot give — genuine
interactive interruption on a live machine (stop the automaton the moment
the on-screen output looks right).  Its runtime-accuracy numbers carry the
usual wall-clock caveats (CPython's GIL serializes pure-Python sections;
NumPy kernels release it), which is why the benchmarks use the
deterministic simulator and the examples use this.
"""

from __future__ import annotations

import threading
import time as _time
from dataclasses import dataclass, field
from typing import Any

from .channel import ChannelClosed
from .controller import StopCondition
from .graph import AutomatonGraph
from .recording import Timeline, WriteRecord
from .stage import (CHANNEL_END, CloseChannel, Compute, Emit, PollInputs,
                    Recv, WaitInputs, Write)
from .syncstage import SynchronousStage

__all__ = ["ThreadedExecutor", "ThreadedResult"]

_POLL_S = 0.005


@dataclass
class ThreadedResult:
    """Outcome of one threaded run (times are wall seconds from start)."""

    timeline: Timeline
    duration: float
    completed: bool
    stopped_early: bool
    final_values: dict[str, Any] = field(default_factory=dict)
    errors: list[tuple[str, BaseException]] = field(default_factory=list)

    def output_records(self, buffer: str) -> list[WriteRecord]:
        return self.timeline.for_buffer(buffer)


class ThreadedExecutor:
    """Runs an :class:`AutomatonGraph` on real threads.

    Parameters mirror the simulated executor where meaningful; there is
    no core-share scheduling — the OS scheduler decides.
    """

    def __init__(self, graph: AutomatonGraph,
                 stop: StopCondition | None = None,
                 watch: set[str] | None = None) -> None:
        self.graph = graph
        self.stop = stop
        if watch is None:
            terminals = graph.terminal_stages()
            watch = {t.output.name for t in terminals}
        self.watch = set(watch)
        self._halt = threading.Event()
        self._lock = threading.Lock()
        self._timeline = Timeline()
        self._errors: list[tuple[str, BaseException]] = []
        self._t0 = 0.0

    def request_stop(self) -> None:
        """Interrupt the automaton (thread-safe, idempotent)."""
        self._halt.set()

    def _record(self, record: WriteRecord) -> None:
        with self._lock:
            self._timeline.add(record)
        if record.buffer in self.watch and self.stop is not None \
                and self.stop.should_stop(record):
            self._halt.set()

    def _run_stage(self, stage) -> None:
        gen = stage.body()
        send_value: Any = None
        try:
            while not self._halt.is_set():
                try:
                    cmd = gen.send(send_value)
                except StopIteration:
                    return
                send_value = None
                if isinstance(cmd, Compute):
                    continue    # the work already ran inside the stage
                elif isinstance(cmd, Write):
                    version = stage.output.write(cmd.value, cmd.final,
                                                 writer=stage.name)
                    watched = stage.output.name in self.watch
                    self._record(WriteRecord(
                        _time.perf_counter() - self._t0,
                        stage.output.name, version, cmd.final, 0.0,
                        cmd.value if watched else None))
                elif isinstance(cmd, WaitInputs):
                    send_value = self._wait_inputs(stage, cmd.seen)
                    if send_value is None:      # halted while waiting
                        return
                elif isinstance(cmd, PollInputs):
                    send_value = self._poll_inputs(stage, cmd.seen)
                elif isinstance(cmd, Emit):
                    while not self._halt.is_set():
                        try:
                            stage.emit_to.emit(cmd.update,
                                               timeout=_POLL_S)
                            break
                        except TimeoutError:
                            continue
                elif isinstance(cmd, CloseChannel):
                    stage.emit_to.close()
                elif isinstance(cmd, Recv):
                    send_value = self._recv(stage)
                    if send_value is None and self._halt.is_set():
                        return
                else:
                    raise TypeError(
                        f"stage {stage.name!r} yielded unknown command "
                        f"{cmd!r}")
        except BaseException as exc:   # noqa: BLE001 - reported to caller
            with self._lock:
                self._errors.append((stage.name, exc))
            self._halt.set()

    def _snapshots(self, stage):
        return {b.name: b.snapshot() for b in stage.inputs}

    def _poll_inputs(self, stage, seen) -> bool:
        snaps = self._snapshots(stage)
        if not snaps:
            return False
        if any(s.empty for s in snaps.values()):
            return False
        return any(s.version > seen.get(n, 0) for n, s in snaps.items())

    def _wait_inputs(self, stage, seen):
        while not self._halt.is_set():
            snaps = self._snapshots(stage)
            if not snaps:
                return snaps
            if not any(s.empty for s in snaps.values()) and any(
                    s.version > seen.get(n, 0)
                    for n, s in snaps.items()):
                return snaps
            # Block on any one input; timeout keeps the halt flag live.
            stage.inputs[0].wait_newer(
                seen.get(stage.inputs[0].name, 0), timeout=_POLL_S)
        return None

    def _recv(self, stage):
        while not self._halt.is_set():
            try:
                return stage.channel.recv(timeout=_POLL_S)
            except TimeoutError:
                continue
            except ChannelClosed:
                return CHANNEL_END
        return None

    def run(self, timeout_s: float | None = None) -> ThreadedResult:
        """Execute until completion, stop condition, or ``timeout_s``."""
        self._t0 = _time.perf_counter()
        threads = [threading.Thread(target=self._run_stage, args=(s,),
                                    name=f"stage-{s.name}", daemon=True)
                   for s in self.graph.stages]
        for t in threads:
            t.start()
        deadline = (None if timeout_s is None
                    else self._t0 + timeout_s)
        for t in threads:
            while t.is_alive():
                t.join(timeout=_POLL_S)
                if deadline is not None \
                        and _time.perf_counter() > deadline:
                    self._halt.set()
        duration = _time.perf_counter() - self._t0
        completed = not self._halt.is_set() and not self._errors
        final_values = {b.name: b.snapshot().value
                        for b in self.graph.buffers.values()}
        if self._errors:
            name, exc = self._errors[0]
            raise RuntimeError(
                f"stage {name!r} failed during threaded execution"
            ) from exc
        return ThreadedResult(
            timeline=self._timeline, duration=duration,
            completed=completed,
            stopped_early=self._halt.is_set(),
            final_values=final_values, errors=list(self._errors))
