"""Generalized processor sharing for the simulated executor.

Paper Section IV-C2: "it may be beneficial to reassign threads among
stages dynamically.  However, this can be difficult since stages are not
necessarily synchronized. ... This motivates the design of architectures
with fine-grained, intelligent thread migration/scheduling; this is left
for future work."

:class:`ProcessorPool` implements that future-work scheduler as
generalized processor sharing: at any instant the machine's cores are
divided among the *currently computing* stages in proportion to their
weights; a stage that blocks (waiting for input) or finishes donates its
cores to the rest.  The pool is exact and event-driven: remaining work is
advanced lazily at membership changes, and the next completion time is
derived from current speeds, so the simulation stays deterministic.
"""

from __future__ import annotations

__all__ = ["ProcessorPool"]

_EPS = 1e-12


class ProcessorPool:
    """Work-conserving weighted processor sharing.

    Parameters
    ----------
    total_cores:
        The machine width being shared.
    weights:
        Relative weight per stage name (e.g. the static policy's
        shares); an active stage's speed is
        ``total_cores * w / sum(w of active stages)``.
    """

    def __init__(self, total_cores: float,
                 weights: dict[str, float]) -> None:
        if total_cores <= 0:
            raise ValueError(
                f"total_cores must be positive: {total_cores}")
        for name, w in weights.items():
            if w <= 0:
                raise ValueError(
                    f"weight for {name!r} must be positive: {w}")
        self.total_cores = float(total_cores)
        self.weights = dict(weights)
        self._remaining: dict[str, float] = {}
        self._last_update = 0.0

    # -- bookkeeping ------------------------------------------------------

    @property
    def active(self) -> list[str]:
        return sorted(self._remaining)

    def _speed(self, name: str) -> float:
        total_weight = sum(self.weights[n] for n in self._remaining)
        return self.total_cores * self.weights[name] / total_weight

    def _advance_to(self, now: float) -> None:
        """Charge elapsed time against every active stage's work."""
        dt = now - self._last_update
        if dt < -_EPS:
            raise ValueError(
                f"time went backwards: {self._last_update} -> {now}")
        if dt > 0 and self._remaining:
            for name in self._remaining:
                self._remaining[name] = max(
                    0.0, self._remaining[name] - dt * self._speed(name))
        self._last_update = max(self._last_update, now)

    # -- interface --------------------------------------------------------

    def start(self, name: str, work: float, now: float) -> None:
        """Begin a compute of ``work`` units for stage ``name``."""
        if name not in self.weights:
            raise KeyError(f"unknown stage {name!r}")
        if name in self._remaining:
            raise ValueError(f"stage {name!r} is already computing")
        if work < 0:
            raise ValueError(f"work cannot be negative: {work}")
        self._advance_to(now)
        self._remaining[name] = float(work)

    def next_completion(self) -> tuple[float, str] | None:
        """(absolute time, stage) of the earliest completion, or None.

        Ties break by stage name for determinism.
        """
        if not self._remaining:
            return None
        best: tuple[float, str] | None = None
        for name in sorted(self._remaining):
            eta = self._last_update + (self._remaining[name]
                                       / self._speed(name))
            if best is None or eta < best[0] - _EPS:
                best = (eta, name)
        return best

    def complete(self, name: str, now: float) -> None:
        """Remove a finished stage (its completion event fired)."""
        self._advance_to(now)
        remaining = self._remaining.pop(name)
        if remaining > 1e-6:
            raise ValueError(
                f"stage {name!r} completed with {remaining} work left")
