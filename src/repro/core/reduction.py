"""Input-sampled reduction stages (paper Section III-B2, "Input Sampling").

A reduction accumulates input elements into its output with a commutative
operator: ``f_i(I, O_{i-1}) = O_{i-1} Δ x_{p(i)}(I)``.  Processing the
inputs in a bijective permuted order makes the stage diffusive: every
sample contributes usefully, and any prefix is a valid (possibly weighted)
approximation of the final reduction.

For non-idempotent operators (e.g. addition in a histogram or sum), the
published output is the weighted view ``O'_i = O_i * n / i`` so dependent
stages see an unbiased estimate of the final magnitude; the final version
is exact because ``i = n``.
"""

from __future__ import annotations

from typing import Any, Callable, Sequence

import numpy as np

from ..anytime.operators import Operator, get_operator
from ..anytime.permutations import LfsrPermutation, Permutation
from .buffer import VersionedBuffer
from .channel import UpdateChannel
from .diffusive import DiffusiveStage

__all__ = ["ReductionStage"]


class ReductionStage(DiffusiveStage):
    """A diffusive commutative reduction over sampled input elements.

    Parameters
    ----------
    chunk_fn:
        ``chunk_fn(flat_indices, *input_values) -> partial`` — computes
        the combined contribution ``x_{p(i)} Δ ... Δ x_{p(j)}`` of one
        chunk of input samples (e.g. ``np.bincount`` over the sampled
        pixels for a histogram).  Must be pure (Property 1).
    operator:
        A registered operator name or an :class:`Operator`; supplies the
        combine function, the identity ``O_0`` and the weighting rule.
    out_shape / dtype:
        Shape and dtype of the accumulator.
    weighted_output:
        When True (default) and the operator is not idempotent, published
        versions are weighted by ``n / count``.
    """

    def __init__(self, name: str, output: VersionedBuffer,
                 inputs: tuple[VersionedBuffer, ...],
                 chunk_fn: Callable[..., Any],
                 shape: int | Sequence[int],
                 out_shape: Sequence[int] = (),
                 dtype: np.dtype | type = np.float64,
                 operator: Operator | str = "add",
                 permutation: Permutation | None = None,
                 weighted_output: bool = True,
                 chunks: int = 32,
                 cost_per_element: float = 1.0,
                 prefetcher: bool = False,
                 reorder: bool = False,
                 chunk_schedule: str = "uniform",
                 emit_to: UpdateChannel | None = None,
                 restart_policy: str = "complete") -> None:
        permutation = permutation or LfsrPermutation()
        super().__init__(name, output, inputs, shape, permutation,
                         chunks=chunks, cost_per_element=cost_per_element,
                         prefetcher=prefetcher, reorder=reorder,
                         chunk_schedule=chunk_schedule,
                         emit_to=emit_to, restart_policy=restart_policy)
        self.chunk_fn = chunk_fn
        self.operator = (get_operator(operator)
                         if isinstance(operator, str) else operator)
        self.out_shape = tuple(out_shape)
        self.dtype = np.dtype(dtype)
        self.weighted_output = weighted_output
        # materialize() copies the accumulator before (optionally)
        # weighting it, so every published value is fresh and writes
        # can transfer ownership (no defensive copy in the buffer).
        self.fresh_materialize = True

    def init_state(self, values: tuple[Any, ...]) -> dict[str, Any]:
        return {"acc": self.operator.identity(self.out_shape, self.dtype)}

    def process_chunk(self, state: dict[str, Any], indices: np.ndarray,
                      values: tuple[Any, ...]) -> Any:
        partial = self.chunk_fn(indices, *values)
        state["acc"] = self.operator.combine(state["acc"], partial)
        return (indices, partial)

    def materialize(self, state: dict[str, Any], count: int,
                    values: tuple[Any, ...]) -> Any:
        acc = state["acc"]
        if isinstance(acc, np.ndarray):
            acc = acc.copy()
        if self.weighted_output and not self.operator.idempotent:
            return self.operator.weighted(acc, count, self.n_elements)
        return acc

    def precise(self, input_values: dict[str, Any]) -> Any:
        values = tuple(input_values[b.name] for b in self.inputs)
        all_indices = np.arange(self.n_elements, dtype=np.int64)
        partial = self.chunk_fn(all_indices, *values)
        acc = self.operator.combine(
            self.operator.identity(self.out_shape, self.dtype), partial)
        if self.weighted_output and not self.operator.idempotent:
            return self.operator.weighted(acc, self.n_elements,
                                          self.n_elements)
        return acc
