"""Stop conditions — the "anytime" in the automaton.

"The decision of stopping can either be automated via dynamic accuracy
metrics, user-specified or enforced by time/energy constraints."  A
:class:`StopCondition` is consulted by the executor after every terminal-
buffer write; the first satisfied condition halts the run.  The output
buffer keeps its newest version, which is by construction a valid
approximation — interruption never needs cleanup.
"""

from __future__ import annotations

import threading
from typing import Any, Callable

from .recording import WriteRecord

__all__ = ["StopCondition", "ManualStop", "DeadlineStop", "EnergyBudget",
           "AccuracyTarget", "VersionCountStop", "FailureBudget", "AnyOf"]


class StopCondition:
    """Decides whether execution should halt after an output write."""

    def should_stop(self, record: WriteRecord) -> bool:
        """Called on each terminal write; True halts the automaton."""
        raise NotImplementedError

    def on_failure(self, stage_name: str, exc: BaseException) -> bool:
        """Consulted by the executors on each failed stage attempt
        (before the stage's fault policy applies); True halts the
        automaton.  The default ignores failures."""
        return False

    def __or__(self, other: "StopCondition") -> "AnyOf":
        return AnyOf(self, other)


class ManualStop(StopCondition):
    """User-driven interruption (the "hold the enter key" scenario).

    Thread-safe: :meth:`stop` may be called from any thread — e.g. a UI
    thread watching the output while the threaded executor runs.
    """

    def __init__(self) -> None:
        self._event = threading.Event()

    def stop(self) -> None:
        self._event.set()

    @property
    def stopped(self) -> bool:
        return self._event.is_set()

    def should_stop(self, record: WriteRecord) -> bool:
        return self._event.is_set()


class DeadlineStop(StopCondition):
    """Halt at a time budget (virtual work units or wall seconds)."""

    def __init__(self, deadline: float) -> None:
        if deadline < 0:
            raise ValueError(f"deadline cannot be negative: {deadline}")
        self.deadline = deadline

    def should_stop(self, record: WriteRecord) -> bool:
        return record.time >= self.deadline


class EnergyBudget(StopCondition):
    """Halt when cumulative energy reaches the budget."""

    def __init__(self, budget: float) -> None:
        if budget < 0:
            raise ValueError(f"budget cannot be negative: {budget}")
        self.budget = budget

    def should_stop(self, record: WriteRecord) -> bool:
        return record.energy >= self.budget


class AccuracyTarget(StopCondition):
    """Halt once the output is acceptable by a user-supplied metric.

    This is the dynamic-error-control integration the paper describes:
    the metric sees the *whole application output* (the terminal write's
    value), not per-segment accuracies.
    """

    def __init__(self, metric: Callable[[Any], float],
                 target: float) -> None:
        self.metric = metric
        self.target = target
        self.last_score: float | None = None

    def should_stop(self, record: WriteRecord) -> bool:
        if record.value is None:
            raise ValueError(
                "AccuracyTarget needs a watched terminal buffer "
                "(record carries no value)")
        self.last_score = float(self.metric(record.value))
        return self.last_score >= self.target


class VersionCountStop(StopCondition):
    """Halt after N terminal output versions (testing/debug aid)."""

    def __init__(self, count: int) -> None:
        if count < 1:
            raise ValueError(f"count must be >= 1, got {count}")
        self.count = count
        self._seen = 0

    def should_stop(self, record: WriteRecord) -> bool:
        self._seen += 1
        return self._seen >= self.count


class FailureBudget(StopCondition):
    """Halt once cumulative stage failures reach a budget.

    A production guard-rail for fault-tolerant runs: retries and
    degradation absorb occasional flakiness, but a pipeline failing
    over and over is better stopped with whatever approximation the
    output buffer holds.  Thread-safe (the threaded executor reports
    failures from stage threads).
    """

    def __init__(self, max_failures: int) -> None:
        if max_failures < 1:
            raise ValueError(
                f"max_failures must be >= 1, got {max_failures}")
        self.max_failures = max_failures
        self._lock = threading.Lock()
        self._seen = 0

    @property
    def failures(self) -> int:
        with self._lock:
            return self._seen

    def should_stop(self, record: WriteRecord) -> bool:
        return False

    def on_failure(self, stage_name: str, exc: BaseException) -> bool:
        with self._lock:
            self._seen += 1
            return self._seen >= self.max_failures


class AnyOf(StopCondition):
    """Stop when any of the composed conditions fires."""

    def __init__(self, *conditions: StopCondition) -> None:
        if not conditions:
            raise ValueError("AnyOf needs at least one condition")
        self.conditions = conditions

    def should_stop(self, record: WriteRecord) -> bool:
        return any(c.should_stop(record) for c in self.conditions)

    def on_failure(self, stage_name: str, exc: BaseException) -> bool:
        return any(c.on_failure(stage_name, exc)
                   for c in self.conditions)
