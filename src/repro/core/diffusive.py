"""Diffusive anytime stages (paper Section III-B2).

A diffusive stage never throws work away: each intermediate computation
``f_i(I, O_{i-1})`` *builds on* the output state left by its predecessor,
so accuracy is diffused into the output buffer through useful updates
rather than rewrites.  The stage walks its element space in the order
given by a bijective sampling permutation, in chunks; after each chunk it
publishes a fresh output version derived from its internal state.

:class:`DiffusiveStage` is the chunking engine; concrete kernels
(:class:`~repro.core.mapstage.MapStage` for output sampling,
:class:`~repro.core.reduction.ReductionStage` for input sampling) plug in
three operations: initialize state, process a chunk of permuted indices,
and materialize the publishable output from state.

When the stage is the parent of a synchronous pipeline, each chunk's
update is also streamed into the attached channel, and the channel is
closed after the last chunk (paper Section III-C2).
"""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np

from ..anytime.permutations import Permutation
from .buffer import Snapshot, VersionedBuffer
from .channel import UpdateChannel
from .stage import (Body, CloseChannel, Compute, Emit, Lease, Stage,
                    Write, access_penalty)

__all__ = ["DiffusiveStage", "chunk_boundaries"]


def chunk_boundaries(n: int, chunks: int,
                     schedule: str = "uniform",
                     growth: float = 2.0) -> list[tuple[int, int]]:
    """Split ``range(n)`` into ``chunks`` [start, stop) spans.

    ``schedule="uniform"`` gives near-equal spans.  ``"geometric"``
    makes each span ``growth`` times the previous one: the first output
    version appears much earlier (paper IV-C2's output-granularity
    tradeoff — early availability vs. update frequency) while the total
    version count stays the same.
    """
    if n < 0:
        raise ValueError(f"n cannot be negative: {n}")
    if chunks < 1:
        raise ValueError(f"chunks must be >= 1, got {chunks}")
    chunks = min(chunks, n) or 1
    if schedule == "uniform":
        edges = np.linspace(0, n, chunks + 1).astype(np.int64)
    elif schedule == "geometric":
        if growth <= 1.0:
            raise ValueError(f"growth must be > 1, got {growth}")
        weights = growth ** np.arange(chunks, dtype=np.float64)
        cuts = np.concatenate(([0.0], np.cumsum(weights)))
        edges = np.round(cuts / cuts[-1] * n).astype(np.int64)
        # guarantee every span is non-empty where possible
        for i in range(1, chunks + 1):
            edges[i] = max(edges[i], edges[i - 1] + 1)
        edges = np.minimum(edges, n)
        edges[-1] = n
    else:
        raise ValueError(f"unknown chunk schedule {schedule!r}")
    return [(int(a), int(b)) for a, b in zip(edges[:-1], edges[1:])
            if b > a]


class DiffusiveStage(Stage):
    """Chunked diffusion over a permuted element space.

    Parameters
    ----------
    shape:
        Shape of the sampled element space (what the permutation indexes);
        an int for flat spaces.
    permutation:
        The sampling permutation (must be bijective; paper III-B2).
    chunks:
        Number of intermediate output versions per pass — the output
        granularity knob of paper Section IV-C2.
    chunk_schedule:
        ``"uniform"`` (default) or ``"geometric"``: geometric spans
        grow by 2x each, trading update regularity for a much earlier
        first output.
    cost_per_element:
        Work units to process one element (before the access penalty).
    prefetcher:
        Whether a permutation-aware prefetcher is assumed (reduces the
        non-sequential access penalty; paper IV-C3).
    reorder:
        Whether a near-data engine lays the data out in permutation
        order before each pass (paper IV-C3's in-memory reordering):
        the access penalty drops to 1.0 and one streaming reorder pass
        is charged at the start of each pass.

    Subclasses implement :meth:`init_state`, :meth:`process_chunk`,
    :meth:`materialize` and :meth:`precise`.
    """

    def __init__(self, name: str, output: VersionedBuffer,
                 inputs: tuple[VersionedBuffer, ...],
                 shape: int | Sequence[int],
                 permutation: Permutation,
                 chunks: int = 32,
                 cost_per_element: float = 1.0,
                 prefetcher: bool = False,
                 reorder: bool = False,
                 reorder_engine: "ReorderEngine | None" = None,
                 chunk_schedule: str = "uniform",
                 emit_to: UpdateChannel | None = None,
                 restart_policy: str = "complete") -> None:
        from ..hw.reorder import ReorderEngine

        super().__init__(name, output, inputs, emit_to=emit_to,
                         restart_policy=restart_policy)
        if prefetcher and reorder:
            raise ValueError(
                f"stage {name!r}: choose one locality mitigation "
                f"(prefetcher or reorder)")
        self.reorder = reorder
        self.reorder_engine = reorder_engine or ReorderEngine()
        if chunk_schedule not in ("uniform", "geometric"):
            raise ValueError(
                f"unknown chunk schedule {chunk_schedule!r}")
        self.chunk_schedule = chunk_schedule
        self.shape = ((int(shape),) if isinstance(shape, (int, np.integer))
                      else tuple(int(s) for s in shape))
        self.permutation = permutation
        self.chunks = int(chunks)
        self.cost_per_element = float(cost_per_element)
        self.prefetcher = prefetcher
        self._order: np.ndarray | None = None
        #: whether state survives across passes (new input versions).
        #: Elementwise kernels keep it — stale elements computed from the
        #: previous input version remain valid approximations, so a
        #: restarted pass never regresses below the last published
        #: accuracy.  Accumulator kernels must reset (they would
        #: double-count).  Subclasses set this.
        self.persistent_state = False
        #: whether :meth:`materialize` returns a *freshly allocated*
        #: value every call (never an alias of internal state or an
        #: input).  Kernels that guarantee this opt in, and each Write
        #: becomes an ownership transfer: the buffer freezes the array
        #: in place instead of copying it defensively, so publishing a
        #: version costs O(1) array allocations.  Subclasses set this.
        self.fresh_materialize = False
        #: whether the kernel can compute several chunks' elements in a
        #: single vectorized pass (see :meth:`batch_chunks`).  When set,
        #: the stage asks the executor for a :class:`Lease` and fuses up
        #: to the granted number of levels into one numpy call — while
        #: still yielding the identical per-level command sequence, so
        #: the published versions are bit-identical at any lease size.
        #: Subclasses with a pure, slice-decomposable kernel opt in.
        self.supports_batch = False
        self._state: Any = None
        self._completed_passes = 0
        #: chunks folded into ``_state`` this pass (pre-Write cursor;
        #: see :meth:`capture_state`) and the last chunk's update, kept
        #: for replay when a checkpoint lands between fold and emit
        self._folded = 0
        self._pending_update: Any = None
        #: contract-mode trim (see :mod:`repro.core.contract`): when
        #: set, each pass processes only the first ``element_limit``
        #: elements of the permutation.  The stage then computes a
        #: *different (approximate) function* — its last output is
        #: marked final but is no longer the precise reduction/map.
        self.element_limit: int | None = None

    # -- kernel interface ----------------------------------------------

    def init_state(self, values: tuple[Any, ...]) -> Any:
        """Create the per-pass mutable state (``O_0`` plus bookkeeping)."""
        raise NotImplementedError

    def process_chunk(self, state: Any, indices: np.ndarray,
                      values: tuple[Any, ...]) -> Any:
        """Fold one chunk of permuted flat indices into ``state``.

        Returns the update object streamed to a synchronous child (ignored
        when no channel is attached); return None when the update is not
        meaningful.
        """
        raise NotImplementedError

    def materialize(self, state: Any, count: int,
                    values: tuple[Any, ...]) -> Any:
        """Publishable output after ``count`` of ``n`` elements."""
        raise NotImplementedError

    def batch_chunks(self, state: Any, indices: np.ndarray,
                     values: tuple[Any, ...]) -> Any:
        """Vectorized pre-computation over several chunks at once.

        ``indices`` is the concatenation of the next k chunks' permuted
        flat indices.  Must be **pure**: no mutation of ``state`` — the
        per-level state evolution happens chunk by chunk in
        :meth:`apply_chunk`, which is what keeps each published version
        bit-identical to the unbatched execution.
        """
        raise NotImplementedError

    def apply_chunk(self, state: Any, indices: np.ndarray, batch: Any,
                    offset: int, values: tuple[Any, ...]) -> Any:
        """Fold one chunk's slice of a :meth:`batch_chunks` result into
        ``state``.

        ``batch[offset:offset + len(indices)]`` (along the element axis)
        is this chunk's share.  Same return contract as
        :meth:`process_chunk`.
        """
        raise NotImplementedError

    # -- machinery -------------------------------------------------------

    @property
    def n_elements(self) -> int:
        n = 1
        for s in self.shape:
            n *= s
        return n

    @property
    def order(self) -> np.ndarray:
        """The materialized visit order (cached).

        Validated to be a bijection on first materialization: a
        non-bijective permutation would silently break the model's
        central guarantee (every element processed exactly once, so the
        final output is precise; paper III-B2).
        """
        if self._order is None:
            from ..anytime.permutations import is_permutation

            order = self.permutation.order(
                self.shape if len(self.shape) > 1 else self.n_elements)
            if not is_permutation(np.asarray(order), self.n_elements):
                raise ValueError(
                    f"stage {self.name!r}: permutation "
                    f"{self.permutation!r} is not a bijection on "
                    f"[0, {self.n_elements}) — the precise output "
                    f"would be unreachable")
            self._order = order
        return self._order

    @property
    def penalty(self) -> float:
        if self.reorder:
            # the data is physically in sampling order: sequential access
            return access_penalty("sequential")
        return access_penalty(self.permutation.name, self.prefetcher)

    def chunk_cost(self, size: int) -> float:
        return size * self.cost_per_element * self.penalty

    def run_once(self, snaps: dict[str, Snapshot],
                 inputs_final: bool) -> Body:
        values = self.input_values(snaps)
        order = self.order
        if self.element_limit is not None:
            order = order[:self.element_limit]
        resume, self._resume_pass = self._resume_pass, None
        if resume is not None:
            # mid-pass restore: the dense state was reinstated by
            # restore_state; _folded says how many chunks it embodies
            state = self._state
        elif self.persistent_state and self._state is not None:
            state = self._state
            self._folded = 0
        else:
            state = self.init_state(values)
            self._folded = 0
        self._state = state
        if self.reorder and not (resume is not None and self._folded):
            yield Compute(
                self.reorder_engine.reorder_cost(len(order)),
                label=f"{self.name}:reorder")
        spans = chunk_boundaries(len(order), self.chunks,
                                 schedule=self.chunk_schedule)
        # Batched multi-level execution is only legal when the command
        # stream cannot depend on executor replies between the fused
        # levels: no synchronous update stream and no preemption polls.
        batchable = (self.supports_batch and self.emit_to is None
                     and self.restart_policy != "preempt")
        ci = 0
        if resume is not None:
            # Tail repair: the checkpoint may have caught the pass with
            # a chunk folded into state whose emit/write effects had
            # not yet landed (executor-authoritative counts say which).
            # Replay exactly the missing suffix, then continue with
            # fresh leases — legal because the lease safety rule makes
            # the published ladder identical at any lease size.
            ci = self._folded
            if ci > 0:
                if self.emit_to is not None \
                        and resume.get("emitted", ci) < ci:
                    yield Emit(self._pending_update)
                if resume.get("written", ci) < ci:
                    last = ci - 1 == len(spans) - 1
                    yield Write(
                        self.materialize(state, spans[ci - 1][1], values),
                        final=inputs_final and last,
                        transfer=self.fresh_materialize)
        while ci < len(spans):
            remaining = len(spans) - ci
            granted = 1
            if batchable and remaining > 1:
                granted = yield Lease(remaining)
                granted = max(1, min(int(granted), remaining))
            batch = None
            base = 0
            if granted > 1:
                base = spans[ci][0]
                fused = order[base:spans[ci + granted - 1][1]]
                batch = self.batch_chunks(state, fused, values)
            for start, stop in spans[ci:ci + granted]:
                indices = order[start:stop]
                yield Compute(self.chunk_cost(stop - start),
                              label=f"{self.name}:chunk{ci}")
                if batch is not None:
                    update = self.apply_chunk(state, indices, batch,
                                              start - base, values)
                else:
                    update = self.process_chunk(state, indices, values)
                self._folded = ci + 1
                self._pending_update = update
                if self.emit_to is not None:
                    yield Emit(update)
                last = ci == len(spans) - 1
                yield Write(self.materialize(state, stop, values),
                            final=inputs_final and last,
                            transfer=self.fresh_materialize)
                ci += 1
                if not last and (yield from self.preempted()):
                    # a preempted pass never closes the channel; only
                    # source stages may emit, and sources are never
                    # preempted
                    return
        self._completed_passes += 1
        if self.emit_to is not None:
            yield CloseChannel()   # idempotent, so replay-safe

    # -- checkpoint / restore ------------------------------------------

    def _spans_per_pass(self) -> int:
        n = self.n_elements
        if self.element_limit is not None:
            n = min(n, self.element_limit)
        return len(chunk_boundaries(n, self.chunks,
                                    schedule=self.chunk_schedule))

    def _capture_pass(self, written_total: int,
                      emitted_total: int) -> dict[str, Any]:
        cursor: dict[str, Any] = {
            "folded": self._folded,
            "written": written_total - self._passes
            * self._spans_per_pass(),
        }
        if self.emit_to is not None:
            cursor["emitted"] = emitted_total
            cursor["pending_update"] = self._pending_update
        return cursor

    def capture_state(self, written_total: int,
                      emitted_total: int = 0) -> dict[str, Any]:
        cursor = super().capture_state(written_total, emitted_total)
        # dense state matters between passes too (persistent kernels)
        cursor["state"] = self._state
        return cursor

    def restore_state(self, cursor: dict[str, Any]) -> None:
        super().restore_state(cursor)
        self._state = cursor.get("state")
        self._completed_passes = int(cursor.get("passes", 0))
        pass_cursor = cursor.get("pass") or {}
        self._folded = int(pass_cursor.get("folded", 0))
        self._pending_update = pass_cursor.get("pending_update")

    @property
    def precise_cost(self) -> float:
        """Precise baseline cost: one sequential pass, no penalty."""
        return self.n_elements * self.cost_per_element

    @property
    def anytime_pass_cost(self) -> float:
        """Cost of one full anytime pass (with access penalty)."""
        return self.n_elements * self.cost_per_element * self.penalty
