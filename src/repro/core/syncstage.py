"""Distributive consumers for synchronous pipelines (paper III-C2).

When child ``g`` is distributive over the updates of a diffusive parent
``f`` — ``g(F_0 ◊ X_1 ◊ ... ◊ X_n) = g(F_0) ◊ g(X_1) ◊ ... ◊ g(X_n)`` —
recomputing ``g`` on every whole version ``F_i`` repeats work on the
parts of ``F`` already processed.  A synchronous pipeline streams the
updates ``X_i`` instead; the child applies ``g`` to each update once and
folds the result into its accumulated output:

    g_S(X, G_{i-1}) = G_{i-1} ◊ g(X_i)

All updates are necessary for the precise output, so the channel
guarantees none is dropped (unlike buffer versions, which may be skipped).
"""

from __future__ import annotations

from typing import Any, Callable

from .buffer import VersionedBuffer
from .channel import UpdateChannel
from .stage import (CHANNEL_END, Body, Compute, Recv, Stage, Write)

__all__ = ["SynchronousStage"]


class SynchronousStage(Stage):
    """A stage consuming a diffusive parent's update stream.

    Parameters
    ----------
    channel:
        The :class:`UpdateChannel` the parent streams into.
    initial_fn:
        ``() -> G_0`` — the child's output for the parent's initial state
        ``F_0`` (usually zeros).
    update_fn:
        ``update_fn(accumulator, update) -> accumulator`` — applies
        ``g`` to one update and folds it in (``G_{i-1} ◊ g(X_i)``).
        Must be pure in the Property-1 sense: it may build a new
        accumulator from the old one but must not touch other state.
    update_cost:
        ``update_cost(update) -> float`` work units for one update.
    precise_fn:
        ``precise_fn(parent_precise_output) -> G`` — direct baseline
        computation, used for validation and the cost model.
    precise_cost:
        Work units of the direct baseline computation of ``g``.
    """

    def __init__(self, name: str, output: VersionedBuffer,
                 channel: UpdateChannel,
                 initial_fn: Callable[[], Any],
                 update_fn: Callable[[Any, Any], Any],
                 update_cost: Callable[[Any], float],
                 precise_fn: Callable[[Any], Any],
                 precise_cost: float) -> None:
        super().__init__(name, output, inputs=())
        self.channel = channel
        self.initial_fn = initial_fn
        self.update_fn = update_fn
        self.update_cost = update_cost
        self.precise_fn = precise_fn
        self._precise_cost = float(precise_cost)
        # Checkpoint bookkeeping (repro.ckpt): the accumulator and fold
        # count live on the instance — updated *before* the Write yield
        # that publishes them — and a received-but-unfolded update is
        # stashed so no element of the stream can be lost mid-capture.
        self._acc: Any = None
        self._folded = 0
        self._ended = False
        self._pending_update: Any = None

    def body(self) -> Body:
        resume, self._resume = self._resume, None
        if resume is None:
            self._acc = self.initial_fn()
            self._folded = 0
            self._ended = False
            self._pending_update = None
        else:
            written = int(resume.get("written", 0))
            if self._ended:
                # only the final republication can be outstanding
                if written <= self._folded:
                    yield Write(self._acc, final=True)
                return
            if self._pending_update is not None:
                # an update left the channel but was never folded
                update, self._pending_update = self._pending_update, None
                yield Compute(self.update_cost(update),
                              label=f"{self.name}:update")
                self._acc = self.update_fn(self._acc, update)
                self._folded += 1
                yield Write(self._acc, final=False)
            elif written < self._folded:
                # the fold landed but its publication did not
                yield Write(self._acc, final=False)
        while True:
            update = yield Recv()
            if update is CHANNEL_END:
                self._ended = True
                break
            self._pending_update = update
            yield Compute(self.update_cost(update),
                          label=f"{self.name}:update")
            self._acc = self.update_fn(self._acc, update)
            self._folded += 1
            self._pending_update = None
            yield Write(self._acc, final=False)
        # Re-publish the accumulated output as final: every update was
        # consumed, so the aggregate equals the precise output.
        yield Write(self._acc, final=True)

    # -- checkpoint / restore ------------------------------------------

    def capture_state(self, written_total: int,
                      emitted_total: int = 0) -> dict[str, Any]:
        return {
            "sync": True,
            "acc": self._acc,
            "folded": self._folded,
            "ended": self._ended,
            "pending": self._pending_update,
            "written": written_total,
        }

    def restore_state(self, cursor: dict[str, Any]) -> None:
        super().restore_state(cursor)
        self._acc = cursor.get("acc")
        self._folded = int(cursor.get("folded", 0))
        self._ended = bool(cursor.get("ended", False))
        self._pending_update = cursor.get("pending")

    def run_once(self, snaps, inputs_final):  # pragma: no cover
        raise NotImplementedError(
            "SynchronousStage overrides body() directly")

    def precise(self, input_values: dict[str, Any]) -> Any:
        parent = self.channel.name
        if parent not in input_values:
            raise KeyError(
                f"precise evaluation of {self.name!r} needs the parent "
                f"output under key {parent!r}")
        return self.precise_fn(input_values[parent])

    @property
    def precise_cost(self) -> float:
        return self._precise_cost
