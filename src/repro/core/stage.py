"""Computation stages and the executor command protocol.

An automaton stage is written as a *generator of commands*: it yields
:class:`Compute` (do this much work), :class:`Write` (publish an output
version), :class:`WaitInputs` (block until an input buffer has a newer
version), :class:`Emit`/:class:`CloseChannel` (stream updates to a
synchronous child) and :class:`Recv` (consume such updates).  Both
executors — the deterministic discrete-event simulator and the real
threaded runtime — interpret the same command stream, so a stage is
written once and runs identically under either.

The base :class:`Stage` provides the asynchronous-pipeline consumer loop
of paper Section III-C1: wait until every input has a version, run the
stage's full anytime sequence on that snapshot, then repeat whenever any
input publishes a newer version, stopping after processing final inputs.
This is precisely "at any point in time, g simply processes the most
recent available output of f", with the guarantee that g eventually
computes on F_n.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Generator

from .buffer import Snapshot, VersionedBuffer
from .channel import UpdateChannel

__all__ = [
    "Compute", "Write", "WaitInputs", "PollInputs", "Emit", "CloseChannel",
    "Recv", "Lease", "Command", "CHANNEL_END", "Stage", "PreciseStage",
    "DEFAULT_ACCESS_PENALTIES", "access_penalty",
]


# ---------------------------------------------------------------------------
# Commands


@dataclass(frozen=True)
class Compute:
    """Charge ``cost`` work units (and ``energy`` units, default = cost)."""

    cost: float
    energy: float | None = None
    label: str = ""

    def __post_init__(self) -> None:
        if self.cost < 0:
            raise ValueError(f"cost cannot be negative: {self.cost}")


@dataclass(frozen=True)
class Write:
    """Publish ``value`` as the stage's next output version.

    ``transfer=True`` declares an ownership-transfer write: the stage
    promises ``value`` is freshly allocated and never touched again, so
    the buffer may freeze it in place instead of copying defensively
    (see :meth:`VersionedBuffer.write <repro.core.buffer.VersionedBuffer.write>`).
    """

    value: Any
    final: bool = False
    transfer: bool = False


@dataclass(frozen=True)
class WaitInputs:
    """Block until all inputs are non-empty and any is newer than ``seen``.

    The executor responds with ``dict[str, Snapshot]`` of all inputs.
    """

    seen: dict[str, int] = field(default_factory=dict)


@dataclass(frozen=True)
class PollInputs:
    """Non-blocking: executor responds True if a newer input exists."""

    seen: dict[str, int] = field(default_factory=dict)


@dataclass(frozen=True)
class Emit:
    """Stream one update to the stage's attached output channel."""

    update: Any


@dataclass(frozen=True)
class CloseChannel:
    """Mark the stage's output channel complete."""


@dataclass(frozen=True)
class Recv:
    """Receive the next update from the stage's consumed channel.

    The executor responds with the update, or :data:`CHANNEL_END` when the
    channel is closed and drained.
    """


@dataclass(frozen=True)
class Lease:
    """Ask how many accuracy levels the stage may batch before its next
    mandatory synchronization point.

    The executor responds with an int grant in ``[1, want]``.  A grant of
    ``k`` is *advisory*: the stage may vectorize the computation of its
    next ``k`` levels in one pass, but it must still yield the exact same
    per-level :class:`Compute`/:class:`Write` command sequence it would
    have yielded unbatched, so the published version ladder is
    bit-identical for every grant size (the lease safety rule).  On the
    process backend a grant additionally lets the worker stream that many
    writes without waiting for per-write replies (one pipe round trip per
    lease instead of per level).
    """

    want: int = 1

    def __post_init__(self) -> None:
        if self.want < 1:
            raise ValueError(f"lease want must be >= 1: {self.want}")


Command = (Compute, Write, WaitInputs, PollInputs, Emit, CloseChannel,
           Recv, Lease)

#: sentinel sent in response to :class:`Recv` on a drained, closed channel
CHANNEL_END = object()


# ---------------------------------------------------------------------------
# Access-cost penalties (paper Section IV-C3)

#: Relative per-element access-cost multipliers by permutation family.
#: Sequential access streams through the cache; tree and LFSR orders
#: sacrifice locality (the paper's explanation for automata reaching the
#: precise output later than the baseline).  The values are calibrated
#: from the cache-simulator ablation (benchmarks/test_ablation_locality)
#: and can be overridden per stage.  "prefetched" reflects a permutation-
#: aware prefetcher (paper IV-C3).
DEFAULT_ACCESS_PENALTIES: dict[str, float] = {
    "sequential": 1.0,
    "reversed": 1.0,
    "strided": 1.3,
    "tree": 1.8,
    "lfsr": 2.2,
    "prefetched": 1.1,
}


def access_penalty(permutation_name: str,
                   prefetcher: bool = False) -> float:
    """Cost multiplier for accessing data in a permutation's order."""
    if prefetcher:
        return DEFAULT_ACCESS_PENALTIES["prefetched"]
    return DEFAULT_ACCESS_PENALTIES.get(permutation_name, 1.5)


# ---------------------------------------------------------------------------
# Stages

Body = Generator[Any, Any, None]


class Stage:
    """Base class for all computation stages.

    Parameters
    ----------
    name:
        Stage name, unique within a graph.
    output:
        The stage's single output buffer; ownership is registered at
        construction (Property 2).
    inputs:
        Buffers this stage consumes (empty for source stages).
    emit_to:
        Optional :class:`UpdateChannel` the stage streams its diffusive
        updates into, making it the parent of a synchronous pipeline.
        Only source stages may stream updates (their diffusion runs
        exactly once, so the update stream is well defined).
    restart_policy:
        ``"complete"`` (default) finishes the current anytime sequence
        before looking at newer input versions; ``"preempt"`` abandons it
        as soon as a newer input version is available.
    """

    def __init__(self, name: str, output: VersionedBuffer,
                 inputs: tuple[VersionedBuffer, ...] = (),
                 emit_to: UpdateChannel | None = None,
                 restart_policy: str = "complete") -> None:
        if restart_policy not in ("complete", "preempt"):
            raise ValueError(
                f"unknown restart policy {restart_policy!r}")
        self.name = name
        self.output = output
        self.inputs = tuple(inputs)
        self.emit_to = emit_to
        self.restart_policy = restart_policy
        self._seen: dict[str, int] = {}
        # Checkpoint bookkeeping (see repro.ckpt).  All transitions
        # below happen *before* the yield whose effect they describe,
        # so a generator suspended at any command boundary carries a
        # cursor from which the remaining command stream can be
        # replayed exactly (already-applied effects are skipped via the
        # executor-supplied authoritative write/emit counts).
        self._passes = 0                  # completed consumer passes
        self._in_pass = False             # run_once currently active
        self._pass_snaps: dict[str, Snapshot] | None = None
        self._pass_final = False
        self._resume: dict[str, Any] | None = None   # pending cursor
        self._resume_pass: dict[str, Any] | None = None
        output.register_writer(name)

    # -- protocol -----------------------------------------------------

    def body(self) -> Body:
        """The stage's full command stream (asynchronous consumer loop)."""
        seen = {b.name: 0 for b in self.inputs}
        passes = 0
        self._passes = 0
        self._in_pass = False
        self._seen = dict(seen)
        resume, self._resume = self._resume, None
        if resume is not None:
            passes = self._passes = int(resume.get("passes", 0))
            if resume.get("seen"):
                seen = dict(resume["seen"])
            self._seen = dict(seen)
            if resume.get("in_pass"):
                snaps = {
                    n: Snapshot(n, value, version, final, sealed)
                    for n, (value, version, final, sealed)
                    in (resume.get("pass_inputs") or {}).items()}
                inputs_final = bool(resume.get("inputs_final"))
                self._pass_snaps = snaps
                self._pass_final = inputs_final
                self._in_pass = True
                self._resume_pass = dict(resume.get("pass") or {})
                yield from self.run_once(snaps, inputs_final)
                self._in_pass = False
                passes += 1
                self._passes = passes
                if inputs_final:
                    return
        while True:
            snaps = yield WaitInputs(dict(seen))
            seen = {n: s.version for n, s in snaps.items()}
            self._seen = seen
            inputs_final = all(s.final for s in snaps.values())
            if self.emit_to is not None and passes > 0:
                # A synchronous parent's update stream is only well
                # defined for a single diffusion pass; re-running would
                # emit into a closed channel or double-count updates.
                raise RuntimeError(
                    f"stage {self.name!r} streams updates but saw a "
                    f"second input version; synchronous parents must "
                    f"consume final inputs only")
            self._pass_snaps = snaps
            self._pass_final = inputs_final
            self._in_pass = True
            yield from self.run_once(snaps, inputs_final)
            self._in_pass = False
            passes += 1
            self._passes = passes
            if inputs_final:
                break

    # -- checkpoint / restore ------------------------------------------

    def capture_state(self, written_total: int,
                      emitted_total: int = 0) -> dict[str, Any]:
        """Picklable mid-run cursor for :mod:`repro.ckpt`.

        ``written_total`` / ``emitted_total`` are the *authoritative*
        executor-side counts of this stage's applied output writes and
        channel emits — the stage's own post-yield bookkeeping cannot
        know whether its last command's effect landed, so the split
        between "already published" and "still to publish" always comes
        from the executor.
        """
        cursor: dict[str, Any] = {
            "passes": self._passes,
            "in_pass": self._in_pass,
            "inputs_final": self._pass_final,
            "seen": dict(self._seen),
        }
        if self._in_pass:
            cursor["pass_inputs"] = {
                n: (s.value, s.version, s.final, s.sealed)
                for n, s in (self._pass_snaps or {}).items()}
            cursor["pass"] = self._capture_pass(written_total,
                                                emitted_total)
        return cursor

    def restore_state(self, cursor: dict[str, Any]) -> None:
        """Arm the stage to resume from ``cursor`` on its next body()."""
        self._resume = dict(cursor)

    def _capture_pass(self, written_total: int,
                      emitted_total: int) -> dict[str, Any]:
        """Mid-pass fields for :meth:`capture_state`; subclasses with a
        resumable ``run_once`` override this (the base restarts an
        interrupted pass from its beginning)."""
        return {}

    def run_once(self, snaps: dict[str, Snapshot],
                 inputs_final: bool) -> Body:
        """One full anytime sequence over a fixed input snapshot.

        Must yield :class:`Compute`/:class:`Write` commands; the last
        write should carry ``final=inputs_final`` so finality propagates
        down the pipeline exactly when the precise inputs were used.
        """
        raise NotImplementedError

    def preempted(self) -> Body:
        """Helper for preemptible sequences: yields a poll, returns
        True when a newer input version should abort the current pass."""
        if self.restart_policy != "preempt" or not self.inputs:
            return False
        newer = yield PollInputs(dict(self._seen))
        return bool(newer)

    # -- baseline / analysis -------------------------------------------

    def precise(self, input_values: dict[str, Any]) -> Any:
        """Compute the stage's precise output directly (baseline path)."""
        raise NotImplementedError

    @property
    def precise_cost(self) -> float:
        """Work units of one precise execution (for the cost model)."""
        raise NotImplementedError

    @property
    def anytime(self) -> bool:
        """Whether the stage produces more than one output version."""
        return True

    def input_values(self, snaps: dict[str, Snapshot]) -> tuple[Any, ...]:
        """Input snapshot values in declared input order."""
        return tuple(snaps[b.name].value for b in self.inputs)

    def __repr__(self) -> str:  # pragma: no cover - diagnostics only
        ins = ",".join(b.name for b in self.inputs)
        return (f"<{type(self).__name__} {self.name}: "
                f"[{ins}] -> {self.output.name}>")


class PreciseStage(Stage):
    """A non-anytime stage: one computation, one (final) output version.

    The paper's pipelines contain these for "small (typically sequential)
    tasks such as normalization of data structures (as in histeq) or
    reducing thread-privatized data (as in kmeans)"; the pipeline supports
    them because correctness only needs the n = 1 case.
    """

    def __init__(self, name: str, output: VersionedBuffer,
                 inputs: tuple[VersionedBuffer, ...],
                 fn: Callable[..., Any], cost: float,
                 restart_policy: str = "complete") -> None:
        super().__init__(name, output, inputs,
                         restart_policy=restart_policy)
        self.fn = fn
        self._cost = float(cost)

    def run_once(self, snaps: dict[str, Snapshot],
                 inputs_final: bool) -> Body:
        resume, self._resume_pass = self._resume_pass, None
        if resume is not None and resume.get("written", 0) >= 1:
            return   # the pass's single version is already published
        yield Compute(self._cost, label=f"{self.name}:precise")
        value = self.fn(*self.input_values(snaps))
        yield Write(value, final=inputs_final)

    def _capture_pass(self, written_total: int,
                      emitted_total: int) -> dict[str, Any]:
        return {"written": written_total - self._passes}

    def precise(self, input_values: dict[str, Any]) -> Any:
        return self.fn(*(input_values[b.name] for b in self.inputs))

    @property
    def precise_cost(self) -> float:
        return self._cost

    @property
    def anytime(self) -> bool:
        return False
