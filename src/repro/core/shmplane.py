"""Zero-copy shared-memory data plane for the process executor.

The process backend (:mod:`repro.core.procexec`) runs one worker process
per stage; only *control* messages travel over its pipes.  Every ndarray
payload of a buffer version is carried out-of-band in a
:class:`SlabRing` — a small ring of fixed-size slots inside one
``multiprocessing.shared_memory`` segment — and the control channel sees
nothing but :class:`NDRef` descriptors ``(segment, slot, offset, shape,
dtype)``.  A consumer process attaches the segment once and maps each
descriptor to a read-only ndarray view, so publishing a 1024x1024 image
version costs exactly one memcpy (producer heap -> slab) instead of a
pickle + pipe write + unpickle round trip.

Snapshot atomicity across the process boundary (paper Property 3) is
preserved by *slot pinning*: each slot carries a generation tag (the
version it holds) and a pin count in the slab header.  The coordinator
pins the slot it hands to a consumer and unpins the one that consumer
previously held; the writer never reuses a pinned slot or the slot it
wrote last.  With ``consumers + 2`` slots there is always a free slot
(latest + one pin per consumer + one spare), so the writer never blocks
and a consumer mid-computation can never observe a torn value.

All segments are registered with a :class:`SegmentRegistry`; the
coordinator unlinks every segment at the end of the run (including
abandoned generations after a ring grew), so no shared memory outlives
the executor even when workers are terminated mid-run.
"""

from __future__ import annotations

import secrets
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Any, Callable

import numpy as np

__all__ = [
    "NDRef", "SlabRing", "SlabWriter", "SegmentRegistry",
    "encode_payload", "decode_payload", "payload_arrays",
    "contains_ndarray",
]

#: bytes per slot header entry: (version int64, pins int64)
_HDR_ENTRY = 16

#: payload tree tags
_INLINE = "inline"
_ND = "nd"
_LIST = "list"
_TUPLE = "tuple"
_DICT = "dict"


@dataclass(frozen=True)
class NDRef:
    """Descriptor for one ndarray living in a slab slot.

    The only thing that crosses the control channel for an array
    payload.  ``segment`` names the shared-memory block, ``slots`` /
    ``slot_bytes`` describe the ring geometry (enough to attach without
    a side channel), ``slot``/``offset`` locate the bytes and
    ``shape``/``dtype`` rebuild the view.
    """

    segment: str
    slots: int
    slot_bytes: int
    slot: int
    offset: int
    shape: tuple[int, ...]
    dtype: str


def _new_segment_name() -> str:
    """A collision-resistant shared-memory name (``repro_`` prefixed)."""
    return f"repro_{secrets.token_hex(6)}"


class SlabRing:
    """A ring of fixed-size payload slots in one shared-memory segment.

    Layout: ``slots`` header entries of ``(version, pins)`` int64 pairs,
    then ``slots`` payload areas of ``slot_bytes`` each.  Header fields
    are only ever mutated under the owning buffer's lock (held by the
    writer when picking a slot and by the coordinator when pinning), so
    plain int64 stores suffice — no atomics needed.
    """

    def __init__(self, shm: shared_memory.SharedMemory, slots: int,
                 slot_bytes: int, owner: bool) -> None:
        self.shm = shm
        self.slots = int(slots)
        self.slot_bytes = int(slot_bytes)
        self.owner = owner
        header = np.frombuffer(shm.buf, dtype=np.int64,
                               count=2 * self.slots)
        self._header = header.reshape(self.slots, 2)

    # -- construction ----------------------------------------------------

    @classmethod
    def create(cls, slots: int, slot_bytes: int) -> "SlabRing":
        if slots < 1:
            raise ValueError(f"slots must be >= 1, got {slots}")
        if slot_bytes < 1:
            raise ValueError(f"slot_bytes must be >= 1, got {slot_bytes}")
        size = slots * _HDR_ENTRY + slots * slot_bytes
        shm = shared_memory.SharedMemory(create=True, size=size,
                                         name=_new_segment_name())
        ring = cls(shm, slots, slot_bytes, owner=True)
        ring._header[:] = 0
        return ring

    @classmethod
    def attach(cls, name: str, slots: int, slot_bytes: int) -> "SlabRing":
        shm = shared_memory.SharedMemory(name=name)
        return cls(shm, slots, slot_bytes, owner=False)

    @property
    def name(self) -> str:
        return self.shm.name

    # -- header ----------------------------------------------------------

    def version_of(self, slot: int) -> int:
        return int(self._header[slot, 0])

    def pins_of(self, slot: int) -> int:
        return int(self._header[slot, 1])

    def pin(self, slot: int) -> None:
        self._header[slot, 1] += 1

    def unpin(self, slot: int) -> None:
        if self._header[slot, 1] <= 0:   # pragma: no cover - invariant
            raise RuntimeError(
                f"unpin of unpinned slot {slot} in {self.name}")
        self._header[slot, 1] -= 1

    def pick_slot(self, exclude) -> int | None:
        """An unpinned slot not in ``exclude`` (None when full).

        ``exclude`` is a slot index, an iterable of slot indices, or
        None.  Caller holds the buffer lock.  With ``consumers + 2``
        slots (plus lease headroom, see
        :class:`~repro.core.procexec.ProcessExecutor`) this never
        returns None (latest + one pin per consumer + held leased
        writes + a spare).
        """
        if exclude is None:
            exclude = ()
        elif isinstance(exclude, int):
            exclude = (exclude,)
        for slot in range(self.slots):
            if slot in exclude:
                continue
            if self._header[slot, 1] == 0:
                return slot
        return None

    # -- payload ---------------------------------------------------------

    def write_arrays(self, slot: int, version: int,
                     arrays: list[np.ndarray]) -> list[tuple[int, Any,
                                                             str]]:
        """Copy arrays into a slot; returns ``(offset, shape, dtype)``s."""
        placements: list[tuple[int, Any, str]] = []
        offset = 0
        base = self.slots * _HDR_ENTRY + slot * self.slot_bytes
        for arr in arrays:
            nbytes = arr.nbytes
            if offset + nbytes > self.slot_bytes:   # pragma: no cover
                raise ValueError(
                    f"slot overflow in {self.name}: {offset + nbytes} > "
                    f"{self.slot_bytes}")
            dest = np.frombuffer(self.shm.buf, dtype=arr.dtype,
                                 count=arr.size,
                                 offset=base + offset)
            np.copyto(dest, arr.reshape(-1))
            placements.append((offset, tuple(arr.shape), arr.dtype.str))
            offset += nbytes
        self._header[slot, 0] = version
        return placements

    def view(self, slot: int, offset: int, shape: tuple[int, ...],
             dtype: str) -> np.ndarray:
        """A read-only ndarray view of one array in a slot."""
        dt = np.dtype(dtype)
        count = 1
        for s in shape:
            count *= s
        base = self.slots * _HDR_ENTRY + slot * self.slot_bytes
        arr = np.frombuffer(self.shm.buf, dtype=dt, count=count,
                            offset=base + offset).reshape(shape)
        arr.flags.writeable = False
        return arr

    # -- lifecycle -------------------------------------------------------

    def close(self) -> None:
        # numpy views pin the exported buffer; drop them before close()
        self._header = None
        try:
            self.shm.close()
        except BufferError:   # pragma: no cover - defensive
            pass

    def unlink(self) -> None:
        try:
            self.shm.unlink()
        except FileNotFoundError:
            pass


class SegmentRegistry:
    """Attachment cache + cleanup ledger for slab segments.

    Every process keeps one: workers cache reader attachments; the
    coordinator additionally records every segment name ever created
    (reported over the control channel) so it can unlink them all at
    shutdown — even segments whose creating worker was terminated.
    """

    def __init__(self) -> None:
        self._rings: dict[str, SlabRing] = {}
        self._known: set[str] = set()

    def register(self, names: list[str] | tuple[str, ...] | set[str],
                 ) -> None:
        self._known.update(names)

    @property
    def known(self) -> set[str]:
        return set(self._known)

    def add_ring(self, ring: SlabRing) -> None:
        self._rings[ring.name] = ring
        self._known.add(ring.name)

    def ring_for(self, ref: NDRef) -> SlabRing:
        ring = self._rings.get(ref.segment)
        if ring is None:
            ring = SlabRing.attach(ref.segment, ref.slots, ref.slot_bytes)
            self._rings[ref.segment] = ring
            self._known.add(ref.segment)
        return ring

    def close_all(self) -> None:
        for ring in self._rings.values():
            ring.close()
        self._rings.clear()

    def unlink_all(self) -> None:
        """Close cached rings and unlink every known segment."""
        rings, self._rings = dict(self._rings), {}
        for name in sorted(self._known):
            ring = rings.pop(name, None)
            if ring is not None:
                ring.close()
                ring.unlink()
            else:
                try:
                    shm = shared_memory.SharedMemory(name=name)
                except FileNotFoundError:
                    continue
                shm.close()
                shm.unlink()
        for ring in rings.values():   # pragma: no cover - defensive
            ring.close()
        self._known.clear()


# Resource-tracker accounting (why there is no manual unregister here):
# the coordinator calls resource_tracker.ensure_running() *before*
# forking, so every worker inherits the same tracker and all REGISTER
# lines (create and, before Python 3.13, attach too) land in one
# name-deduplicated set.  Exactly one unlink per segment happens — in
# the coordinator's unlink_all — and SharedMemory.unlink() sends the
# single matching UNREGISTER.  Any extra manual unregister would make
# the tracker raise KeyError; any missing unlink would make it warn
# about leaked shared_memory objects at exit.


# ---------------------------------------------------------------------------
# Payload codec


def contains_ndarray(value: Any) -> bool:
    """Whether a payload tree has any ndarray leaf worth slab transport."""
    if isinstance(value, np.ndarray):
        return value.dtype != object
    if isinstance(value, dict):
        return any(contains_ndarray(v) for v in value.values())
    if isinstance(value, (list, tuple)):
        return any(contains_ndarray(v) for v in value)
    return False


def _collect_arrays(value: Any, out: list[np.ndarray]) -> Any:
    """Replace ndarray leaves with placeholder indices, gathering them."""
    if isinstance(value, np.ndarray) and value.dtype != object:
        out.append(np.ascontiguousarray(value))
        return (_ND, len(out) - 1)
    if isinstance(value, dict):
        return (_DICT, [(k, _collect_arrays(v, out))
                        for k, v in value.items()])
    if isinstance(value, tuple):
        return (_TUPLE, [_collect_arrays(v, out) for v in value])
    if isinstance(value, list):
        return (_LIST, [_collect_arrays(v, out) for v in value])
    return (_INLINE, value)


def _resolve(tree: Any, leaves: list[Any]) -> Any:
    tag, body = tree
    if tag == _ND:
        return leaves[body]
    if tag == _DICT:
        return {k: _resolve(v, leaves) for k, v in body}
    if tag == _TUPLE:
        return tuple(_resolve(v, leaves) for v in body)
    if tag == _LIST:
        return [_resolve(v, leaves) for v in body]
    return body


def encode_payload(value: Any,
                   place: Callable[[list[np.ndarray]], list[NDRef]],
                   ) -> Any:
    """Encode a value for the control channel.

    ``place`` copies the gathered arrays into slab storage and returns
    one :class:`NDRef` per array.  Values without array leaves are
    passed inline (scalars, small tuples — pickling those is fine); the
    returned payload tree contains **no ndarrays**, which
    ``tests/test_procexec.py`` asserts on live message traffic.
    """
    if not contains_ndarray(value):
        return (_INLINE, value)
    arrays: list[np.ndarray] = []
    tree = _collect_arrays(value, arrays)
    refs = place(arrays)
    return ("tree", tree, refs)


def decode_payload(payload: Any, registry: SegmentRegistry,
                   copy: bool = False) -> Any:
    """Rebuild a value from a payload tree.

    Returns read-only slab views by default (the zero-copy consumer
    path); ``copy=True`` materializes private copies (the coordinator
    uses it for watched timeline values and final results, which must
    outlive the slabs).
    """
    tag = payload[0]
    if tag == _INLINE:
        return payload[1]
    _, tree, refs = payload
    leaves = []
    for ref in refs:
        view = registry.ring_for(ref).view(ref.slot, ref.offset,
                                           ref.shape, ref.dtype)
        leaves.append(np.array(view) if copy else view)
    return _resolve(tree, leaves)


def payload_arrays(payload: Any) -> list[NDRef]:
    """The :class:`NDRef` descriptors of a payload (empty when inline)."""
    if payload[0] == _INLINE:
        return []
    return list(payload[2])


class SlabWriter:
    """Producer-side slab management for one buffer.

    Created lazily in the worker on the first array write (slot size is
    only known then).  Grows by allocating a fresh, larger ring when a
    version outgrows the current slots; abandoned generations stay
    mapped for any still-pinned readers and are unlinked by the
    coordinator at shutdown.
    """

    #: headroom factor applied when sizing (and re-sizing) slots
    GROWTH = 1.25

    def __init__(self, buffer_name: str, slots: int, lock: Any,
                 on_segment: Callable[[list[str]], None]) -> None:
        self.buffer_name = buffer_name
        self.slots = int(slots)
        self.lock = lock
        self.on_segment = on_segment
        self.ring: SlabRing | None = None
        self._retired: list[SlabRing] = []
        self._last_slot: int | None = None
        #: slots of lease-streamed writes the coordinator has not yet
        #: acknowledged (no reply was requested); excluded from reuse
        #: until a later synchronous reply proves consumption
        self._held: set[int] = set()
        self._hold_next = False

    def encode(self, value: Any, version: int,
               hold: bool = False) -> Any:
        """Encode ``value`` into the slab; ``hold=True`` marks the
        written slot as lease-held (see :meth:`release_held`)."""
        self._hold_next = hold
        try:
            return encode_payload(
                value, lambda arrays: self._place(arrays, version))
        finally:
            self._hold_next = False

    def release_held(self) -> None:
        """Forget lease-held slots.

        Called when a synchronous reply arrives: pipe FIFO ordering
        guarantees the coordinator has processed every write streamed
        before the request, so those slots are safe to reuse.
        """
        self._held.clear()

    def _place(self, arrays: list[np.ndarray],
               version: int) -> list[NDRef]:
        total = sum(a.nbytes for a in arrays)
        if self.ring is None or total > self.ring.slot_bytes:
            if self.ring is not None:
                self._retired.append(self.ring)
            slot_bytes = max(int(total * self.GROWTH), total, 1)
            self.ring = SlabRing.create(self.slots, slot_bytes)
            self._last_slot = None
            # retired rings are never rewritten, so holds on them are
            # moot — and stale indices must not shadow new-ring slots
            self._held.clear()
            self.on_segment([self.ring.name])
        ring = self.ring
        exclude = set(self._held)
        if self._last_slot is not None:
            exclude.add(self._last_slot)
        with self.lock:
            slot = ring.pick_slot(exclude=exclude)
            if slot is None:   # pragma: no cover - sizing invariant
                raise RuntimeError(
                    f"no free slab slot for buffer "
                    f"{self.buffer_name!r} ({self.slots} slots)")
            placements = ring.write_arrays(slot, version, arrays)
        self._last_slot = slot
        if self._hold_next:
            self._held.add(slot)
        return [NDRef(ring.name, ring.slots, ring.slot_bytes, slot,
                      offset, shape, dtype)
                for offset, shape, dtype in placements]

    def close(self) -> None:
        if self.ring is not None:
            self.ring.close()
            self.ring = None
        for ring in self._retired:
            ring.close()
        self._retired.clear()
