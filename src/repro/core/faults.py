"""Fault tolerance for anytime automata.

The model's central guarantee is interruptibility: the output buffer
always holds a valid approximation.  A runtime that discards that
approximation because one stage raised mid-run betrays the guarantee —
anytime semantics demand that a failing stage *degrades output quality*
instead of killing the run.  This module supplies the three pieces both
executors share:

:class:`FaultPolicy`
    What a stage failure triggers — kill the run (``fail``), freeze the
    stage at its last published version while the rest of the pipeline
    keeps refining (``degrade``), or restart the stage from a fresh
    generator (``restart``, bounded by ``max_retries`` with exponential
    backoff, falling back to degradation when retries are exhausted).
    Restarting is legal because buffers are monotone: the fresh
    generator re-consumes the *current* input snapshots, and diffusive
    stages keep their dense state across generators, so published
    accuracy never regresses below what downstream already saw.

:class:`StageReport`
    Structured per-stage outcome (attempts, failures, degraded/failed
    flags, last error) carried by ``ThreadedResult`` and ``SimResult``
    instead of the old raise-and-lose behavior.

:class:`FaultInjector`
    A deterministic test harness that injects exceptions or delays into
    stage generators by stage name and command count.  Determinism: the
    count is cumulative across restarts, so a one-shot fault does not
    re-fire on the retry, and the same schedule replayed against the
    simulator yields bit-identical timelines.
"""

from __future__ import annotations

import random
import time as _time
from dataclasses import dataclass, field
from typing import Any, Generator, Iterable, Mapping

from .stage import Compute

__all__ = [
    "FaultPolicy", "StageReport", "FaultInjected", "FaultSpec",
    "FaultInjector", "resolve_policy", "parse_fault_spec",
    "DEFAULT_POLICY",
]

#: dispositions a policy may name
_ON_FAILURE = ("fail", "degrade", "restart")


class FaultInjected(RuntimeError):
    """The exception raised by an injected ``error`` fault."""


@dataclass(frozen=True)
class FaultPolicy:
    """Per-stage failure handling.

    Parameters
    ----------
    max_retries:
        How many times a ``restart`` policy re-runs the stage from a
        fresh generator before falling back to degradation.  Ignored by
        ``fail`` and ``degrade`` (their disposition is immediate).
    backoff:
        Delay before the first restart — wall seconds under the
        threaded executor, virtual work units under the simulator.
    backoff_factor:
        Multiplier applied to ``backoff`` for each further restart
        (exponential backoff).
    on_failure:
        ``"fail"`` halts the whole automaton (the pre-fault-tolerance
        behavior, minus the raise — see the executors' ``strict``
        flag); ``"degrade"`` seals the stage's output at its last
        published version and lets downstream finish on it;
        ``"restart"`` retries from a fresh generator, degrading once
        ``max_retries`` is exhausted.
    """

    max_retries: int = 0
    backoff: float = 0.0
    backoff_factor: float = 2.0
    on_failure: str = "fail"

    def __post_init__(self) -> None:
        if self.on_failure not in _ON_FAILURE:
            raise ValueError(
                f"on_failure must be one of {_ON_FAILURE}, got "
                f"{self.on_failure!r}")
        if self.max_retries < 0:
            raise ValueError(
                f"max_retries cannot be negative: {self.max_retries}")
        if self.backoff < 0:
            raise ValueError(f"backoff cannot be negative: {self.backoff}")
        if self.backoff_factor <= 0:
            raise ValueError(
                f"backoff_factor must be positive: {self.backoff_factor}")

    def decide(self, failures: int) -> str:
        """Disposition after the ``failures``-th failure (1-based).

        ``"restart"`` while retries remain; the terminal disposition
        (``"fail"`` or ``"degrade"``) otherwise.
        """
        if self.on_failure == "restart":
            return "restart" if failures <= self.max_retries else "degrade"
        return self.on_failure

    def restart_delay(self, failures: int) -> float:
        """Backoff before the restart following the Nth failure."""
        if self.backoff <= 0:
            return 0.0
        return self.backoff * self.backoff_factor ** max(failures - 1, 0)


#: the default policy reproduces the historical semantics: a failing
#: stage halts the automaton (but the run now *returns* its partial
#: result instead of raising, unless the executor runs ``strict``)
DEFAULT_POLICY = FaultPolicy()

FaultMap = Mapping[str, FaultPolicy]


def resolve_policy(faults: FaultPolicy | FaultMap | None,
                   stage_name: str) -> FaultPolicy:
    """The policy governing one stage.

    ``faults`` may be a single policy (applied to every stage), a
    ``{stage_name: policy}`` mapping (the key ``"*"`` supplies the
    default for unlisted stages), or None (fail-fast default).
    """
    if faults is None:
        return DEFAULT_POLICY
    if isinstance(faults, FaultPolicy):
        return faults
    policy = faults.get(stage_name)
    if policy is None:
        policy = faults.get("*", DEFAULT_POLICY)
    return policy


@dataclass
class StageReport:
    """Structured outcome of one stage's execution.

    ``attempts`` counts generator starts (1 for an untroubled run);
    ``failures`` counts raised attempts; ``degraded`` marks a stage
    frozen at its last published version (own failure, exhausted
    retries, or an upstream that can no longer feed it); ``failed``
    marks the stage that halted the run under an ``on_failure="fail"``
    policy; ``completed`` means the stage ran its generator to the
    natural end and was not degraded.

    The remaining fields are per-stage observability counters
    (maintained by both executors whether or not a trace sink is
    attached): ``commands`` counts protocol commands the stage yielded,
    ``waits`` counts blocking waits (inputs, channel recv, backpressured
    emit) and ``wait_time`` their total duration — virtual work units
    under the simulator, wall seconds under the threaded executor.
    ``round_trips`` counts completed control-pipe request/reply pairs on
    the process backend (always 0 elsewhere) — the data-plane overhead
    the batched command leases amortize; ``repro bench plane`` reports
    it per published version.
    """

    stage: str
    attempts: int = 0
    failures: int = 0
    degraded: bool = False
    failed: bool = False
    completed: bool = False
    last_error: str | None = None
    error_history: list[str] = field(default_factory=list)
    commands: int = 0
    waits: int = 0
    wait_time: float = 0.0
    round_trips: int = 0

    def record_failure(self, exc: BaseException) -> int:
        """Log one failed attempt; returns the failure count."""
        self.failures += 1
        self.last_error = repr(exc)
        self.error_history.append(repr(exc))
        return self.failures

    def record_wait(self, elapsed: float) -> None:
        """Log one completed blocking wait of ``elapsed`` duration."""
        self.waits += 1
        self.wait_time += elapsed

    @property
    def retries(self) -> int:
        """Restarts beyond the first attempt."""
        return max(self.attempts - 1, 0)

    @property
    def ok(self) -> bool:
        """Ran to natural completion without degradation."""
        return self.completed and not self.degraded and not self.failed

    def summary(self) -> str:
        state = ("failed" if self.failed
                 else "degraded" if self.degraded
                 else "completed" if self.completed
                 else "stopped")
        text = (f"{self.stage}: {state}, attempts={self.attempts}, "
                f"failures={self.failures}, commands={self.commands}, "
                f"waits={self.waits}, wait_time={self.wait_time:.3g}")
        if self.last_error is not None:
            text += f", last_error={self.last_error}"
        return text


# ---------------------------------------------------------------------------
# Fault injection


@dataclass(frozen=True)
class FaultSpec:
    """One planned fault.

    Fires while the stage's cumulative command count ``c`` satisfies
    ``at <= c < at + times``.  The count survives restarts, so an
    ``error`` fault with ``times=1`` kills exactly one attempt and the
    retry sails past it, while ``times=k`` fails ``k`` consecutive
    commands — i.e. the first ``k`` attempts when ``at`` is reached.
    """

    stage: str
    at: int
    kind: str = "error"          # "error" | "delay"
    times: int = 1
    delay: float = 0.0           # seconds (threaded) / work units (sim)
    message: str = "injected fault"

    def __post_init__(self) -> None:
        if self.kind not in ("error", "delay"):
            raise ValueError(f"unknown fault kind {self.kind!r}")
        if self.at < 1:
            raise ValueError(f"at must be >= 1, got {self.at}")
        if self.times < 1:
            raise ValueError(f"times must be >= 1, got {self.times}")
        if self.delay < 0:
            raise ValueError(f"delay cannot be negative: {self.delay}")


def parse_fault_spec(text: str) -> FaultSpec:
    """Parse a CLI fault spec: ``STAGE:AT[:error|:delay=SECONDS][:xTIMES]``.

    Examples: ``conv:5`` (error at the 5th command), ``conv:5:x3``
    (three consecutive errors), ``norm:2:delay=0.5`` (0.5 units of
    injected latency).
    """
    parts = text.split(":")
    if len(parts) < 2:
        raise ValueError(
            f"fault spec {text!r} must look like STAGE:AT[:KIND][:xTIMES]")
    stage, at_text = parts[0], parts[1]
    try:
        at = int(at_text)
    except ValueError:
        raise ValueError(
            f"fault spec {text!r}: AT must be an integer, got "
            f"{at_text!r}") from None
    kind, delay, times = "error", 0.0, 1
    for extra in parts[2:]:
        if extra == "error":
            kind = "error"
        elif extra.startswith("delay="):
            kind = "delay"
            delay = float(extra[len("delay="):])
        elif extra.startswith("x"):
            times = int(extra[1:])
        else:
            raise ValueError(
                f"fault spec {text!r}: unknown component {extra!r}")
    return FaultSpec(stage=stage, at=at, kind=kind, times=times,
                     delay=delay)


class FaultInjector:
    """Deterministically injects faults into stage command streams.

    The injector wraps a stage's generator; every command the stage
    yields increments that stage's cumulative counter, and any
    :class:`FaultSpec` due at that count fires — raising
    :class:`FaultInjected` (``error``) or stalling the stage
    (``delay``: a real ``sleep`` under the threaded executor, an extra
    zero-energy :class:`Compute` under the simulator).

    Single-use, like the automaton itself: counters persist across
    stage restarts within one run, so build a fresh injector per run.
    """

    def __init__(self, faults: Iterable[FaultSpec] = ()) -> None:
        self.faults = list(faults)
        self._counts: dict[str, int] = {}
        #: log of fired faults as (stage, command_count, kind) triples
        self.triggered: list[tuple[str, int, str]] = []
        #: optional observability hook ``tracer(stage, count, kind)``,
        #: installed by an executor when tracing is enabled; fires once
        #: per triggered fault (see :mod:`repro.core.tracing`)
        self.tracer = None

    @classmethod
    def crash(cls, stage: str, at: int, times: int = 1) -> "FaultInjector":
        """Shorthand: one error fault on ``stage``'s ``at``-th command."""
        return cls([FaultSpec(stage=stage, at=at, times=times)])

    @classmethod
    def from_specs(cls, specs: Iterable[str]) -> "FaultInjector":
        """Build from CLI-style spec strings (:func:`parse_fault_spec`)."""
        return cls([parse_fault_spec(s) for s in specs])

    @classmethod
    def random_schedule(cls, seed: int, stage_names: Iterable[str],
                        n_faults: int = 1, max_at: int = 32,
                        error_prob: float = 1.0,
                        max_delay: float = 1.0) -> "FaultInjector":
        """A seed-deterministic schedule: same seed, same faults.

        Draws ``n_faults`` specs over ``stage_names`` with command
        indices in ``[1, max_at]``; each is an error with probability
        ``error_prob``, otherwise a delay up to ``max_delay``.
        """
        rng = random.Random(seed)
        names = sorted(stage_names)
        if not names:
            raise ValueError("random_schedule needs at least one stage")
        specs = []
        for _ in range(n_faults):
            stage = names[rng.randrange(len(names))]
            at = rng.randint(1, max_at)
            if rng.random() < error_prob:
                specs.append(FaultSpec(stage=stage, at=at))
            else:
                specs.append(FaultSpec(
                    stage=stage, at=at, kind="delay",
                    delay=rng.uniform(0.0, max_delay)))
        return cls(specs)

    def count(self, stage: str) -> int:
        """Commands seen from ``stage`` so far (across restarts)."""
        return self._counts.get(stage, 0)

    def _due(self, stage: str, count: int) -> FaultSpec | None:
        for spec in self.faults:
            if spec.stage == stage and spec.at <= count < spec.at + spec.times:
                return spec
        return None

    def wrap(self, stage_name: str, gen: Generator,
             realtime: bool = False) -> Generator:
        """Instrument a stage generator; pass-through when no fault
        targets the stage."""
        if not any(spec.stage == stage_name for spec in self.faults):
            return gen
        return self._instrument(stage_name, gen, realtime)

    def _instrument(self, stage: str, gen: Generator,
                    realtime: bool) -> Generator:
        send: Any = None
        while True:
            try:
                cmd = gen.send(send)
            except StopIteration:
                return
            count = self._counts.get(stage, 0) + 1
            self._counts[stage] = count
            spec = self._due(stage, count)
            if spec is not None:
                self.triggered.append((stage, count, spec.kind))
                if self.tracer is not None:
                    self.tracer(stage, count, spec.kind)
                if spec.kind == "error":
                    raise FaultInjected(
                        f"{spec.message} (stage {stage!r}, "
                        f"command {count})")
                if realtime:
                    _time.sleep(spec.delay)
                else:
                    yield Compute(spec.delay, energy=0.0,
                                  label=f"{stage}:injected-delay")
            send = yield cmd
