"""Output timelines: what the terminal buffer held, and when.

Executors record a :class:`WriteRecord` per buffer write; the timeline of
the terminal buffer is the raw material of every runtime-accuracy figure.
Values are kept only for watched buffers (keeping every intermediate
version of every stage of a 512x512-pixel automaton would be gigabytes).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Callable

from ..metrics.profiles import RuntimeAccuracyProfile
from ..metrics.snr import snr_db

__all__ = ["WriteRecord", "Timeline"]


@dataclass(frozen=True)
class WriteRecord:
    """One buffer write: when, what, and the energy spent so far."""

    time: float
    buffer: str
    version: int
    final: bool
    energy: float
    value: Any = None          # retained only for watched buffers


@dataclass
class Timeline:
    """All writes observed during one execution."""

    records: list[WriteRecord] = field(default_factory=list)

    def add(self, record: WriteRecord) -> None:
        self.records.append(record)

    def for_buffer(self, name: str) -> list[WriteRecord]:
        return [r for r in self.records if r.buffer == name]

    def final_record(self, name: str) -> WriteRecord | None:
        for r in reversed(self.records):
            if r.buffer == name and r.final:
                return r
        return None

    def last_value(self, name: str) -> Any:
        """Newest retained value for a buffer (None if never watched)."""
        for r in reversed(self.records):
            if r.buffer == name and r.value is not None:
                return r.value
        return None

    def profile(self, buffer: str, reference: Any,
                baseline_cost: float, label: str = "",
                metric: Callable[[Any, Any], float] = snr_db,
                ) -> RuntimeAccuracyProfile:
        """Build the runtime-accuracy profile of a watched buffer.

        Runtime is normalized by ``baseline_cost`` (the figures' x-axis);
        accuracy defaults to SNR dB against ``reference``.
        """
        if baseline_cost <= 0:
            raise ValueError("baseline_cost must be positive")
        prof = RuntimeAccuracyProfile(label=label)
        for r in self.for_buffer(buffer):
            if r.value is None:
                raise ValueError(
                    f"buffer {buffer!r} was not watched; no values "
                    f"retained")
            acc = metric(r.value, reference)
            if isinstance(acc, float) and math.isnan(acc):
                raise ValueError(
                    f"metric returned NaN at t={r.time}")
            prof.add(r.time / baseline_cost, acc,
                     version=r.version, energy=r.energy)
        return prof
