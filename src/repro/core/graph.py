"""Automaton graphs: directed acyclic compositions of stages (Figure 1).

"An approximate application is broken down into computation stages with
input/output buffers, connected in a directed, acyclic graph."  The graph
owns the stages and their buffers, validates the model's structural
properties (acyclicity; Property 2 single-writer buffers; synchronous
channels pair exactly one producer with one consumer) and provides the
topological order the baseline executor and validators need.
"""

from __future__ import annotations

from typing import Any, Iterable

from .buffer import VersionedBuffer
from .channel import UpdateChannel
from .stage import Stage
from .syncstage import SynchronousStage

__all__ = ["AutomatonGraph", "GraphError"]


class GraphError(ValueError):
    """A structural violation of the automaton model."""


class AutomatonGraph:
    """A validated DAG of computation stages.

    Build one by constructing stages (each owning its output buffer) and
    passing them in; :meth:`validate` is called on construction.
    """

    def __init__(self, stages: Iterable[Stage]) -> None:
        self.stages: list[Stage] = list(stages)
        if not self.stages:
            raise GraphError("an automaton needs at least one stage")
        self.validate()

    # -- structure -------------------------------------------------------

    @property
    def buffers(self) -> dict[str, VersionedBuffer]:
        """All buffers appearing as stage inputs or outputs, by name."""
        out: dict[str, VersionedBuffer] = {}
        for stage in self.stages:
            out[stage.output.name] = stage.output
            for b in stage.inputs:
                out.setdefault(b.name, b)
        return out

    @property
    def channels(self) -> dict[str, UpdateChannel]:
        out: dict[str, UpdateChannel] = {}
        for stage in self.stages:
            if stage.emit_to is not None:
                out[stage.emit_to.name] = stage.emit_to
            if isinstance(stage, SynchronousStage):
                out[stage.channel.name] = stage.channel
        return out

    def producer_of(self, buffer_name: str) -> Stage | None:
        """The stage writing a buffer, or None for external inputs."""
        for stage in self.stages:
            if stage.output.name == buffer_name:
                return stage
        return None

    def consumers_of(self, buffer_name: str) -> list[Stage]:
        return [s for s in self.stages
                if any(b.name == buffer_name for b in s.inputs)]

    def predecessors(self, stage: Stage) -> list[Stage]:
        """Stages this stage depends on (via buffers or channels)."""
        preds = []
        for b in stage.inputs:
            p = self.producer_of(b.name)
            if p is not None:
                preds.append(p)
        if isinstance(stage, SynchronousStage):
            for s in self.stages:
                if s.emit_to is stage.channel:
                    preds.append(s)
        return preds

    def source_stages(self) -> list[Stage]:
        return [s for s in self.stages if not self.predecessors(s)]

    def terminal_stages(self) -> list[Stage]:
        """Stages whose output no other stage consumes."""
        consumed = {b.name for s in self.stages for b in s.inputs}
        out = []
        for s in self.stages:
            feeds_channel = (s.emit_to is not None
                             and any(isinstance(t, SynchronousStage)
                                     and t.channel is s.emit_to
                                     for t in self.stages))
            if s.output.name not in consumed and not feeds_channel:
                out.append(s)
        return out

    def terminal_buffer(self) -> VersionedBuffer:
        """The single application output buffer.

        Raises :class:`GraphError` when the graph has several terminals;
        multi-output automata must name the buffer explicitly.
        """
        terminals = self.terminal_stages()
        if len(terminals) != 1:
            raise GraphError(
                f"expected one terminal stage, found "
                f"{[s.name for s in terminals]}")
        return terminals[0].output

    def topological_order(self) -> list[Stage]:
        """Stages in dependency order (Kahn's algorithm)."""
        in_deg = {s.name: len(self.predecessors(s)) for s in self.stages}
        by_name = {s.name: s for s in self.stages}
        ready = sorted(n for n, d in in_deg.items() if d == 0)
        order: list[Stage] = []
        succs: dict[str, list[str]] = {s.name: [] for s in self.stages}
        for s in self.stages:
            for p in self.predecessors(s):
                succs[p.name].append(s.name)
        while ready:
            name = ready.pop(0)
            order.append(by_name[name])
            for nxt in sorted(succs[name]):
                in_deg[nxt] -= 1
                if in_deg[nxt] == 0:
                    ready.append(nxt)
        if len(order) != len(self.stages):
            cyclic = sorted(n for n, d in in_deg.items() if d > 0)
            raise GraphError(f"cycle among stages {cyclic}")
        return order

    # -- validation --------------------------------------------------------

    def validate(self) -> None:
        """Enforce structural model properties; raises GraphError."""
        names = [s.name for s in self.stages]
        if len(set(names)) != len(names):
            raise GraphError(f"duplicate stage names in {names}")
        # Property 2: one writer per buffer.
        writers: dict[str, str] = {}
        for s in self.stages:
            prev = writers.get(s.output.name)
            if prev is not None:
                raise GraphError(
                    f"buffer {s.output.name!r} written by both {prev!r} "
                    f"and {s.name!r} (Property 2)")
            writers[s.output.name] = s.name
        # Channels: exactly one producer and one consumer each.
        producers: dict[int, str] = {}
        consumers: dict[int, str] = {}
        for s in self.stages:
            if s.emit_to is not None:
                if id(s.emit_to) in producers:
                    raise GraphError(
                        f"channel {s.emit_to.name!r} has two producers")
                producers[id(s.emit_to)] = s.name
            if isinstance(s, SynchronousStage):
                if id(s.channel) in consumers:
                    raise GraphError(
                        f"channel {s.channel.name!r} has two consumers")
                consumers[id(s.channel)] = s.name
        for cid, producer in producers.items():
            if cid not in consumers:
                raise GraphError(
                    f"stage {producer!r} emits to a channel nobody "
                    f"consumes")
        for cid, consumer in consumers.items():
            if cid not in producers:
                raise GraphError(
                    f"stage {consumer!r} consumes a channel nobody "
                    f"produces")
        # Acyclicity (raises on cycles).
        self.topological_order()

    # -- baseline ------------------------------------------------------------

    def run_precise(self,
                    external: dict[str, Any] | None = None,
                    ) -> dict[str, Any]:
        """Evaluate every stage precisely, in topological order.

        ``external`` provides values for buffers no stage produces.
        Returns the precise value of every buffer — the reference outputs
        the evaluation compares against.
        """
        values: dict[str, Any] = dict(external or {})
        for b in self.buffers.values():
            if self.producer_of(b.name) is None \
                    and b.name not in values:
                snap = b.snapshot()
                if snap.empty:
                    raise GraphError(
                        f"external buffer {b.name!r} has no value")
                values[b.name] = snap.value
        for stage in self.topological_order():
            if isinstance(stage, SynchronousStage):
                producer = next(s for s in self.stages
                                if s.emit_to is stage.channel)
                parent_value = values[producer.output.name]
                values[stage.output.name] = stage.precise_fn(parent_value)
            else:
                values[stage.output.name] = stage.precise(values)
        return values

    def baseline_cost(self) -> float:
        """Total precise work units (the baseline runs stages back to
        back, each parallelized across all cores)."""
        return sum(s.precise_cost for s in self.stages)
