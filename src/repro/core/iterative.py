"""Iterative anytime stages (paper Section III-B1).

The general way to make any approximate-computing technique anytime:
execute the stage ``n`` times at increasing accuracy levels, each
intermediate computation overwriting the previous output, with the final
level being the precise computation (technique disabled).  This is the
construction behind anytime loop perforation and anytime approximate
storage — and, by design, it performs redundant work, which is why the
paper prefers diffusive stages when the technique admits them.
"""

from __future__ import annotations

from typing import Any, Callable, Sequence

from .buffer import Snapshot, VersionedBuffer
from .stage import Body, Compute, Lease, Stage, Write

__all__ = ["IterativeStage", "AccuracyLevel"]


class AccuracyLevel:
    """One intermediate computation ``f_i`` of an iterative stage.

    Attributes
    ----------
    fn:
        ``fn(*input_values) -> output``.  Must be pure (Property 1).
    cost:
        Work units of this level.
    label:
        Diagnostic label (e.g. ``"stride=4"`` or ``"0.001%"``).
    """

    def __init__(self, fn: Callable[..., Any], cost: float,
                 label: str = "") -> None:
        if cost < 0:
            raise ValueError(f"cost cannot be negative: {cost}")
        self.fn = fn
        self.cost = float(cost)
        self.label = label


class IterativeStage(Stage):
    """A stage re-executed at increasing accuracy levels.

    The last level must be the precise computation; each level's output
    atomically replaces the previous one in the output buffer.  Levels
    must have non-decreasing cost by default — the usual shape, since
    higher accuracy does more work — pass ``allow_any_costs=True`` for
    techniques where that does not hold (e.g. approximate storage, where
    every level touches all data).
    """

    def __init__(self, name: str, output: VersionedBuffer,
                 inputs: tuple[VersionedBuffer, ...],
                 levels: Sequence[AccuracyLevel],
                 allow_any_costs: bool = False,
                 restart_policy: str = "complete") -> None:
        super().__init__(name, output, inputs,
                         restart_policy=restart_policy)
        if not levels:
            raise ValueError(f"stage {name!r} needs at least one level")
        if not allow_any_costs:
            for a, b in zip(levels, levels[1:]):
                if b.cost < a.cost:
                    raise ValueError(
                        f"stage {name!r}: level costs should not decrease "
                        f"({a.cost} -> {b.cost}); pass allow_any_costs="
                        f"True if intended")
        self.levels = list(levels)
        #: subclasses that implement :meth:`batch_levels` set this True
        #: to take multi-level command leases (PR 6's protocol)
        self.supports_batch = False

    def batch_levels(self, values: tuple[Any, ...], start: int,
                     count: int) -> "Sequence[Any]":
        """Compute levels ``start .. start+count-1`` in one vectorized
        call, returning their outputs in level order.

        Lease safety rule: each returned output must be bit-identical
        to ``self.levels[j].fn(*values)`` — a lease may only elide
        round-trips (and share work across levels), never change what
        gets published.
        """
        raise NotImplementedError

    def run_once(self, snaps: dict[str, Snapshot],
                 inputs_final: bool) -> Body:
        values = self.input_values(snaps)
        last = len(self.levels) - 1
        # Fusing levels under a lease is only legal when the command
        # stream cannot depend on executor replies between the fused
        # levels: no preemption polls (same rule as DiffusiveStage).
        batchable = (self.supports_batch and self.emit_to is None
                     and self.restart_policy != "preempt")
        resume, self._resume_pass = self._resume_pass, None
        i = 0
        if resume is not None:
            # Levels are pure: resume at the first unpublished level
            # and recompute an interrupted one whole — the republished
            # ladder is bit-identical by Property 1.
            i = max(0, int(resume.get("written", 0)))
        while i <= last:
            remaining = last - i + 1
            granted = 1
            if batchable and remaining > 1:
                granted = yield Lease(remaining)
                granted = max(1, min(int(granted), remaining))
            batch = None
            if granted > 1:
                batch = self.batch_levels(values, i, granted)
            for j in range(i, i + granted):
                level = self.levels[j]
                yield Compute(level.cost,
                              label=f"{self.name}:L{j}"
                                    + (f"({level.label})" if level.label
                                       else ""))
                out = (batch[j - i] if batch is not None
                       else level.fn(*values))
                yield Write(out, final=inputs_final and j == last)
                if j != last and (yield from self.preempted()):
                    return
            i += granted

    def _capture_pass(self, written_total: int,
                      emitted_total: int) -> dict[str, Any]:
        return {"written": written_total
                - self._passes * len(self.levels)}

    def precise(self, input_values: dict[str, Any]) -> Any:
        values = tuple(input_values[b.name] for b in self.inputs)
        return self.levels[-1].fn(*values)

    @property
    def precise_cost(self) -> float:
        return self.levels[-1].cost

    @property
    def total_cost(self) -> float:
        """Work of the full anytime sequence (includes redundancy)."""
        return sum(level.cost for level in self.levels)

    @property
    def redundancy_ratio(self) -> float:
        """Anytime work over precise work (>= 1; the iterative tax)."""
        return self.total_cost / self.precise_cost
