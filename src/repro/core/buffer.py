"""Versioned output buffers (paper Properties 2 and 3).

Every anytime computation stage owns exactly one output buffer; all of its
intermediate outputs go into that buffer, no other stage may write it
(Property 2), and each write is atomic (Property 3).  Consumers take
*snapshots*: an immutable (value, version, final) triple.  A consumer never
observes a half-written value, and the model's correctness argument — "g
processes whichever output F_i happens to be in the buffer" — rests on
these two properties.

Arrays are stored with ``writeable=False`` and snapshots hand out the same
frozen array, so a misbehaving consumer that tries to mutate its input
(violating Property 1 purity) fails loudly instead of corrupting the
producer.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Any

import numpy as np

__all__ = ["Snapshot", "VersionedBuffer"]


@dataclass(frozen=True)
class Snapshot:
    """An atomic view of a buffer: value, its version and finality.

    ``version`` starts at 0 (nothing written yet, ``value is None``) and
    increments with each write.  ``final`` marks the precise output: the
    guarantee of the model is that every buffer eventually carries a final
    snapshot.  ``sealed`` marks a buffer frozen *without* reaching its
    final version — its producer degraded, so the newest version is the
    best approximation this run will ever hold (fault tolerance).
    """

    name: str
    value: Any
    version: int
    final: bool
    sealed: bool = False

    @property
    def empty(self) -> bool:
        """True when nothing has been written yet."""
        return self.version == 0

    @property
    def exhausted(self) -> bool:
        """No newer version will ever appear (final or sealed)."""
        return self.final or self.sealed


def _freeze(value: Any, transfer: bool = False) -> Any:
    """Make a value being written read-only, copying only when needed.

    The default path copies defensively: the writer may keep mutating
    its array after the write.  ``transfer=True`` is the writer's
    promise that it hands over ownership (the array is freshly
    allocated and never touched again), so the copy is skipped and the
    caller's array itself is frozen in place.  An array that is already
    non-writeable is immutable by construction and is likewise stored
    as-is — either way a version costs O(1) array allocations instead
    of O(elements).
    """
    if isinstance(value, np.ndarray):
        if not value.flags.writeable:
            return value
        if transfer:
            value.setflags(write=False)
            return value
        frozen = value.copy()
        frozen.setflags(write=False)
        return frozen
    return value


class VersionedBuffer:
    """A single-writer, atomically updated, versioned value holder.

    Parameters
    ----------
    name:
        Buffer name (unique within an automaton graph).

    Thread safety: writes and snapshots are serialized by an internal
    condition variable, which also lets threaded consumers block until a
    newer version appears (:meth:`wait_newer`).
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self._cond = threading.Condition()
        self._value: Any = None
        self._version = 0
        self._final = False
        self._sealed = False
        self._writer: str | None = None
        self._watchers: list[threading.Event] = []
        #: optional observability hook ``tracer(kind, name, **args)``,
        #: installed by an executor when tracing is enabled (see
        #: :mod:`repro.core.tracing`); called outside the lock
        self.tracer = None

    def register_writer(self, stage_name: str) -> None:
        """Claim this buffer for a stage (Property 2 enforcement).

        Raises ``ValueError`` if another stage already owns it.
        """
        with self._cond:
            if self._writer is not None and self._writer != stage_name:
                raise ValueError(
                    f"buffer {self.name!r} already written by "
                    f"{self._writer!r}; {stage_name!r} may not write it "
                    f"(Property 2)")
            self._writer = stage_name

    @property
    def writer(self) -> str | None:
        return self._writer

    @property
    def version(self) -> int:
        with self._cond:
            return self._version

    @property
    def final(self) -> bool:
        with self._cond:
            return self._final

    @property
    def sealed(self) -> bool:
        with self._cond:
            return self._sealed

    def write(self, value: Any, final: bool = False,
              writer: str | None = None, transfer: bool = False) -> int:
        """Atomically publish a new version; returns the version number.

        A buffer that has carried its final version is frozen: further
        writes are rejected (the precise output must not regress).  A
        sealed buffer likewise rejects writes — its producer degraded
        and downstream may already have finished on the sealed version.

        ``transfer=True`` declares an ownership-transfer write: the
        caller promises never to touch ``value`` again, so the
        defensive copy is skipped and the array is frozen in place
        (see :func:`_freeze`).
        """
        with self._cond:
            if writer is not None and self._writer is not None \
                    and writer != self._writer:
                raise ValueError(
                    f"stage {writer!r} wrote buffer {self.name!r} owned "
                    f"by {self._writer!r} (Property 2)")
            if self._final:
                raise ValueError(
                    f"buffer {self.name!r} is final; writes are frozen")
            if self._sealed:
                raise ValueError(
                    f"buffer {self.name!r} is sealed (producer "
                    f"degraded); writes are frozen")
            self._value = _freeze(value, transfer=transfer)
            self._version += 1
            self._final = bool(final)
            self._notify()
            version = self._version
        if self.tracer is not None:
            self.tracer("buffer.write", self.name, version=version,
                        final=bool(final), writer=writer)
        return version

    def seal(self) -> None:
        """Freeze the buffer at its current version without finality.

        Idempotent.  Consumers waiting for a newer version wake up and
        observe ``sealed=True``: the newest version is the best this
        producer will ever publish (it degraded or the run is winding
        down), so waiting longer is pointless.
        """
        with self._cond:
            already = self._sealed
            self._sealed = True
            self._notify()
            version = self._version
        if self.tracer is not None and not already:
            self.tracer("buffer.seal", self.name, version=version)

    def subscribe(self, event: threading.Event) -> None:
        """Register an event set on every write or seal.

        Lets a consumer block on *several* input buffers at once: it
        subscribes one event to each and waits on that single event
        (the threaded executor's multi-input wake-up path).
        """
        with self._cond:
            if event not in self._watchers:
                self._watchers.append(event)

    def unsubscribe(self, event: threading.Event) -> None:
        with self._cond:
            if event in self._watchers:
                self._watchers.remove(event)

    def _notify(self) -> None:
        # caller holds self._cond
        self._cond.notify_all()
        for event in self._watchers:
            event.set()

    def restore(self, value: Any, version: int, final: bool,
                sealed: bool = False) -> None:
        """Reinstate a checkpointed (value, version, final, sealed) state.

        Used by :mod:`repro.ckpt` when rebuilding a graph from a
        checkpoint: the single-writer and frozen-buffer rules guard
        *live* writes, but a restore re-creates history that already
        passed them, so it sets the fields directly.  Only legal before
        the graph is launched.
        """
        if version < 0:
            raise ValueError(f"version cannot be negative: {version}")
        with self._cond:
            self._value = _freeze(value)
            self._version = int(version)
            self._final = bool(final)
            self._sealed = bool(sealed)
            self._notify()

    def snapshot(self) -> Snapshot:
        """Atomically read (value, version, final, sealed)."""
        with self._cond:
            return Snapshot(self.name, self._value, self._version,
                            self._final, self._sealed)

    def wait_newer(self, version: int, timeout: float | None = None,
                   ) -> Snapshot:
        """Block until the buffer holds a version newer than ``version``.

        Returns the current snapshot on wake-up (which may still be the
        old version if the timeout expired).  The wait is re-armed
        across spurious wakeups and notifies for writes that do not
        satisfy the predicate, honoring the *total* ``timeout`` across
        all of them; a final or sealed buffer returns immediately
        (nothing newer can ever appear).
        """
        with self._cond:
            deadline = (None if timeout is None
                        else time.monotonic() + timeout)
            while (self._version <= version and not self._final
                   and not self._sealed):
                if deadline is None:
                    self._cond.wait()
                    continue
                remaining = deadline - time.monotonic()
                if remaining <= 0 or not self._cond.wait(remaining):
                    break
            return Snapshot(self.name, self._value, self._version,
                            self._final, self._sealed)
