"""The user-facing Anytime Automaton.

Composes a stage graph with executors, the baseline reference, stop
conditions and profile generation — the one object an application builder
hands to a user.  Typical flow::

    automaton = build_conv2d_automaton(image)      # an AnytimeAutomaton
    result = automaton.run_simulated(total_cores=32)
    profile = automaton.profile(result)            # Figure-11-style curve

or interactively::

    stop = ManualStop()
    result = automaton.run_threaded(stop=stop)     # stop.stop() any time
"""

from __future__ import annotations

from typing import Any, Callable

from ..metrics.profiles import RuntimeAccuracyProfile
from ..metrics.snr import snr_db
from .controller import StopCondition
from .executor import RunHandle, ThreadedExecutor, ThreadedResult
from .faults import FaultInjector, FaultPolicy
from .graph import AutomatonGraph
from .scheduling import SchedulingPolicy, proportional_shares
from .simexec import SimResult, SimulatedExecutor
from .stage import Stage
from .tracing import TraceSink

__all__ = ["AnytimeAutomaton"]


class AnytimeAutomaton:
    """An approximate application organized as an anytime pipeline.

    Parameters
    ----------
    stages:
        The computation stages (each owning its output buffer).
    name:
        Application name, used in reports.
    external:
        Values for buffers no stage produces (the application input
        data); they are written to those buffers as final version 1.

    An automaton instance is **single-use**: buffers carry versions and
    stages carry generator state, so each execution needs a freshly built
    automaton (application modules expose ``build_*`` functions for
    exactly this reason).  Attempting a second run raises.
    """

    def __init__(self, stages: list[Stage], name: str = "automaton",
                 external: dict[str, Any] | None = None) -> None:
        self.name = name
        self.graph = AutomatonGraph(stages)
        self.external = dict(external or {})
        for bname, value in self.external.items():
            buffer = self.graph.buffers.get(bname)
            if buffer is None:
                raise ValueError(
                    f"external value for unknown buffer {bname!r}")
            if self.graph.producer_of(bname) is not None:
                raise ValueError(
                    f"buffer {bname!r} is produced by a stage; it cannot "
                    f"be external input")
            if buffer.version == 0:
                buffer.write(value, final=True)
        for bname, buffer in self.graph.buffers.items():
            if self.graph.producer_of(bname) is None \
                    and buffer.version == 0:
                raise ValueError(
                    f"buffer {bname!r} has no producer and no external "
                    f"value")
        self._precise_cache: dict[str, Any] | None = None
        self._ran = False
        #: optional ``{"app": ..., "size": ..., "seed": ...}`` record
        #: stamped into checkpoint headers so :meth:`restore` can
        #: rebuild the graph via the app registry without a builder
        self.app_spec: dict[str, Any] | None = None
        self._resume_info: Any = None

    # -- checkpoint / restore (repro.ckpt) -------------------------------

    @classmethod
    def restore(cls, path: str,
                builder: Callable[[], "AnytimeAutomaton"] | None = None,
                ) -> "AnytimeAutomaton":
        """Rebuild an automaton from a checkpoint file.

        The graph itself is not serialized (stages hold closures); it is
        rebuilt — by ``builder`` when given, else via the app registry
        from the ``app_spec`` stamped into the checkpoint header — and
        the checkpointed state is applied on top: buffer ladders,
        channel queues, per-stage resume cursors, energy, reports and
        stop-condition progress.  The returned automaton is ready to
        ``run_*``/``launch_*`` on **any** backend, regardless of which
        executor took the checkpoint; the continuation's published
        versions are bit-exact with the uninterrupted run.
        """
        from ..ckpt.format import CheckpointError, load_checkpoint
        from ..ckpt.state import apply_to_graph

        header, payload = load_checkpoint(path)
        if builder is not None:
            automaton = builder()
        else:
            spec_info = header.get("app_spec")
            if not spec_info:
                raise CheckpointError(
                    f"checkpoint {path!r} carries no app spec; pass "
                    f"builder= to rebuild its graph")
            from ..apps.registry import get_app

            app = get_app(str(spec_info["app"]))
            data = app.make_input(int(spec_info.get("size", 64)),
                                  int(spec_info.get("seed", 0)))
            automaton = app.build(data)
            automaton.app_spec = dict(spec_info)
        automaton.name = str(payload.get("name", automaton.name))
        automaton._resume_info = apply_to_graph(automaton.graph,
                                                payload)
        return automaton

    @property
    def resumed(self) -> bool:
        """True when this automaton was built by :meth:`restore`."""
        return self._resume_info is not None

    def _bind_executor(self, executor: Any) -> None:
        """Stamp checkpoint identity onto an executor before launch."""
        executor.run_name = self.name
        executor.app_spec = self.app_spec

    # -- references ------------------------------------------------------

    @property
    def terminal_buffer_name(self) -> str:
        return self.graph.terminal_buffer().name

    def precise_values(self) -> dict[str, Any]:
        """Precise value of every buffer (cached; the baseline result)."""
        if self._precise_cache is None:
            self._precise_cache = self.graph.run_precise(self.external)
        return self._precise_cache

    def precise_output(self) -> Any:
        """The application's precise output (the figures' reference)."""
        return self.precise_values()[self.terminal_buffer_name]

    def baseline_cost(self) -> float:
        """Work units of the baseline precise execution.

        The baseline runs the stages back to back (dependences serialize
        them), each using all cores, so its virtual duration at C cores
        is ``baseline_cost() / C``.
        """
        return self.graph.baseline_cost()

    def baseline_duration(self, total_cores: float = 32.0) -> float:
        if total_cores <= 0:
            raise ValueError("total_cores must be positive")
        return self.baseline_cost() / total_cores

    # -- execution ---------------------------------------------------------

    def run_simulated(self, total_cores: float = 32.0,
                      schedule: SchedulingPolicy | dict[str, float]
                      = proportional_shares,
                      stop: StopCondition | None = None,
                      watch: set[str] | None = None,
                      dynamic_shares: bool = False,
                      faults: FaultPolicy | dict[str, FaultPolicy]
                      | None = None,
                      injector: FaultInjector | None = None,
                      strict: bool = False,
                      trace: TraceSink | None = None,
                      trace_metric: Callable[[Any, Any], float]
                      | None = None,
                      trace_reference: Any = None,
                      lease_k: int = 8,
                      checkpoint_at_stop: str | None = None) -> SimResult:
        """Deterministic virtual-time execution (the evaluation path).

        ``dynamic_shares=True`` turns the policy's shares into weights
        for generalized processor sharing: idle stages donate their
        cores (paper IV-C2's dynamic thread reassignment).
        ``faults``/``injector``/``strict`` configure the fault-tolerance
        runtime (see :mod:`repro.core.faults`);
        ``trace``/``trace_metric``/``trace_reference`` the observability
        layer (see :mod:`repro.core.tracing`); ``lease_k`` caps batched
        command leases (``1`` disables batching — outputs are
        bit-identical either way, see :class:`~repro.core.stage.Lease`).
        """
        self._claim_run()
        executor = SimulatedExecutor(self.graph, total_cores=total_cores,
                                     schedule=schedule, stop=stop,
                                     watch=watch,
                                     dynamic_shares=dynamic_shares,
                                     faults=faults, injector=injector,
                                     strict=strict, trace=trace,
                                     trace_metric=trace_metric,
                                     trace_reference=trace_reference,
                                     lease_k=lease_k,
                                     resume=self._resume_info,
                                     checkpoint_at_stop=checkpoint_at_stop)
        self._bind_executor(executor)
        return executor.run()

    def run_threaded(self, stop: StopCondition | None = None,
                     watch: set[str] | None = None,
                     timeout_s: float | None = None,
                     faults: FaultPolicy | dict[str, FaultPolicy]
                     | None = None,
                     injector: FaultInjector | None = None,
                     strict: bool = False,
                     trace: TraceSink | None = None,
                     trace_metric: Callable[[Any, Any], float]
                     | None = None,
                     trace_reference: Any = None,
                     lease_k: int = 8) -> ThreadedResult:
        """Wall-clock execution on real threads (the interactive path).

        ``faults``/``injector``/``strict`` configure the fault-tolerance
        runtime (see :mod:`repro.core.faults`);
        ``trace``/``trace_metric``/``trace_reference`` the observability
        layer (see :mod:`repro.core.tracing`).
        """
        self._claim_run()
        executor = ThreadedExecutor(self.graph, stop=stop, watch=watch,
                                    faults=faults, injector=injector,
                                    strict=strict, trace=trace,
                                    trace_metric=trace_metric,
                                    trace_reference=trace_reference,
                                    lease_k=lease_k,
                                    resume=self._resume_info)
        self._bind_executor(executor)
        return executor.run(timeout_s=timeout_s)

    def run_processes(self, stop: StopCondition | None = None,
                      watch: set[str] | None = None,
                      timeout_s: float | None = None,
                      faults: FaultPolicy | dict[str, FaultPolicy]
                      | None = None,
                      injector: FaultInjector | None = None,
                      strict: bool = False,
                      trace: TraceSink | None = None,
                      trace_metric: Callable[[Any, Any], float]
                      | None = None,
                      trace_reference: Any = None,
                      grace_s: float = 5.0,
                      lease_k: int = 8) -> ThreadedResult:
        """Wall-clock execution on one process per stage (true
        parallelism).

        Same semantics and result type as :meth:`run_threaded`, but
        stages run in forked worker processes that exchange ndarray
        payloads through shared-memory slabs instead of the GIL-bound
        thread pool (see :mod:`repro.core.procexec`).  ``grace_s``
        bounds how long shutdown waits for workers before terminating
        them.  Requires the ``fork`` start method (POSIX).
        """
        from .procexec import ProcessExecutor

        self._claim_run()
        executor = ProcessExecutor(self.graph, stop=stop, watch=watch,
                                   faults=faults, injector=injector,
                                   strict=strict, trace=trace,
                                   trace_metric=trace_metric,
                                   trace_reference=trace_reference,
                                   grace_s=grace_s, lease_k=lease_k,
                                   resume=self._resume_info)
        self._bind_executor(executor)
        return executor.run(timeout_s=timeout_s)

    def launch_threaded(self, stop: StopCondition | None = None,
                        watch: set[str] | None = None,
                        faults: FaultPolicy | dict[str, FaultPolicy]
                        | None = None,
                        injector: FaultInjector | None = None,
                        strict: bool = False,
                        trace: TraceSink | None = None,
                        trace_metric: Callable[[Any, Any], float]
                        | None = None,
                        trace_reference: Any = None,
                        lease_k: int = 8) -> RunHandle:
        """Start a threaded run without blocking; returns a
        :class:`~repro.core.executor.RunHandle`.

        The preemptible form of :meth:`run_threaded`: the caller (e.g.
        the :mod:`repro.serve` scheduler) owns the run loop — it can
        pause, resume, stop and collect the run at any moment, and the
        output buffer always holds a valid approximation.
        """
        self._claim_run()
        executor = ThreadedExecutor(self.graph, stop=stop, watch=watch,
                                    faults=faults, injector=injector,
                                    strict=strict, trace=trace,
                                    trace_metric=trace_metric,
                                    trace_reference=trace_reference,
                                    lease_k=lease_k,
                                    resume=self._resume_info)
        self._bind_executor(executor)
        return executor.launch()

    def launch_processes(self, stop: StopCondition | None = None,
                         watch: set[str] | None = None,
                         faults: FaultPolicy | dict[str, FaultPolicy]
                         | None = None,
                         injector: FaultInjector | None = None,
                         strict: bool = False,
                         trace: TraceSink | None = None,
                         trace_metric: Callable[[Any, Any], float]
                         | None = None,
                         trace_reference: Any = None,
                         grace_s: float = 5.0,
                         lease_k: int = 8) -> RunHandle:
        """Start a process-parallel run without blocking; returns a
        :class:`~repro.core.executor.RunHandle` (see
        :meth:`launch_threaded` for the preemption semantics)."""
        from .procexec import ProcessExecutor

        self._claim_run()
        executor = ProcessExecutor(self.graph, stop=stop, watch=watch,
                                   faults=faults, injector=injector,
                                   strict=strict, trace=trace,
                                   trace_metric=trace_metric,
                                   trace_reference=trace_reference,
                                   grace_s=grace_s, lease_k=lease_k,
                                   resume=self._resume_info)
        self._bind_executor(executor)
        return executor.launch()

    def _claim_run(self) -> None:
        if self._ran:
            raise RuntimeError(
                f"automaton {self.name!r} was already executed; build a "
                f"fresh one per run")
        self._ran = True

    # -- analysis -----------------------------------------------------------

    def profile(self, result: SimResult,
                total_cores: float = 32.0,
                metric: Callable[[Any, Any], float] | None = None,
                reference: Any = None,
                label: str | None = None) -> RuntimeAccuracyProfile:
        """Runtime-accuracy profile of a simulated run.

        Runtime is normalized to the baseline precise duration at the
        same core count; accuracy defaults to SNR dB against the precise
        output.
        """
        reference = (self.precise_output() if reference is None
                     else reference)
        metric = metric or snr_db
        return result.timeline.profile(
            self.terminal_buffer_name, reference,
            baseline_cost=self.baseline_duration(total_cores),
            label=label if label is not None else self.name,
            metric=metric)
