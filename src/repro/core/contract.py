"""Contract-mode execution of anytime automata.

Paper Section II-B: "Anytime algorithms can be characterized as either
contract or interruptible algorithms.  Contract algorithms make online
decisions to schedule their computations to meet a runtime deadline."
The automaton model is built around *interruptible* execution, but a
known deadline admits a stronger play: skip the intermediate accuracy
levels entirely and run each stage once, at the deepest configuration
that fits the time budget (the design-to-time idea of Garvey & Lesser).

For an iterative stage this avoids the redundant re-executions (a
dwt53-style stage with strides 8/4/2/1 and a budget for stride 2 runs
*only* stride 2); for a diffusive stage there is no redundancy to skip,
so the plan simply sizes the sample prefix.  The price is the loss of
interruptibility: a contract run produces **one** output, at (roughly)
the deadline, and misses the precise-output guarantee whenever the
budget is short — which is exactly the paper's argument for preferring
interruptible execution when the environment allows it.

The planner is a transparent heuristic: mandatory (non-anytime) stage
costs are reserved first, and the remaining work budget is split across
anytime stages proportionally to their precise cost.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from .automaton import AnytimeAutomaton
from .diffusive import DiffusiveStage
from .iterative import IterativeStage
from .simexec import SimResult
from .stage import Stage

__all__ = ["ContractPlan", "plan_contract", "run_contract"]


@dataclass
class ContractPlan:
    """A per-stage trim chosen for a work budget.

    ``iterative_levels[stage]`` is the single level index an iterative
    stage will run; ``element_limits[stage]`` the sample-prefix length
    of a diffusive stage (None = all elements).  ``planned_work`` is the
    total work units of the trimmed automaton; ``achieves_precise``
    whether every stage runs at its precise configuration.
    """

    budget_work: float
    iterative_levels: dict[str, int] = field(default_factory=dict)
    element_limits: dict[str, int | None] = field(default_factory=dict)
    planned_work: float = 0.0
    #: iterative stages planned below their precise (last) level
    trimmed_stages: set[str] = field(default_factory=set)

    @property
    def achieves_precise(self) -> bool:
        """True when every stage runs its precise configuration."""
        return not self.trimmed_stages and all(
            limit is None for limit in self.element_limits.values())


def plan_contract(automaton: AnytimeAutomaton,
                  deadline_fraction: float,
                  ) -> ContractPlan:
    """Size every stage to a deadline given as a fraction of baseline.

    ``deadline_fraction`` of the baseline precise runtime becomes the
    work budget (core count cancels out: both sides scale with it).
    Raises when even the mandatory (non-anytime) work does not fit.
    """
    if deadline_fraction <= 0:
        raise ValueError(
            f"deadline fraction must be positive: {deadline_fraction}")
    stages = automaton.graph.stages
    budget = automaton.baseline_cost() * deadline_fraction
    mandatory = sum(s.precise_cost for s in stages if not s.anytime)
    anytime_stages = [s for s in stages if s.anytime]
    if mandatory > budget:
        raise ValueError(
            f"non-anytime stages need {mandatory} work units but the "
            f"budget is {budget}")
    plan = ContractPlan(budget_work=budget)
    plan.planned_work = mandatory
    remaining = budget - mandatory
    anytime_total = sum(s.precise_cost for s in anytime_stages)
    for stage in anytime_stages:
        share = (remaining * stage.precise_cost / anytime_total
                 if anytime_total > 0 else 0.0)
        if isinstance(stage, IterativeStage):
            level = _best_level(stage, share)
            plan.iterative_levels[stage.name] = level
            plan.planned_work += stage.levels[level].cost
            if level != len(stage.levels) - 1:
                plan.trimmed_stages.add(stage.name)
        elif isinstance(stage, DiffusiveStage):
            per_element = stage.cost_per_element * stage.penalty
            limit = int(share / per_element) if per_element > 0 \
                else stage.n_elements
            limit = max(1, min(limit, stage.n_elements))
            full = limit >= stage.n_elements
            plan.element_limits[stage.name] = None if full else limit
            plan.planned_work += limit * per_element
        else:
            # custom anytime stage: run as-is, budget unenforced
            plan.planned_work += stage.precise_cost
    return plan


def _best_level(stage: IterativeStage, budget: float) -> int:
    """Deepest single level affordable within ``budget`` (at least the
    coarsest level — a contract must return *something*)."""
    best = 0
    for i, level in enumerate(stage.levels):
        if level.cost <= budget or i == 0:
            best = i
    return best


def run_contract(builder: Callable[[], AnytimeAutomaton],
                 deadline_fraction: float,
                 total_cores: float = 32.0,
                 **run_kwargs: Any,
                 ) -> tuple[ContractPlan, SimResult, AnytimeAutomaton]:
    """Plan and execute a contract run.

    ``builder`` must construct a fresh automaton per call (the first
    instance is consumed by planning, the second is trimmed and run).
    Returns (plan, result, the executed automaton).
    """
    plan = plan_contract(builder(), deadline_fraction)
    automaton = builder()
    for stage in automaton.graph.stages:
        if stage.name in plan.iterative_levels \
                and isinstance(stage, IterativeStage):
            level = plan.iterative_levels[stage.name]
            stage.levels = [stage.levels[level]]
        if stage.name in plan.element_limits \
                and isinstance(stage, DiffusiveStage):
            stage.element_limit = plan.element_limits[stage.name]
    result = automaton.run_simulated(total_cores=total_cores,
                                     **run_kwargs)
    return plan, result, automaton
