"""Benchmark harness shared by the per-figure benchmarks.

Each figure of the paper's evaluation has an experiment function in
:mod:`repro.bench.experiments` returning a :class:`FigureData`; the
pytest-benchmark targets in ``benchmarks/`` time the underlying automaton
runs and print the figure's rows.

Experiment scale is controlled by the ``REPRO_BENCH_SIZE`` environment
variable (image edge length, default 128; the paper used larger inputs —
the curves' shapes are size-stable, which
``tests/test_integration.py`` checks at two sizes).

When ``REPRO_BENCH_TRACE_DIR`` is set, every :func:`run_profile` call —
and therefore every figure regeneration — additionally writes a
chrome://tracing JSON of its run into that directory (see
:mod:`repro.core.tracing`).
"""

from __future__ import annotations

import itertools
import math
import os
from dataclasses import dataclass, field
from typing import Any, Callable

from ..core.automaton import AnytimeAutomaton
from ..core.scheduling import SchedulingPolicy, proportional_shares
from ..core.simexec import SimResult
from ..core.tracing import ChromeTraceSink, TraceSink
from ..metrics.profiles import RuntimeAccuracyProfile
from ..metrics.snr import snr_db

__all__ = ["FigureData", "bench_size", "bench_cores", "run_profile",
           "format_rows"]

#: default virtual-machine width — the paper's testbed exposes 32
#: hardware threads (two nodes x four POWER7+ cores x SMT4)
PAPER_CORES = 32.0


def bench_size(default: int = 128) -> int:
    """Image edge length for benchmarks (``REPRO_BENCH_SIZE`` override)."""
    raw = os.environ.get("REPRO_BENCH_SIZE")
    if raw is None:
        value = default
    else:
        try:
            value = int(raw)
        except ValueError:
            raise ValueError(
                f"REPRO_BENCH_SIZE must be a positive integer "
                f"(image edge length), got {raw!r}") from None
    if value < 16:
        raise ValueError(
            f"REPRO_BENCH_SIZE too small: {value} (need >= 16; "
            f"smaller inputs degenerate the anytime chunking)")
    return value


def bench_cores() -> float:
    """Simulated core count (``REPRO_BENCH_CORES`` override)."""
    raw = os.environ.get("REPRO_BENCH_CORES")
    if raw is None:
        return PAPER_CORES
    try:
        value = float(raw)
    except ValueError:
        raise ValueError(
            f"REPRO_BENCH_CORES must be a positive number, "
            f"got {raw!r}") from None
    if not math.isfinite(value) or value <= 0:
        raise ValueError(
            f"REPRO_BENCH_CORES must be positive and finite, "
            f"got {raw!r}")
    return value


#: per-process sequence for trace file names (one file per figure run)
_TRACE_SEQ = itertools.count(1)


def _bench_trace_sink(name: str) -> ChromeTraceSink | None:
    """A chrome-trace sink under ``REPRO_BENCH_TRACE_DIR`` (None = off)."""
    trace_dir = os.environ.get("REPRO_BENCH_TRACE_DIR")
    if not trace_dir:
        return None
    os.makedirs(trace_dir, exist_ok=True)
    fname = f"{next(_TRACE_SEQ):03d}-{name}.json"
    return ChromeTraceSink(os.path.join(trace_dir, fname))


@dataclass
class FigureData:
    """One reproduced figure: a titled table plus free-form notes."""

    figure: str                 # e.g. "Figure 11"
    title: str
    headers: tuple[str, ...]
    rows: list[tuple[Any, ...]] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add(self, *row: Any) -> None:
        if len(row) != len(self.headers):
            raise ValueError(
                f"row width {len(row)} != header width "
                f"{len(self.headers)}")
        self.rows.append(row)

    def note(self, text: str) -> None:
        self.notes.append(text)

    def render(self) -> str:
        lines = [f"== {self.figure}: {self.title} =="]
        lines.append(format_rows(self.headers, self.rows))
        for note in self.notes:
            lines.append(f"  note: {note}")
        return "\n".join(lines)


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        if math.isinf(value):
            return "inf" if value > 0 else "-inf"
        return f"{value:.3f}"
    return str(value)


def format_rows(headers: tuple[str, ...],
                rows: list[tuple[Any, ...]]) -> str:
    """Plain-text aligned table."""
    cells = [[_fmt(v) for v in row] for row in rows]
    widths = [max(len(h), *(len(r[i]) for r in cells)) if cells
              else len(h) for i, h in enumerate(headers)]
    out = ["  ".join(h.rjust(w) for h, w in zip(headers, widths))]
    for row in cells:
        out.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(out)


def run_profile(build: Callable[[], AnytimeAutomaton],
                cores: float | None = None,
                schedule: SchedulingPolicy | dict[str, float]
                = proportional_shares,
                metric: Callable[[Any, Any], float] | None = None,
                reference: Any = None,
                trace: TraceSink | None = None,
                ) -> tuple[RuntimeAccuracyProfile, SimResult,
                           AnytimeAutomaton]:
    """Build an automaton, run it simulated, return its profile.

    ``trace`` attaches an explicit sink (caller closes it); when omitted
    and ``REPRO_BENCH_TRACE_DIR`` is set, a chrome-trace sink is created
    per call and closed here — one trace file per figure run.
    """
    cores = bench_cores() if cores is None else cores
    automaton = build()
    owned_sink = None
    if trace is None:
        trace = owned_sink = _bench_trace_sink(automaton.name)
    if trace is not None:
        trace_metric = metric or snr_db
        trace_reference = (automaton.precise_output()
                           if reference is None else reference)
    else:
        trace_metric = trace_reference = None
    try:
        result = automaton.run_simulated(total_cores=cores,
                                         schedule=schedule,
                                         trace=trace,
                                         trace_metric=trace_metric,
                                         trace_reference=trace_reference)
    finally:
        if owned_sink is not None:
            owned_sink.close()
    profile = automaton.profile(result, total_cores=cores,
                                metric=metric, reference=reference)
    return profile, result, automaton
