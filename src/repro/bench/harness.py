"""Benchmark harness shared by the per-figure benchmarks.

Each figure of the paper's evaluation has an experiment function in
:mod:`repro.bench.experiments` returning a :class:`FigureData`; the
pytest-benchmark targets in ``benchmarks/`` time the underlying automaton
runs and print the figure's rows.

Experiment scale is controlled by the ``REPRO_BENCH_SIZE`` environment
variable (image edge length, default 128; the paper used larger inputs —
the curves' shapes are size-stable, which
``tests/test_apps_integration.py`` checks at two sizes).
"""

from __future__ import annotations

import math
import os
from dataclasses import dataclass, field
from typing import Any, Callable

from ..core.automaton import AnytimeAutomaton
from ..core.scheduling import SchedulingPolicy, proportional_shares
from ..core.simexec import SimResult
from ..metrics.profiles import RuntimeAccuracyProfile

__all__ = ["FigureData", "bench_size", "bench_cores", "run_profile",
           "format_rows"]

#: default virtual-machine width — the paper's testbed exposes 32
#: hardware threads (two nodes x four POWER7+ cores x SMT4)
PAPER_CORES = 32.0


def bench_size(default: int = 128) -> int:
    """Image edge length for benchmarks (``REPRO_BENCH_SIZE`` override)."""
    value = int(os.environ.get("REPRO_BENCH_SIZE", default))
    if value < 16:
        raise ValueError(f"REPRO_BENCH_SIZE too small: {value}")
    return value


def bench_cores() -> float:
    """Simulated core count (``REPRO_BENCH_CORES`` override)."""
    return float(os.environ.get("REPRO_BENCH_CORES", PAPER_CORES))


@dataclass
class FigureData:
    """One reproduced figure: a titled table plus free-form notes."""

    figure: str                 # e.g. "Figure 11"
    title: str
    headers: tuple[str, ...]
    rows: list[tuple[Any, ...]] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add(self, *row: Any) -> None:
        if len(row) != len(self.headers):
            raise ValueError(
                f"row width {len(row)} != header width "
                f"{len(self.headers)}")
        self.rows.append(row)

    def note(self, text: str) -> None:
        self.notes.append(text)

    def render(self) -> str:
        lines = [f"== {self.figure}: {self.title} =="]
        lines.append(format_rows(self.headers, self.rows))
        for note in self.notes:
            lines.append(f"  note: {note}")
        return "\n".join(lines)


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        if math.isinf(value):
            return "inf" if value > 0 else "-inf"
        return f"{value:.3f}"
    return str(value)


def format_rows(headers: tuple[str, ...],
                rows: list[tuple[Any, ...]]) -> str:
    """Plain-text aligned table."""
    cells = [[_fmt(v) for v in row] for row in rows]
    widths = [max(len(h), *(len(r[i]) for r in cells)) if cells
              else len(h) for i, h in enumerate(headers)]
    out = ["  ".join(h.rjust(w) for h, w in zip(headers, widths))]
    for row in cells:
        out.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(out)


def run_profile(build: Callable[[], AnytimeAutomaton],
                cores: float | None = None,
                schedule: SchedulingPolicy | dict[str, float]
                = proportional_shares,
                metric: Callable[[Any, Any], float] | None = None,
                reference: Any = None,
                ) -> tuple[RuntimeAccuracyProfile, SimResult,
                           AnytimeAutomaton]:
    """Build an automaton, run it simulated, return its profile."""
    cores = bench_cores() if cores is None else cores
    automaton = build()
    result = automaton.run_simulated(total_cores=cores,
                                     schedule=schedule)
    profile = automaton.profile(result, total_cores=cores,
                                metric=metric, reference=reference)
    return profile, result, automaton
