"""Data-plane microbenchmark (``repro bench plane``).

Measures the cost of *moving versions*, not computing them: pipe
round-trips per published version on the process backend, published
versions per wall second, and the latency of pulling a pinned snapshot
out of a run — each under command leases (``lease_k > 1``) and with
leases disabled (``lease_k = 1``, the historical one-round-trip-per-
command protocol).  Workloads are the Figure 11 (2dconv) and Figure 15
(kmeans) pipelines, whose kernels carry vectorized multi-level batching.

The machine form feeds ``BENCH_plane.json``; the committed baseline in
``benchmarks/results/`` anchors the CI perf gate
(:func:`compare_plane_baseline`).
"""

from __future__ import annotations

import os
import time
from typing import Any, Callable

from ..core.automaton import AnytimeAutomaton
from .harness import bench_size

__all__ = ["PLANE_APPS", "PLANE_EXECUTORS", "data_plane_profiles",
           "compare_plane_baseline"]

PLANE_APPS = ("2dconv", "kmeans")
PLANE_EXECUTORS = ("simulated", "threaded", "process")


def _builder(app: str, size: int,
             seed: int = 0) -> Callable[[], AnytimeAutomaton]:
    from ..apps.conv2d import build_conv2d_automaton
    from ..apps.kmeans import build_kmeans_automaton
    from ..data.images import clustered_image, scene_image

    if app == "2dconv":
        return lambda: build_conv2d_automaton(scene_image(size,
                                                          seed=seed))
    if app == "kmeans":
        ksize = max(size // 2, 16)
        return lambda: build_kmeans_automaton(
            clustered_image(ksize, seed=4, clusters=6), k=6)
    raise ValueError(f"unknown plane app {app!r}; known: {PLANE_APPS}")


def _probe_latency(snapshot: Callable[[], Any], probes: int) -> float:
    worst = 0.0
    for _ in range(max(probes, 1)):
        t0 = time.perf_counter()
        snapshot()
        worst = max(worst, time.perf_counter() - t0)
    return worst


def _measure(build: Callable[[], AnytimeAutomaton], executor: str,
             lease_k: int, snapshot_probes: int = 32) -> dict[str, Any]:
    automaton = build()
    latencies: list[float] = []
    if executor == "simulated":
        t0 = time.perf_counter()
        result = automaton.run_simulated(lease_k=lease_k)
        wall = time.perf_counter() - t0
        buffer = automaton.graph.buffers[automaton.terminal_buffer_name]
        latencies.append(_probe_latency(buffer.snapshot,
                                        snapshot_probes))
    elif executor in ("threaded", "process"):
        launch = (automaton.launch_threaded if executor == "threaded"
                  else automaton.launch_processes)
        t0 = time.perf_counter()
        handle = launch(lease_k=lease_k)
        # live pinned-snapshot polls, the serving layer's peek path
        while not handle.finished:
            s0 = time.perf_counter()
            handle.snapshot()
            latencies.append(time.perf_counter() - s0)
            time.sleep(0.002)
        result = handle.result()
        wall = time.perf_counter() - t0
        if not latencies:   # the run beat the first poll
            latencies.append(_probe_latency(handle.snapshot,
                                            snapshot_probes))
    else:
        raise ValueError(f"unknown executor {executor!r}; known: "
                         f"{PLANE_EXECUTORS}")
    versions = len(result.timeline.records)
    round_trips = sum(r.round_trips
                      for r in result.stage_reports.values())
    return {
        "lease_k": lease_k,
        "completed": bool(result.completed),
        "versions": versions,
        "wall_s": wall,
        "versions_per_s": versions / wall if wall > 0 else 0.0,
        "round_trips": round_trips,
        "round_trips_per_version": (round_trips / versions
                                    if versions else 0.0),
        "snapshot_latency_s": max(latencies),
        "snapshot_polls": len(latencies),
    }


def data_plane_profiles(size: int | None = None,
                        apps: tuple[str, ...] = PLANE_APPS,
                        executors: tuple[str, ...] = PLANE_EXECUTORS,
                        lease_k: int = 8,
                        progress: Callable[[str], None] | None = None,
                        ) -> dict[str, Any]:
    """The ``BENCH_plane.json`` document (machine form).

    Every (app, executor) cell is measured twice — ``sync`` with
    ``lease_k=1`` (the historical protocol) and ``leased`` with the
    requested ``lease_k`` — so the lease win is a self-relative number
    on the same machine and input.  ``round_trip_reduction`` (process
    cells) is sync round-trips/version over leased round-trips/version:
    the deterministic metric the CI perf gate anchors on.
    """
    if lease_k < 2:
        raise ValueError(f"lease_k must be >= 2 to compare against the "
                         f"sync protocol, got {lease_k}")
    size = size or bench_size(default=32)
    data: dict[str, Any] = {
        "size": size,
        "cpu_count": os.cpu_count(),
        "lease_k": lease_k,
        "apps": {},
    }
    for app in apps:
        build = _builder(app, size)
        entry: dict[str, Any] = {}
        for executor in executors:
            if progress:
                progress(f"  plane: {app} / {executor} ...")
            modes = {"sync": _measure(build, executor, 1),
                     "leased": _measure(build, executor, lease_k)}
            leased_rpv = modes["leased"]["round_trips_per_version"]
            sync_rpv = modes["sync"]["round_trips_per_version"]
            if leased_rpv > 0:
                modes["round_trip_reduction"] = sync_rpv / leased_rpv
            entry[executor] = modes
        data["apps"][app] = entry
    return data


def compare_plane_baseline(fresh: dict[str, Any],
                           baseline: dict[str, Any],
                           tolerance: float = 0.25,
                           wall_tolerance: float = 0.60,
                           ) -> list[str]:
    """Perf-gate comparison; returns regression descriptions (empty =
    pass).

    Machine-independent checks (always applied, ``tolerance`` band):

    - leased round-trips/version on the process backend must not exceed
      the baseline by more than ``tolerance`` — the protocol got
      chattier;
    - the sync/leased round-trip reduction must not fall below the
      baseline by more than ``tolerance`` — the lease stopped paying.

    Wall-clock check (``wall_tolerance`` band, only when ``cpu_count``
    matches the baseline — versions/sec is meaningless across machine
    classes): leased versions/sec on the process backend must not drop
    below ``(1 - wall_tolerance)`` of the baseline.
    """
    problems: list[str] = []
    same_machine = fresh.get("cpu_count") == baseline.get("cpu_count")
    for app, base_entry in baseline.get("apps", {}).items():
        fresh_entry = fresh.get("apps", {}).get(app)
        if fresh_entry is None:
            problems.append(f"{app}: missing from fresh results")
            continue
        base = base_entry.get("process")
        cur = fresh_entry.get("process")
        if not base or not cur:
            continue
        b_rpv = base["leased"]["round_trips_per_version"]
        f_rpv = cur["leased"]["round_trips_per_version"]
        if b_rpv > 0 and f_rpv > b_rpv * (1.0 + tolerance):
            problems.append(
                f"{app}: leased round-trips/version regressed "
                f"{f_rpv:.2f} vs baseline {b_rpv:.2f} "
                f"(tolerance {tolerance:.0%})")
        b_red = base.get("round_trip_reduction")
        f_red = cur.get("round_trip_reduction")
        if b_red and f_red is not None \
                and f_red < b_red * (1.0 - tolerance):
            problems.append(
                f"{app}: round-trip reduction fell to {f_red:.2f}x vs "
                f"baseline {b_red:.2f}x (tolerance {tolerance:.0%})")
        if same_machine:
            b_vps = base["leased"]["versions_per_s"]
            f_vps = cur["leased"]["versions_per_s"]
            if b_vps > 0 and f_vps < b_vps * (1.0 - wall_tolerance):
                problems.append(
                    f"{app}: leased versions/sec regressed "
                    f"{f_vps:.1f} vs baseline {b_vps:.1f} "
                    f"(tolerance {wall_tolerance:.0%})")
    return problems
