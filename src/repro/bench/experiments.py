"""Per-figure experiment definitions.

One function per table/figure of the paper (see DESIGN.md's experiment
index).  Each returns a :class:`~repro.bench.harness.FigureData` whose
rows are the series the paper plots; the pytest-benchmark targets in
``benchmarks/`` call these and print the result.
"""

from __future__ import annotations

import math
import os
from typing import Any, Callable

import numpy as np

from ..anytime.permutations import (LfsrPermutation, SequentialPermutation,
                                    TreePermutation)
from ..apps.conv2d import build_conv2d_automaton, sample_size_sweep
from ..apps.debayer import build_debayer_automaton
from ..apps.dwt53 import build_dwt53_automaton, reconstruction_metric
from ..apps.histeq import build_histeq_automaton
from ..apps.kmeans import build_kmeans_automaton, clustered_image_metric
from ..apps.pipeline_demo import ORGANIZATIONS, build_organization
from ..core.automaton import AnytimeAutomaton
from ..core.buffer import VersionedBuffer
from ..core.iterative import AccuracyLevel, IterativeStage
from ..core.scheduling import (POLICIES, equal_shares,
                               final_stage_shares, proportional_shares)
from ..data.images import bayer_mosaic, clustered_image, scene_image
from ..hw.cache import Cache, CacheConfig, trace_for_permutation
from ..hw.prefetch import run_prefetched_trace
from .harness import FigureData, bench_cores, bench_size, run_profile

__all__ = [
    "build_fig2_automaton", "fig02_pipeline_schedule",
    "fig10_organizations", "fig11_conv2d", "fig12_histeq", "fig13_dwt53",
    "fig14_debayer", "fig15_kmeans", "fig16_conv2d_output",
    "fig17_dwt53_output", "fig18_kmeans_output", "fig19_precision",
    "fig20_sram", "ablation_threads", "ablation_scheduling",
    "ablation_locality", "ablation_restart_policy",
    "ablation_prefetcher", "ablation_backends",
    "backend_wall_profiles", "extension_sram_runtime",
    "extension_contract", "extension_dynamic_shares",
    "extension_energy",
]


# ---------------------------------------------------------------------------
# Figure 2 — pipeline interleaving


def build_fig2_automaton(cost: float = 100.0, size: int = 64,
                         f_scale: float = 2.0) -> AnytimeAutomaton:
    """The paper's four-stage example: f -> (g, h) -> i, each anytime
    with n = 2 intermediate computations.

    ``f`` is ``f_scale`` times more expensive than the other stages —
    the shape the paper's scheduling discussion assumes ("allocate more
    threads to the longest stage f").
    """
    x = np.arange(size, dtype=np.int64) * 3 + 1
    b_in = VersionedBuffer("input")
    b_f = VersionedBuffer("F")
    b_g = VersionedBuffer("G")
    b_h = VersionedBuffer("H")
    b_o = VersionedBuffer("O")

    def coarse(v: np.ndarray) -> np.ndarray:
        return (np.asarray(v, np.int64) >> 4) << 4

    def two_level(fn, level_cost):
        return [AccuracyLevel(lambda *a, f=fn: coarse(f(*a)),
                              cost=level_cost, label="approx"),
                AccuracyLevel(fn, cost=level_cost, label="precise")]

    f = IterativeStage("f", b_f, (b_in,),
                       two_level(lambda x: x + 7, cost * f_scale))
    g = IterativeStage("g", b_g, (b_f,),
                       two_level(lambda F: F * 2, cost))
    h = IterativeStage("h", b_h, (b_f,),
                       two_level(lambda F: F + 100, cost))
    i = IterativeStage("i", b_o, (b_g, b_h),
                       two_level(lambda G, H: G + H, cost))
    return AnytimeAutomaton([f, g, h, i], name="fig2",
                            external={"input": x})


def fig02_pipeline_schedule() -> FigureData:
    """Output-version timeline of the Figure 2 pipeline."""
    automaton = build_fig2_automaton()
    baseline = automaton.baseline_duration(4.0)
    result = automaton.run_simulated(total_cores=4.0,
                                     schedule=equal_shares)
    fig = FigureData(
        "Figure 2", "parallel pipeline interleaving (O versions)",
        headers=("output", "runtime", "final"))
    for k, rec in enumerate(result.output_records("O"), start=1):
        fig.add(f"O_{k}", rec.time / baseline, rec.final)
    fig.note("early availability: the first whole-application output "
             "lands well before the precise one")
    return fig


# ---------------------------------------------------------------------------
# Figure 10 — organizations


def fig10_organizations(m: int = 64) -> FigureData:
    """Completion time of the five automaton organizations."""
    fig = FigureData(
        "Figure 10", "anytime automaton organizations (m x m dot "
        "product; one core per stage)",
        headers=("organization", "runtime vs baseline",
                 "first output"))
    reference: np.ndarray | None = None
    baseline_time: float | None = None
    for org in ORGANIZATIONS:
        automaton = build_organization(org, m=m)
        result = automaton.run_simulated(
            total_cores=float(len(automaton.graph.stages)),
            schedule=equal_shares)
        records = result.output_records(automaton.terminal_buffer_name)
        final = records[-1]
        if reference is None:
            reference = automaton.precise_output()
        if not np.array_equal(final.value, reference):
            raise AssertionError(
                f"organization {org!r} did not reach the precise output")
        if baseline_time is None:
            baseline_time = final.time
        fig.add(org, final.time / baseline_time,
                records[0].time / baseline_time)
    fig.note("expected ordering: sync < baseline = diffusive-async < "
             "iterative-async < iterative")
    return fig


# ---------------------------------------------------------------------------
# Figures 11-15 — runtime-accuracy profiles


def _profile_figure(figure: str, app: str, profile,
                    extra_notes: list[str] | None = None) -> FigureData:
    fig = FigureData(figure, f"{app} runtime-accuracy",
                     headers=("runtime", "SNR (dB)"))
    for runtime, snr in profile.to_rows():
        fig.add(runtime, snr)
    ttp = profile.time_to_precise
    fig.note(f"precise output (SNR inf) reached at "
             f"{ttp:.2f}x baseline" if ttp is not None
             else "precise output not reached (run was stopped)")
    for note in extra_notes or []:
        fig.note(note)
    return fig


def fig11_conv2d(size: int | None = None) -> FigureData:
    size = size or bench_size()
    image = scene_image(size, seed=0)
    profile, _, _ = run_profile(lambda: build_conv2d_automaton(image))
    return _profile_figure("Figure 11", "2dconv", profile)


def fig12_histeq(size: int | None = None) -> FigureData:
    size = size or bench_size()
    image = scene_image(size, seed=1)
    profile, _, _ = run_profile(lambda: build_histeq_automaton(image))
    return _profile_figure(
        "Figure 12", "histeq", profile,
        ["paper: precise reached at ~6x baseline due to the non-anytime "
         "CDF/normalize stages"])


def fig13_dwt53(size: int | None = None) -> FigureData:
    size = size or bench_size()
    image = scene_image(size, seed=2)
    profile, _, _ = run_profile(
        lambda: build_dwt53_automaton(image),
        metric=reconstruction_metric(), reference=image)
    return _profile_figure(
        "Figure 13", "dwt53", profile,
        ["steep curve: iterative loop perforation re-executes the "
         "transform at shrinking strides"])


def fig14_debayer(size: int | None = None) -> FigureData:
    size = size or bench_size()
    mosaic = bayer_mosaic(size, seed=3)
    profile, _, _ = run_profile(lambda: build_debayer_automaton(mosaic))
    return _profile_figure("Figure 14", "debayer", profile)


def fig15_kmeans(size: int | None = None, k: int = 6) -> FigureData:
    size = size or max(bench_size() // 2, 64)
    image = clustered_image(size, seed=4, clusters=k)
    profile, _, _ = run_profile(
        lambda: build_kmeans_automaton(image, k=k),
        schedule=final_stage_shares, metric=clustered_image_metric)
    return _profile_figure(
        "Figure 15", "kmeans", profile,
        ["final-stage scheduling policy (paper IV-C2): the reduce stage "
         "re-runs per assignment version, so boosting it shrinks the "
         "output gap"])


# ---------------------------------------------------------------------------
# Figures 16-18 — halted sample outputs


def _halted_output(figure: str, app: str, profile,
                   paper_runtime: float, paper_snr: float) -> FigureData:
    fig = FigureData(
        figure, f"{app} output halted near the paper's operating point",
        headers=("quantity", "paper", "measured"))
    snr = profile.snr_at(paper_runtime)
    fig.add("halt runtime (x baseline)", paper_runtime, paper_runtime)
    fig.add("SNR at halt (dB)", paper_snr, snr)
    target = profile.time_to_snr(paper_snr)
    fig.add("runtime to reach paper SNR", "-",
            target if target is not None else float("nan"))
    return fig


def fig16_conv2d_output(size: int | None = None) -> FigureData:
    size = size or bench_size()
    image = scene_image(size, seed=0)
    profile, _, _ = run_profile(lambda: build_conv2d_automaton(image))
    return _halted_output("Figure 16", "2dconv", profile,
                          paper_runtime=0.21, paper_snr=15.8)


def fig17_dwt53_output(size: int | None = None) -> FigureData:
    size = size or bench_size()
    image = scene_image(size, seed=2)
    profile, _, _ = run_profile(
        lambda: build_dwt53_automaton(image),
        metric=reconstruction_metric(), reference=image)
    return _halted_output("Figure 17", "dwt53", profile,
                          paper_runtime=0.78, paper_snr=16.8)


def fig18_kmeans_output(size: int | None = None, k: int = 6) -> FigureData:
    size = size or max(bench_size() // 2, 64)
    image = clustered_image(size, seed=4, clusters=k)
    profile, _, _ = run_profile(
        lambda: build_kmeans_automaton(image, k=k),
        schedule=final_stage_shares, metric=clustered_image_metric)
    return _halted_output("Figure 18", "kmeans", profile,
                          paper_runtime=0.63, paper_snr=16.7)


# ---------------------------------------------------------------------------
# Figures 19-20 — precision and approximate-storage sweeps


def fig19_precision(size: int | None = None) -> FigureData:
    """2dconv sample size vs SNR at 8/6/4/2-bit pixel precision."""
    size = size or bench_size()
    image = scene_image(size, seed=0)
    fig = FigureData(
        "Figure 19", "2dconv accuracy vs sample size, by pixel precision",
        headers=("bits", "sample fraction", "SNR (dB)"))
    n = image.size
    for bits in (8, 6, 4, 2):
        for count, snr in sample_size_sweep(image, pixel_bits=bits):
            fig.add(bits, count / n, snr)
    fig.note("paper full-sample anchors: 6-bit ~37.9 dB, 4-bit ~24.2 dB")
    return fig


def fig20_sram(size: int | None = None) -> FigureData:
    """2dconv sample size vs SNR under SRAM read upsets."""
    size = size or bench_size()
    image = scene_image(size, seed=0)
    fig = FigureData(
        "Figure 20",
        "2dconv accuracy vs sample size, by SRAM read-upset probability",
        headers=("upset prob", "sample fraction", "SNR (dB)"))
    n = image.size
    for prob, label in ((0.0, "0%"), (1e-7, "0.00001%"),
                        (1e-5, "0.001%")):
        for count, snr in sample_size_sweep(image, read_upset_prob=prob,
                                            seed=7):
            fig.add(label, count / n, snr)
    fig.note("curves overlay at small sample sizes: flips scale with "
             "elements processed (paper IV-B2)")
    return fig


# ---------------------------------------------------------------------------
# Ablations (paper Section IV-C)


def ablation_threads(size: int = 4096) -> FigureData:
    """Multi-threaded sampling (IV-C1): cyclic splits preserve coverage."""
    from ..anytime.permutations import split_blocked, split_cyclic

    fig = FigureData(
        "Ablation A", "multi-threaded sampling: global coverage after "
        "each worker processed k elements",
        headers=("permutation", "workers", "split", "k",
                 "coverage matches prefix"))
    for perm in (TreePermutation(), LfsrPermutation(seed=3)):
        order = perm.order(size)
        for workers in (2, 8, 32):
            for split_name, split in (("cyclic", split_cyclic),
                                      ("blocked", split_blocked)):
                parts = split(order, workers)
                k = min(len(p) for p in parts) // 2
                done = np.concatenate([p[:k] for p in parts])
                prefix = set(order[:k * workers].tolist())
                fig.add(perm.name, workers, split_name, k,
                        set(done.tolist()) == prefix)
    fig.note("cyclic splits keep the first k*workers elements of the "
             "global sequence complete; blocked splits do not")
    return fig


def ablation_scheduling(cost: float = 100.0) -> FigureData:
    """Pipeline scheduling (IV-C2): allocation policy tradeoffs."""
    fig = FigureData(
        "Ablation B", "scheduling policy vs first-output time and "
        "output gap (Figure 2 pipeline, 8 cores)",
        headers=("f/other cost", "policy", "first output", "mean gap",
                 "time to precise"))
    for f_scale in (2.0, 10.0):
        for name, policy in POLICIES.items():
            automaton = build_fig2_automaton(cost=cost, f_scale=f_scale)
            result = automaton.run_simulated(total_cores=8.0,
                                             schedule=policy)
            records = result.output_records("O")
            times = [r.time for r in records]
            gaps = np.diff(times)
            fig.add(f_scale, name, times[0],
                    float(gaps.mean()) if len(gaps) else 0.0, times[-1])
    fig.note("final-stage allocation minimizes the inter-output gap in "
             "both pipeline shapes (paper IV-C2); boosting the longest "
             "stage only pays off when it truly dominates")
    fig.note("correctness is schedule-independent; only the output "
             "granularity moves")
    return fig


def ablation_locality(elements: int = 16384) -> FigureData:
    """Data locality (IV-C3): cache miss rates and DRAM row-buffer hit
    rates by permutation, with and without a permutation-aware
    prefetcher."""
    from ..hw.rowbuffer import RowBufferModel

    fig = FigureData(
        "Ablation C", "cache and row-buffer locality of sampling "
        "permutations",
        headers=("permutation", "miss rate", "prefetched miss rate",
                 "row-buffer hit rate"))
    config = CacheConfig(size_bytes=8 * 1024, line_bytes=64, ways=4)
    for perm in (SequentialPermutation(), TreePermutation(),
                 LfsrPermutation(seed=5)):
        trace = trace_for_permutation(perm.order(elements),
                                      element_bytes=4)
        plain = Cache(config)
        plain.run_trace(trace)
        fetched = run_prefetched_trace(trace, Cache(config), depth=16)
        rows = RowBufferModel().run_trace(trace)
        fig.add(perm.name, plain.stats.miss_rate, fetched.miss_rate,
                rows.hit_rate)
    fig.note("motivates DEFAULT_ACCESS_PENALTIES and the prefetcher "
             "discount (paper IV-C3)")
    fig.note("the tree order additionally aliases its early "
             "power-of-two strides onto one cache set — a conflict "
             "pathology prefetch depth cannot fix")
    return fig


def _time_to_snr_fraction(records, metric, reference,
                          fraction: float = 0.9,
                          ) -> tuple[float | None, float | None]:
    """Wall time of the first record reaching ``fraction`` x the best
    finite SNR of the run (None when no record has finite SNR)."""
    snrs = [metric(rec.value, reference) for rec in records]
    finite = [s for s in snrs if math.isfinite(s)]
    if not finite:
        return None, None
    target = fraction * max(finite)
    for rec, snr in zip(records, snrs):
        if snr >= target:
            return rec.time, target
    return None, target


def backend_wall_profiles(size: int | None = None,
                          backends: tuple[str, ...] = ("threaded",
                                                       "process"),
                          ) -> dict[str, Any]:
    """Wall-clock comparison of the execution backends (machine form).

    Runs the Figure 11 (2dconv) and Figure 15 (kmeans) workloads under
    each requested backend and records total wall time plus the time to
    reach 90% of the run's best finite SNR — the number the process
    executor exists to improve.  This measures real elapsed seconds, so
    the ratios only mean something on a multi-core machine; single-core
    CI boxes should read the ``cpu_count`` field before judging them.

    ``repro bench --json`` serializes exactly this dict (see
    :mod:`repro.cli`); :func:`ablation_backends` renders it as a figure
    table.
    """
    import time

    size = size or bench_size()
    ksize = max(size // 2, 64)

    def _runner(backend: str) -> Callable[[AnytimeAutomaton], Any]:
        if backend == "threaded":
            return lambda a: a.run_threaded()
        if backend == "process":
            return lambda a: a.run_processes()
        raise ValueError(f"unknown backend {backend!r}")

    workloads: list[tuple[str, Callable[[], AnytimeAutomaton],
                          Callable[[Any, Any], float]]] = [
        ("fig11_conv2d",
         lambda: build_conv2d_automaton(scene_image(size, seed=0)),
         None),
        ("fig15_kmeans",
         lambda: build_kmeans_automaton(
             clustered_image(ksize, seed=4, clusters=6), k=6),
         clustered_image_metric),
    ]
    from ..metrics.snr import snr_db

    data: dict[str, Any] = {
        "size": size,
        "cpu_count": os.cpu_count(),
        "snr_fraction": 0.9,
        "figures": {},
    }
    for fig_name, build, metric in workloads:
        metric = metric or snr_db
        reference = build().precise_output()
        entry: dict[str, Any] = {}
        for backend in backends:
            automaton = build()
            start = time.perf_counter()
            result = _runner(backend)(automaton)
            wall = time.perf_counter() - start
            records = result.output_records(
                automaton.terminal_buffer_name)
            t90, target = _time_to_snr_fraction(records, metric,
                                                reference)
            entry[backend] = {
                "wall_s": wall,
                "t90_s": t90,
                "t90_target_db": target,
                "outputs": len(records),
                "completed": result.completed,
            }
        if ("threaded" in entry and "process" in entry
                and entry["threaded"]["t90_s"]  # not None and nonzero
                and entry["process"]["t90_s"] is not None):
            entry["process_vs_threaded_t90"] = (
                entry["process"]["t90_s"] / entry["threaded"]["t90_s"])
        data["figures"][fig_name] = entry
    return data


def ablation_backends(size: int | None = None) -> FigureData:
    """Execution backends (wall clock): threaded vs process executor.

    The process executor forks one worker per stage and moves ndarray
    versions through shared-memory slab rings, so stages truly overlap;
    the threaded executor serializes compute on the GIL.  On a >= 4-core
    machine the process backend should reach 90% of the final SNR in
    well under the threaded wall time; on one core it only pays fork
    and IPC overhead.
    """
    data = backend_wall_profiles(size)
    fig = FigureData(
        "Ablation J", "execution backends: wall seconds and time to "
        "90% of best SNR",
        headers=("figure", "backend", "wall (s)", "t90 (s)", "outputs"))
    for fig_name, entry in data["figures"].items():
        for backend, row in entry.items():
            if not isinstance(row, dict):
                continue
            fig.add(fig_name, backend, row["wall_s"],
                    row["t90_s"] if row["t90_s"] is not None
                    else float("nan"), row["outputs"])
    fig.note(f"measured on {data['cpu_count']} CPU core(s); backend "
             f"ratios are only meaningful with >= 4 cores")
    fig.note("the simulated executor is excluded: it runs in virtual "
             "time and is the evaluation yardstick, not a wall-clock "
             "contender")
    return fig


# ---------------------------------------------------------------------------
# Extensions beyond the paper's figures


def ablation_restart_policy(size: int | None = None) -> FigureData:
    """Restart policy (complete vs preempt) on histeq's apply stage.

    The paper's asynchronous pipeline lets a child finish its current
    pass before looking at newer input versions; preempting instead
    abandons stale passes, reaching the precise output earlier at the
    cost of fewer intermediate outputs.
    """
    from ..apps.histeq import build_histeq_automaton

    size = size or max((bench_size()) // 2, 64)
    image = scene_image(size, seed=1)
    fig = FigureData(
        "Extension D", "histeq restart policy: complete vs preempt",
        headers=("policy", "time to precise", "output versions"))
    for policy in ("complete", "preempt"):
        profile, _, _ = run_profile(
            lambda: build_histeq_automaton(image, restart_policy=policy))
        fig.add(policy, profile.time_to_precise, len(profile))
    fig.note("preempting stale passes trades intermediate outputs for "
             "an earlier precise finish")
    return fig


def ablation_prefetcher(size: int | None = None) -> FigureData:
    """The three IV-C3 locality mitigations applied end to end.

    plain (penalty 1.8x) vs permutation-aware prefetcher (1.1x) vs
    near-data in-memory reordering (sequential access + one streaming
    reorder pass per execution).
    """
    from ..apps.conv2d import build_conv2d_automaton
    from ..apps.debayer import build_debayer_automaton

    size = size or max(bench_size() // 2, 64)
    fig = FigureData(
        "Extension E", "app time-to-precise under the IV-C3 locality "
        "mitigations",
        headers=("app", "plain", "prefetched", "reordered"))
    image = scene_image(size, seed=0)
    mosaic = bayer_mosaic(size, seed=3)
    for name, build in (
            ("2dconv", lambda kw: build_conv2d_automaton(image, **kw)),
            ("debayer", lambda kw: build_debayer_automaton(
                mosaic, **kw))):
        times = []
        for kw in ({}, {"prefetcher": True}, {"reorder": True}):
            profile, _, _ = run_profile(lambda: build(kw))
            times.append(profile.time_to_precise)
        fig.add(name, *times)
    fig.note("paper IV-C3: deterministic permutations admit simple "
             "prefetchers, and static permutations allow in-memory "
             "reordering — which removes the penalty entirely for one "
             "cheap streaming pass")
    return fig


def extension_sram_runtime(size: int | None = None) -> FigureData:
    """Runtime-accuracy of conv2d on drowsy SRAM (iterative, III-B1).

    Complements Figure 20's sample-size view: the automaton re-executes
    the convolution at rising supply voltage, flushing between levels.
    """
    from ..apps.conv2d import conv2d_precise
    from ..apps.conv2d_storage import build_conv2d_sram_automaton
    from ..hw.sram import VoltageLevel
    from ..metrics.snr import snr_db

    size = size or max(bench_size() // 2, 64)
    image = scene_image(size, seed=0)
    reference = conv2d_precise(image)
    fig = FigureData(
        "Extension F", "2dconv on drowsy SRAM: runtime-accuracy of the "
        "iterative voltage ladder",
        headers=("level", "runtime", "SNR (dB)"))
    # A hotter ladder than Figure 20's: the benchmark images are small,
    # so the paper's per-bit probabilities would flip < 1 bit per level
    # and every version would be exact.
    ladder = (VoltageLevel("0.1%", 1e-3, 0.05),
              VoltageLevel("0.01%", 1e-4, 0.15),
              VoltageLevel("nominal", 0.0, 1.0))
    automaton = build_conv2d_sram_automaton(image, ladder=ladder,
                                            seed=11)
    baseline = automaton.baseline_duration(bench_cores())
    result = automaton.run_simulated(total_cores=bench_cores())
    stage = automaton.graph.stages[0]
    for level, record in zip(stage.levels,
                             result.output_records("filtered")):
        fig.add(level.label, record.time / baseline,
                snr_db(record.value, reference))
    fig.note("storage upsets are destructive: each level flushes the "
             "array before computing (paper III-B1)")
    return fig


def extension_contract(size: int | None = None) -> FigureData:
    """Contract vs interruptible execution at fixed deadlines (II-B).

    Knowing the deadline up front lets a contract run skip the coarse
    iterative passes; interruptible execution keeps the anytime
    guarantees but carries the redundant-work tax to the deadline.
    """
    from ..apps.dwt53 import build_dwt53_automaton, reconstruction_metric
    from ..core.contract import run_contract
    from ..core.controller import DeadlineStop

    size = size or max(bench_size() // 2, 64)
    image = scene_image(size, seed=2)
    metric = reconstruction_metric()
    cores = bench_cores()
    fig = FigureData(
        "Extension G", "dwt53: contract vs interruptible at a known "
        "deadline",
        headers=("deadline", "interruptible SNR", "contract SNR"))
    for fraction in (0.3, 0.7, 1.2, 2.5):
        inter = build_dwt53_automaton(image)
        deadline = inter.baseline_duration(cores) * fraction
        res = inter.run_simulated(total_cores=cores,
                                  stop=DeadlineStop(deadline))
        records = res.output_records("coeffs")
        inter_snr = (metric(records[-1].value, image) if records
                     else float("-inf"))
        _, cres, _ = run_contract(
            lambda: build_dwt53_automaton(image), fraction,
            total_cores=cores)
        crecords = cres.output_records("coeffs")
        contract_snr = metric(crecords[-1].value, image)
        fig.add(fraction, inter_snr, contract_snr)
    fig.note("the contract run wins at tight deadlines but gives up "
             "interruptibility and the eventual-precision guarantee")
    return fig


def extension_dynamic_shares(size: int | None = None) -> FigureData:
    """Dynamic core reallocation (IV-C2's future-work scheduler).

    Generalized processor sharing: a stage that blocks or finishes
    donates its cores.  Pipelines with idle phases (histeq's apply
    waiting on the histogram; kmeans' reduce between assignment
    versions) gain the most; outputs are bit-identical either way.
    """
    from ..apps.histeq import build_histeq_automaton
    from ..apps.kmeans import build_kmeans_automaton

    size = size or max(bench_size() // 2, 64)
    image = scene_image(size, seed=1)
    rgb = clustered_image(size // 2, seed=4, clusters=6)
    fig = FigureData(
        "Extension H", "time-to-precise under static vs dynamic core "
        "assignment",
        headers=("app", "static", "dynamic"))
    cores = bench_cores()
    for name, build, schedule in (
            ("histeq", lambda: build_histeq_automaton(image),
             proportional_shares),
            ("kmeans", lambda: build_kmeans_automaton(rgb, k=6),
             final_stage_shares)):
        times = []
        for dyn in (False, True):
            automaton = build()
            result = automaton.run_simulated(total_cores=cores,
                                             schedule=schedule,
                                             dynamic_shares=dyn)
            final = result.timeline.final_record(
                automaton.terminal_buffer_name)
            times.append(final.time
                         / automaton.baseline_duration(cores))
        fig.add(name, times[0], times[1])
    fig.note("idle stages donate their cores; final outputs are "
             "bit-identical under both schedulers")
    return fig


def extension_energy(size: int | None = None) -> FigureData:
    """Energy-to-acceptability across the applications.

    The automaton's promise is that acceptability governs *time and
    energy*: this table reports the fraction of the full run's energy
    each app spends to reach a mid-quality (15 dB) and a high-quality
    (25 dB) output.
    """
    from ..apps.conv2d import build_conv2d_automaton
    from ..apps.debayer import build_debayer_automaton
    from ..apps.histeq import build_histeq_automaton

    size = size or max(bench_size() // 2, 64)
    image = scene_image(size, seed=0)
    mosaic = bayer_mosaic(size, seed=3)
    fig = FigureData(
        "Extension I", "energy fraction to reach a target SNR",
        headers=("app", "15 dB", "25 dB"))
    for name, build in (
            ("2dconv", lambda: build_conv2d_automaton(image)),
            ("histeq", lambda: build_histeq_automaton(
                scene_image(size, seed=1))),
            ("debayer", lambda: build_debayer_automaton(mosaic))):
        profile, result, automaton = run_profile(build)
        total = result.energy
        cells = []
        for target in (15.0, 25.0):
            energy = profile.energy_to_snr(target)
            cells.append(energy / total if energy is not None
                         else float("nan"))
        fig.add(name, *cells)
    fig.note("energy is cumulative abstract work units (see "
             "repro.hw.energy); stopping early saves proportionally")
    return fig
