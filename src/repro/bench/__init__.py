"""Benchmark harness: experiment definitions regenerating every figure."""

from .experiments import (ablation_backends, ablation_locality,
                          ablation_prefetcher, ablation_restart_policy,
                          ablation_scheduling, ablation_threads,
                          backend_wall_profiles, build_fig2_automaton,
                          extension_contract, extension_dynamic_shares,
                          extension_energy, extension_sram_runtime,
                          fig02_pipeline_schedule, fig10_organizations,
                          fig11_conv2d, fig12_histeq, fig13_dwt53,
                          fig14_debayer, fig15_kmeans,
                          fig16_conv2d_output, fig17_dwt53_output,
                          fig18_kmeans_output, fig19_precision,
                          fig20_sram)
from .harness import (FigureData, bench_cores, bench_size, format_rows,
                      run_profile)
from .plane import (compare_plane_baseline, data_plane_profiles,
                    PLANE_APPS, PLANE_EXECUTORS)

__all__ = [
    "ablation_backends", "ablation_locality", "ablation_prefetcher",
    "ablation_restart_policy", "ablation_scheduling", "ablation_threads",
    "backend_wall_profiles",
    "extension_contract", "extension_dynamic_shares",
    "extension_energy", "extension_sram_runtime",
    "build_fig2_automaton", "fig02_pipeline_schedule",
    "fig10_organizations", "fig11_conv2d", "fig12_histeq", "fig13_dwt53",
    "fig14_debayer", "fig15_kmeans", "fig16_conv2d_output",
    "fig17_dwt53_output", "fig18_kmeans_output", "fig19_precision",
    "fig20_sram",
    "FigureData", "bench_cores", "bench_size", "format_rows",
    "run_profile",
    "compare_plane_baseline", "data_plane_profiles",
    "PLANE_APPS", "PLANE_EXECUTORS",
]
