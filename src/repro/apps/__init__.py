"""Evaluation applications (PERFECT and AxBench, reimplemented).

Each module provides the precise baseline computation and a
``build_*_automaton`` factory constructing the paper's anytime pipeline
for that application (Section IV-A2).
"""

from .conv2d import (blur_kernel, build_conv2d_automaton, conv2d_elements,
                     conv2d_precise, sample_size_sweep)
from .conv2d_storage import (build_conv2d_sram_automaton,
                             sram_energy_report)
from .debayer import (build_debayer_automaton, debayer_elements,
                      debayer_precise)
from .dwt53 import (build_dwt53_automaton, dwt53_forward, dwt53_inverse,
                    dwt53_perforated, reconstruct, reconstruction_metric)
from .histeq import (build_histeq_automaton, equalization_lut,
                     histeq_precise, histogram, lut_from_cdf)
from .kmeans import (KMeansAssignStage, assign_pixels,
                     build_kmeans_automaton, clustered_image_metric,
                     initial_centroids, kmeans_precise)
from .search import (build_search_automaton, make_corpus, recall_at_k,
                     search_precise)

__all__ = [
    "blur_kernel", "build_conv2d_automaton", "conv2d_elements",
    "conv2d_precise", "sample_size_sweep",
    "build_conv2d_sram_automaton", "sram_energy_report",
    "build_debayer_automaton", "debayer_elements", "debayer_precise",
    "build_dwt53_automaton", "dwt53_forward", "dwt53_inverse",
    "dwt53_perforated", "reconstruct", "reconstruction_metric",
    "build_histeq_automaton", "equalization_lut", "histeq_precise",
    "histogram", "lut_from_cdf",
    "KMeansAssignStage", "assign_pixels", "build_kmeans_automaton",
    "clustered_image_metric", "initial_centroids", "kmeans_precise",
    "build_search_automaton", "make_corpus", "recall_at_k",
    "search_precise",
]
