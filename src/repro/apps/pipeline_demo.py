"""The paper's summary example (Figure 10): five automaton organizations.

Stage ``f`` processes sensor input ``I`` into a fixed-point matrix ``F``
(modelled as the identity over 8-bit data, split into a high nibble
``[AA]`` and a low nibble ``[.BB]``); dependent stage ``g`` computes the
dot product ``F @ C``.  The five organizations compared in Figure 10:

1. **baseline** — precise ``f`` then precise ``g``.
2. **f iterative** — no pipeline: the whole application re-executes at
   half then full precision (one fused sequential stage).
3. **f iterative, asynchronous pipeline** — ``f``'s half- and
   full-precision passes feed ``g`` through a buffer; ``g`` re-runs per
   version, at a cost proportional to the operand precision.
4. **f diffusive, asynchronous pipeline** — ``f`` adds the low nibble to
   its previous output instead of recomputing, halving its total work.
5. **f diffusive, g distributive, synchronous pipeline** — ``g``
   receives the nibble *updates* and folds ``X_i @ C`` into its
   accumulator: no stage repeats any work, and the precise output
   arrives before the baseline finishes.

Run each organization with one core per stage (Figure 10's drawing is
one execution unit per stage) and compare the virtual completion times:
the expected ordering is ``sync < baseline = diffusive-async <
iterative-async < iterative``.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from ..core.automaton import AnytimeAutomaton
from ..core.buffer import Snapshot, VersionedBuffer
from ..core.channel import UpdateChannel
from ..core.diffusive import DiffusiveStage
from ..core.iterative import AccuracyLevel, IterativeStage
from ..core.stage import Body, Compute, PreciseStage, Stage, Write
from ..core.syncstage import SynchronousStage

__all__ = ["ORGANIZATIONS", "build_organization", "sensor_input",
           "weight_matrix", "precise_result"]

_HI = 0xF0
_LO = 0x0F


def sensor_input(m: int = 64, seed: int = 0) -> np.ndarray:
    """The sensor matrix ``I`` (8-bit fixed-point samples)."""
    rng = np.random.default_rng(seed)
    return rng.integers(0, 256, size=(m, m), dtype=np.int64)


def weight_matrix(m: int = 64, seed: int = 1) -> np.ndarray:
    """The constant matrix ``C`` the dependent stage multiplies by."""
    rng = np.random.default_rng(seed)
    return rng.integers(-8, 9, size=(m, m), dtype=np.int64)


def precise_result(sensor: np.ndarray, weights: np.ndarray) -> np.ndarray:
    return np.asarray(sensor, dtype=np.int64) @ weights


def _costs(m: int) -> tuple[float, float]:
    """(cost of f, cost of g) — equal by construction so the five bars
    of Figure 10 are directly comparable."""
    work = float(m) ** 3
    return work, work


class _PrecisionDotStage(Stage):
    """``g``: dot product whose cost scales with the operand precision.

    Consumes ``(matrix, bits)`` tuples from ``f``; a half-precision input
    costs half the multiply-accumulate work (bit-serial arithmetic).
    """

    def __init__(self, name: str, output: VersionedBuffer,
                 f_buffer: VersionedBuffer, weights: np.ndarray,
                 full_cost: float) -> None:
        super().__init__(name, output, (f_buffer,))
        self.weights = np.asarray(weights, dtype=np.int64)
        self.full_cost = float(full_cost)

    def run_once(self, snaps: dict[str, Snapshot],
                 inputs_final: bool) -> Body:
        matrix, bits = snaps[self.inputs[0].name].value
        yield Compute(self.full_cost * bits / 8.0,
                      label=f"{self.name}:{bits}b")
        yield Write(np.asarray(matrix, np.int64) @ self.weights,
                    final=inputs_final)

    def precise(self, input_values: dict[str, Any]) -> np.ndarray:
        matrix, _bits = input_values[self.inputs[0].name]
        return np.asarray(matrix, np.int64) @ self.weights

    @property
    def precise_cost(self) -> float:
        return self.full_cost


class _NibbleDiffusionStage(DiffusiveStage):
    """``f`` as a diffusive stage: high nibble first, low nibble added.

    Element space = the two bit groups (sequential permutation: most
    significant first); each chunk's update is the nibble matrix, which a
    synchronous child can multiply independently.
    """

    def __init__(self, name: str, output: VersionedBuffer,
                 sensor_in: VersionedBuffer, cost_f: float,
                 emit_to: UpdateChannel | None = None) -> None:
        from ..anytime.permutations import SequentialPermutation

        super().__init__(name, output, (sensor_in,), shape=2,
                         permutation=SequentialPermutation(), chunks=2,
                         cost_per_element=cost_f / 2.0, emit_to=emit_to)

    def init_state(self, values: tuple[Any, ...]) -> dict[str, Any]:
        return {"acc": np.zeros_like(np.asarray(values[0], np.int64)),
                "bits": 0}

    def process_chunk(self, state: dict[str, Any], indices: np.ndarray,
                      values: tuple[Any, ...]) -> Any:
        sensor = np.asarray(values[0], dtype=np.int64)
        mask = _HI if indices[0] == 0 else _LO
        nibble = sensor & mask
        state["acc"] = state["acc"] + nibble
        state["bits"] += 4
        return nibble

    def materialize(self, state: dict[str, Any], count: int,
                    values: tuple[Any, ...]) -> tuple[np.ndarray, int]:
        return state["acc"].copy(), state["bits"]

    def precise(self, input_values: dict[str, Any],
                ) -> tuple[np.ndarray, int]:
        return (np.asarray(input_values[self.inputs[0].name],
                           np.int64).copy(), 8)


def _build_baseline(sensor, weights, cf, cg) -> AnytimeAutomaton:
    b_in = VersionedBuffer("I")
    b_f = VersionedBuffer("F")
    b_g = VersionedBuffer("G")
    f = PreciseStage("f", b_f, (b_in,),
                     lambda i: (np.asarray(i, np.int64).copy(), 8),
                     cost=cf)
    g = _PrecisionDotStage("g", b_g, b_f, weights, full_cost=cg)
    return AnytimeAutomaton([f, g], name="fig10-baseline",
                            external={"I": sensor})


def _build_iterative_fused(sensor, weights, cf, cg) -> AnytimeAutomaton:
    b_in = VersionedBuffer("I")
    b_g = VersionedBuffer("G")

    def at_bits(mask: int):
        return lambda i: (np.asarray(i, np.int64) & mask) @ weights

    stage = IterativeStage(
        "fg", b_g, (b_in,),
        [AccuracyLevel(at_bits(_HI), cost=(cf + cg) / 2.0,
                       label="half"),
         AccuracyLevel(at_bits(0xFF), cost=cf + cg, label="full")])
    return AnytimeAutomaton([stage], name="fig10-iterative",
                            external={"I": sensor})


def _build_iterative_async(sensor, weights, cf, cg) -> AnytimeAutomaton:
    b_in = VersionedBuffer("I")
    b_f = VersionedBuffer("F")
    b_g = VersionedBuffer("G")
    f = IterativeStage(
        "f", b_f, (b_in,),
        [AccuracyLevel(
            lambda i: ((np.asarray(i, np.int64) & _HI), 4),
            cost=cf / 2.0, label="half"),
         AccuracyLevel(
            lambda i: (np.asarray(i, np.int64).copy(), 8),
            cost=cf, label="full")])
    g = _PrecisionDotStage("g", b_g, b_f, weights, full_cost=cg)
    return AnytimeAutomaton([f, g], name="fig10-iterative-async",
                            external={"I": sensor})


def _build_diffusive_async(sensor, weights, cf, cg) -> AnytimeAutomaton:
    b_in = VersionedBuffer("I")
    b_f = VersionedBuffer("F")
    b_g = VersionedBuffer("G")
    f = _NibbleDiffusionStage("f", b_f, b_in, cost_f=cf)
    g = _PrecisionDotStage("g", b_g, b_f, weights, full_cost=cg)
    return AnytimeAutomaton([f, g], name="fig10-diffusive-async",
                            external={"I": sensor})


def _build_sync(sensor, weights, cf, cg) -> AnytimeAutomaton:
    b_in = VersionedBuffer("I")
    b_f = VersionedBuffer("F")
    b_g = VersionedBuffer("G")
    channel = UpdateChannel("F", capacity=1)
    f = _NibbleDiffusionStage("f", b_f, b_in, cost_f=cf,
                              emit_to=channel)
    w = np.asarray(weights, dtype=np.int64)
    g = SynchronousStage(
        "g", b_g, channel,
        initial_fn=lambda: np.zeros((sensor.shape[0], w.shape[1]),
                                    dtype=np.int64),
        update_fn=lambda acc, x: acc + np.asarray(x, np.int64) @ w,
        update_cost=lambda x: cg / 2.0,
        precise_fn=lambda fv: np.asarray(fv[0], np.int64) @ w,
        precise_cost=cg)
    return AnytimeAutomaton([f, g], name="fig10-sync",
                            external={"I": sensor})


#: organization name -> builder(sensor, weights, cf, cg)
ORGANIZATIONS = {
    "baseline": _build_baseline,
    "iterative": _build_iterative_fused,
    "iterative-async": _build_iterative_async,
    "diffusive-async": _build_diffusive_async,
    "sync": _build_sync,
}


def build_organization(name: str, m: int = 64,
                       seed: int = 0) -> AnytimeAutomaton:
    """Build one of the five Figure 10 organizations.

    Run it with one core per stage (``total_cores=len(stages)``, equal
    shares) to reproduce the figure's one-unit-per-stage timing.
    """
    if name not in ORGANIZATIONS:
        raise KeyError(
            f"unknown organization {name!r}; known: "
            f"{sorted(ORGANIZATIONS)}")
    sensor = sensor_input(m, seed=seed)
    weights = weight_matrix(m, seed=seed + 1)
    cf, cg = _costs(m)
    return ORGANIZATIONS[name](sensor, weights, cf, cg)
