"""Anytime document search — the paper's motivating scenario.

"Imagine typing a search engine query and instead of pressing the enter
key, you hold it based on the desired amount of precision in the search."
This application realizes that story with the model's machinery:

- a synthetic corpus of documents (bags of term weights);
- a **diffusive input-sampled reduction** over documents with an LFSR
  permutation (documents are unordered — memory order would bias early
  results toward low document ids, paper III-B2);
- the combining operator is a **top-k merge**, which is commutative and
  *idempotent* (merging a result set with itself changes nothing), so —
  unlike the histogram — no ``n / i`` weighting is needed;
- the output at any instant is the best-k documents *seen so far*: a
  valid search result that only improves as more of the corpus is
  scanned, reaching the exact top-k when the automaton finishes.

Recall@k against the precise result is the natural accuracy metric.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from ..anytime.operators import Operator
from ..anytime.permutations import LfsrPermutation
from ..core.automaton import AnytimeAutomaton
from ..core.buffer import VersionedBuffer
from ..core.reduction import ReductionStage

__all__ = ["SearchCorpus", "make_corpus", "score_documents",
           "topk_merge_operator", "build_search_automaton",
           "search_precise", "recall_at_k", "recall_metric"]


@dataclass(frozen=True)
class SearchCorpus:
    """A corpus as a dense document-term weight matrix."""

    weights: np.ndarray       # (n_docs, n_terms) float64

    @property
    def n_docs(self) -> int:
        return self.weights.shape[0]

    @property
    def n_terms(self) -> int:
        return self.weights.shape[1]


def make_corpus(n_docs: int = 4096, n_terms: int = 64,
                seed: int = 0) -> SearchCorpus:
    """A synthetic corpus with Zipf-ish term weights and a few topical
    clusters, so queries have clear best matches plus a long tail."""
    if n_docs < 1 or n_terms < 1:
        raise ValueError("corpus dimensions must be positive")
    rng = np.random.default_rng(seed)
    topics = rng.dirichlet(np.ones(n_terms) * 0.2, size=8)
    assignment = rng.integers(0, len(topics), size=n_docs)
    base = topics[assignment]
    noise = rng.gamma(shape=0.5, scale=0.2, size=(n_docs, n_terms))
    return SearchCorpus(weights=base * 5.0 + noise)


def score_documents(corpus: SearchCorpus,
                    query: np.ndarray,
                    doc_ids: np.ndarray) -> np.ndarray:
    """Relevance scores (dot product) of the given documents."""
    query = np.asarray(query, dtype=np.float64)
    if query.shape != (corpus.n_terms,):
        raise ValueError(
            f"query must have {corpus.n_terms} terms, got {query.shape}")
    return corpus.weights[doc_ids] @ query


def _merge_topk(a: np.ndarray, b: np.ndarray, k: int) -> np.ndarray:
    """Merge two (id, score) arrays into the best k by score.

    Arrays have shape (m, 2) with columns (doc_id, score); ties broken
    by lower doc id for determinism.  Duplicated ids are collapsed.
    """
    merged = np.concatenate([a, b], axis=0)
    if merged.shape[0] == 0:
        return merged
    # collapse duplicate document ids (idempotence)
    _, unique_idx = np.unique(merged[:, 0], return_index=True)
    merged = merged[unique_idx]
    order = np.lexsort((merged[:, 0], -merged[:, 1]))
    return merged[order[:k]]


def topk_merge_operator(k: int) -> Operator:
    """A commutative, idempotent top-k merge operator."""
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    return Operator(
        name=f"topk{k}",
        fn=lambda a, b: _merge_topk(a, b, k),
        identity=lambda shape, dtype: np.empty((0, 2),
                                               dtype=np.float64),
        idempotent=True)


def search_precise(corpus: SearchCorpus, query: np.ndarray,
                   k: int = 10) -> np.ndarray:
    """The exact top-k (id, score) result set."""
    ids = np.arange(corpus.n_docs, dtype=np.int64)
    scores = score_documents(corpus, query, ids)
    result = np.stack([ids.astype(np.float64), scores], axis=1)
    return _merge_topk(result, np.empty((0, 2)), k)


def build_search_automaton(corpus: SearchCorpus, query: np.ndarray,
                           k: int = 10, chunks: int = 32,
                           seed: int = 1) -> AnytimeAutomaton:
    """The hold-the-enter-key search automaton.

    One diffusive reduction stage: LFSR-sampled documents scored and
    merged into the running top-k.  Idempotent operator — published
    versions need no weighting.
    """
    query = np.asarray(query, dtype=np.float64)
    b_query = VersionedBuffer("query")
    b_hits = VersionedBuffer("hits")

    def chunk_fn(doc_ids: np.ndarray, q: np.ndarray) -> np.ndarray:
        scores = score_documents(corpus, q, doc_ids)
        chunk = np.stack([doc_ids.astype(np.float64), scores], axis=1)
        return _merge_topk(chunk, np.empty((0, 2)), k)

    stage = ReductionStage(
        "search", b_hits, (b_query,), chunk_fn,
        shape=corpus.n_docs, out_shape=(0, 2), dtype=np.float64,
        operator=topk_merge_operator(k),
        permutation=LfsrPermutation(seed=seed),
        weighted_output=False,
        chunks=chunks,
        cost_per_element=float(corpus.n_terms))
    return AnytimeAutomaton([stage], name="search",
                            external={"query": query})


def recall_at_k(result: np.ndarray, reference: np.ndarray) -> float:
    """Fraction of the true top-k present in the approximate result."""
    if len(reference) == 0:
        return 1.0
    truth = set(np.asarray(reference)[:, 0].astype(np.int64).tolist())
    if len(result) == 0:
        return 0.0
    got = set(np.asarray(result)[:, 0].astype(np.int64).tolist())
    return len(truth & got) / len(truth)


def recall_metric(result: np.ndarray, reference: np.ndarray) -> float:
    """Recall as a pseudo-dB metric for profiles: exact match -> inf.

    Mapping recall r to ``-10 log10(1 - r)`` makes the profile
    machinery's "inf = precise" convention hold (r = 1 -> inf) while
    preserving monotonicity.
    """
    r = recall_at_k(result, reference)
    if r >= 1.0:
        return float("inf")
    return -10.0 * float(np.log10(1.0 - r))
