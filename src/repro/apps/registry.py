"""Application registry: one declarative record per evaluation app.

Maps app names to everything a driver needs — input generator, automaton
builder, precise reference, accuracy metric, preferred scheduling policy
and how to extract a saveable image from an output value.  Used by the
command-line interface; the benchmarks keep their explicit per-figure
configurations so each figure's parameters remain visible in one place.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

import numpy as np

from ..core.automaton import AnytimeAutomaton
from ..core.scheduling import (SchedulingPolicy, final_stage_shares,
                               proportional_shares)
from ..data.images import bayer_mosaic, clustered_image, scene_image
from ..metrics.snr import snr_db
from .conv2d import build_conv2d_automaton, conv2d_precise
from .debayer import build_debayer_automaton, debayer_precise
from .dwt53 import (build_dwt53_automaton, reconstruct,
                    reconstruction_metric)
from .histeq import build_histeq_automaton, histeq_precise
from .kmeans import (build_kmeans_automaton, clustered_image_metric,
                     kmeans_precise)

__all__ = ["AppSpec", "APP_REGISTRY", "get_app"]


@dataclass(frozen=True)
class AppSpec:
    """Everything needed to drive one evaluation application."""

    name: str
    description: str
    make_input: Callable[[int, int], np.ndarray]
    build: Callable[[np.ndarray], AnytimeAutomaton]
    reference: Callable[[np.ndarray], Any]
    #: metric(value, reference) -> dB; reference semantics per app
    metric: Callable[[Any, Any], float]
    #: what "reference" to hand the metric (``"precise"`` or ``"input"``)
    reference_kind: str
    schedule: SchedulingPolicy
    #: value -> uint8 image for saving (None when not imageable)
    to_image: Callable[[Any], np.ndarray] | None = None


def _identity_image(value: Any) -> np.ndarray:
    return np.asarray(value)


APP_REGISTRY: dict[str, AppSpec] = {
    "2dconv": AppSpec(
        name="2dconv",
        description="9x9 blur; single diffusive tree-sampled stage",
        make_input=lambda size, seed: scene_image(size, seed=seed),
        build=build_conv2d_automaton,
        reference=conv2d_precise,
        metric=snr_db, reference_kind="precise",
        schedule=proportional_shares,
        to_image=_identity_image),
    "histeq": AppSpec(
        name="histeq",
        description="histogram equalization; 4-stage async pipeline",
        make_input=lambda size, seed: scene_image(size, seed=seed),
        build=build_histeq_automaton,
        reference=histeq_precise,
        metric=snr_db, reference_kind="precise",
        schedule=proportional_shares,
        to_image=_identity_image),
    "dwt53": AppSpec(
        name="dwt53",
        description="CDF 5/3 wavelet; iterative loop perforation",
        make_input=lambda size, seed: scene_image(size, seed=seed),
        build=build_dwt53_automaton,
        reference=lambda image: image,
        metric=reconstruction_metric(), reference_kind="input",
        schedule=proportional_shares,
        to_image=lambda coeffs: reconstruct(coeffs)),
    "debayer": AppSpec(
        name="debayer",
        description="RGGB demosaic; single diffusive tree-sampled stage",
        make_input=lambda size, seed: bayer_mosaic(size, seed=seed),
        build=build_debayer_automaton,
        reference=debayer_precise,
        metric=snr_db, reference_kind="precise",
        schedule=proportional_shares,
        to_image=_identity_image),
    "kmeans": AppSpec(
        name="kmeans",
        description="k-means colour clustering; assign + reduce",
        make_input=lambda size, seed: clustered_image(size, seed=seed,
                                                      clusters=6),
        build=lambda image: build_kmeans_automaton(image, k=6),
        reference=lambda image: kmeans_precise(image, k=6),
        metric=clustered_image_metric, reference_kind="precise",
        schedule=final_stage_shares,
        to_image=lambda value: value["image"]),
}


def get_app(name: str) -> AppSpec:
    """Look up an application by name (KeyError lists the options)."""
    try:
        return APP_REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown app {name!r}; known: "
            f"{sorted(APP_REGISTRY)}") from None
