"""Debayering (PERFECT ``debayer``) — paper Figure 14.

"Debayering converts a Bayer filter image from a single sensor to a full
RGB image. ... The structure of the application is similar to 2dconv; the
interpolations in debayer are similar to the convolutional filter.  As a
result, we use a similar single-diffusive-stage automaton with tree-based
output sampling."

Bilinear demosaic of an RGGB mosaic: each sampled output pixel gathers
its missing colour planes from neighbouring sites (clamped borders); the
automaton computes pixels in 2-D tree order with progressive block fill.
"""

from __future__ import annotations

import numpy as np

from ..anytime.fill import TreeFill
from ..anytime.permutations import Permutation, TreePermutation
from ..core.automaton import AnytimeAutomaton
from ..core.buffer import VersionedBuffer
from ..core.mapstage import MapStage

__all__ = ["debayer_elements", "debayer_precise",
           "build_debayer_automaton"]


def _at(mosaic: np.ndarray, rows: np.ndarray, cols: np.ndarray,
        ) -> np.ndarray:
    h, w = mosaic.shape
    return mosaic[np.clip(rows, 0, h - 1),
                  np.clip(cols, 0, w - 1)].astype(np.int64)


def debayer_elements(indices: np.ndarray,
                     mosaic: np.ndarray) -> np.ndarray:
    """RGB values at the given flat pixel indices of an RGGB mosaic.

    Returns an ``(n, 3)`` uint8 array.  Bilinear interpolation: missing
    planes average the nearest sites of that colour (2 or 4 neighbours
    depending on the site class).
    """
    mosaic = np.asarray(mosaic)
    h, w = mosaic.shape
    rows = indices // w
    cols = indices % w
    here = _at(mosaic, rows, cols)
    cross = (_at(mosaic, rows - 1, cols) + _at(mosaic, rows + 1, cols)
             + _at(mosaic, rows, cols - 1)
             + _at(mosaic, rows, cols + 1) + 2) // 4
    diag = (_at(mosaic, rows - 1, cols - 1)
            + _at(mosaic, rows - 1, cols + 1)
            + _at(mosaic, rows + 1, cols - 1)
            + _at(mosaic, rows + 1, cols + 1) + 2) // 4
    horiz = (_at(mosaic, rows, cols - 1)
             + _at(mosaic, rows, cols + 1) + 1) // 2
    vert = (_at(mosaic, rows - 1, cols)
            + _at(mosaic, rows + 1, cols) + 1) // 2

    r_site = (rows % 2 == 0) & (cols % 2 == 0)
    g_site_r = (rows % 2 == 0) & (cols % 2 == 1)   # G on a red row
    g_site_b = (rows % 2 == 1) & (cols % 2 == 0)   # G on a blue row
    b_site = (rows % 2 == 1) & (cols % 2 == 1)

    red = np.select([r_site, g_site_r, g_site_b, b_site],
                    [here, horiz, vert, diag])
    green = np.select([r_site, g_site_r, g_site_b, b_site],
                      [cross, here, here, cross])
    blue = np.select([r_site, g_site_r, g_site_b, b_site],
                     [diag, vert, horiz, here])
    out = np.stack([red, green, blue], axis=-1)
    return np.clip(out, 0, 255).astype(np.uint8)


def debayer_precise(mosaic: np.ndarray) -> np.ndarray:
    """Reference full-image demosaic."""
    mosaic = np.asarray(mosaic)
    n = mosaic.size
    flat = debayer_elements(np.arange(n, dtype=np.int64), mosaic)
    return flat.reshape(mosaic.shape + (3,))


def build_debayer_automaton(mosaic: np.ndarray, chunks: int = 32,
                            permutation: Permutation | None = None,
                            prefetcher: bool = False,
                            reorder: bool = False,
                            warm_start: np.ndarray | None = None,
                            ) -> AnytimeAutomaton:
    """The debayer automaton: one diffusive output-sampled stage."""
    mosaic = np.asarray(mosaic, dtype=np.uint8)
    b_in = VersionedBuffer("mosaic")
    b_out = VersionedBuffer("rgb")
    stage = MapStage(
        "demosaic", b_out, (b_in,), debayer_elements,
        shape=mosaic.shape, out_shape=mosaic.shape + (3,),
        dtype=np.uint8,
        permutation=permutation or TreePermutation(),
        fill=TreeFill(spatial_ndim=2),
        chunks=chunks,
        cost_per_element=8.0,   # ~8 gathers + blends per pixel
        prefetcher=prefetcher, reorder=reorder,
        warm_start=warm_start)
    return AnytimeAutomaton([stage], name="debayer",
                            external={"mosaic": mosaic})
