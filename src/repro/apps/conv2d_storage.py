"""2dconv on approximate storage — iterative anytime stage (III-B1).

The paper's second iterative technique: run the computation with its data
held in a drowsy SRAM at progressively rising supply voltage, finishing
at nominal voltage (precise).  Two properties of approximate storage
shape the construction:

- upsets are **data-destructive**, so the array must be *flushed*
  (rewritten with precise values) before each intermediate computation —
  otherwise corruption from the low-voltage level would poison the
  higher-accuracy levels;
- each level is cheaper than nominal (lower supply energy per access),
  so the iterative tax is partly paid back in energy.

This module builds a conv2d automaton whose single iterative stage walks
a :data:`~repro.hw.sram.DEFAULT_VOLTAGE_LADDER`-style voltage ladder, and
accounts storage energy through the levels.  It complements the
sample-size sweep of :func:`repro.apps.conv2d.sample_size_sweep`
(Figure 20) with a *runtime*-accuracy view of the same technique.

A note on Property 1: the level functions touch the simulated SRAM,
which is *microarchitectural* state, not semantic state — the paper's
purity requirement concerns the latter.  The flush at the top of every
level is exactly what makes the semantic behaviour independent of the
storage history; determinism is preserved per automaton via the SRAM's
seeded RNG.
"""

from __future__ import annotations

import numpy as np

from ..core.automaton import AnytimeAutomaton
from ..core.buffer import VersionedBuffer
from ..core.iterative import AccuracyLevel, IterativeStage
from ..hw.sram import DEFAULT_VOLTAGE_LADDER, DrowsySram, VoltageLevel
from .conv2d import blur_kernel, conv2d_elements

__all__ = ["build_conv2d_sram_automaton", "sram_energy_report"]


def _level_fn(sram: DrowsySram, level: VoltageLevel,
              kernel: np.ndarray):
    """One intermediate computation: flush precise pixels into the SRAM,
    drop to ``level``, read back (injecting upsets), convolve."""

    def compute(image: np.ndarray) -> np.ndarray:
        image = np.asarray(image)
        sram.set_level(DEFAULT_VOLTAGE_LADDER[-1])   # nominal flush
        sram.flush(image.astype(np.int64))
        sram.set_level(level)
        noisy = sram.read().astype(np.int64)
        n = noisy.size
        flat = conv2d_elements(np.arange(n, dtype=np.int64), noisy,
                               kernel)
        return flat.reshape(image.shape)

    return compute


def build_conv2d_sram_automaton(
        image: np.ndarray,
        ladder: tuple[VoltageLevel, ...] = DEFAULT_VOLTAGE_LADDER,
        kernel: np.ndarray | None = None,
        seed: int = 0) -> AnytimeAutomaton:
    """2dconv as an iterative anytime stage over an SRAM voltage ladder.

    ``ladder`` must end at a zero-upset (nominal) level so the final
    intermediate computation is precise.  The returned automaton exposes
    the backing :class:`DrowsySram` as ``automaton.sram`` for energy
    inspection.
    """
    image = np.asarray(image, dtype=np.uint8)
    kernel = blur_kernel() if kernel is None else kernel
    if ladder[-1].read_upset_prob != 0.0:
        raise ValueError(
            "the final voltage level must be nominal (zero upsets) so "
            "the last intermediate computation is precise")
    probs = [lv.read_upset_prob for lv in ladder]
    if probs != sorted(probs, reverse=True):
        raise ValueError(
            "voltage ladder must have non-increasing upset probability "
            "(accuracy must increase over time)")
    sram = DrowsySram(bits_per_word=8, seed=seed)
    n = image.size
    taps = kernel.size
    b_in = VersionedBuffer("input")
    b_out = VersionedBuffer("filtered")
    # Every level does the full computation (n * taps MACs); the flush
    # adds a write pass over the array.  Cost is charged uniformly; the
    # *energy* differences live in the SRAM's per-access accounting.
    levels = [
        AccuracyLevel(_level_fn(sram, lv, kernel),
                      cost=float(n * taps + n), label=lv.name)
        for lv in ladder
    ]
    stage = IterativeStage("conv-sram", b_out, (b_in,), levels,
                           allow_any_costs=True)
    automaton = AnytimeAutomaton([stage], name="2dconv-sram",
                                 external={"input": image})
    automaton.sram = sram   # type: ignore[attr-defined]
    return automaton


def sram_energy_report(
        image: np.ndarray,
        ladder: tuple[VoltageLevel, ...] = DEFAULT_VOLTAGE_LADDER,
        seed: int = 0) -> list[tuple[str, float, float]]:
    """Per-level storage energy of one automaton run.

    Returns ``(level_name, accesses_energy, relative_to_nominal)`` rows:
    each level's read traffic costs ``energy_per_access`` relative units,
    so the low-voltage levels show the paper's supply-power savings.
    """
    image = np.asarray(image, dtype=np.uint8)
    rows = []
    for lv in ladder:
        sram = DrowsySram(bits_per_word=8, seed=seed)
        sram.write(image.astype(np.int64))
        sram.set_level(lv)
        sram.energy = 0.0
        sram.read()
        nominal = image.size * 1.0
        rows.append((lv.name, sram.energy, sram.energy / nominal))
    return rows
