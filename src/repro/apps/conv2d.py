"""2D convolution (PERFECT ``2dconv``) — paper Figures 11, 16, 19, 20.

"2d convolution applies a convolutional kernel to spatially filter an
image; in our case, a blur filter is applied.  It consists of many dot
products, computed for each pixel. ... The application is simple in
structure, yielding an anytime automaton with a single diffusive stage.
We employ output sampling with a tree permutation in generating the
filtered image."

The stage computes output pixels in 2-D bit-reverse (tree) order; the
unsampled pixels are block-filled, so the output sharpens progressively
(Figure 16).  The reduced-precision (Figure 19) and approximate-storage
(Figure 20) variants quantize the pixel data and inject SRAM read upsets
into the gathered inputs, respectively.
"""

from __future__ import annotations

import numpy as np

from ..anytime.fill import TreeFill
from ..anytime.permutations import Permutation, TreePermutation
from ..anytime.precision import quantize_to_bits
from ..core.automaton import AnytimeAutomaton
from ..core.buffer import VersionedBuffer
from ..core.mapstage import MapStage
from ..hw.sram import flip_bits

__all__ = ["blur_kernel", "conv2d_precise", "conv2d_elements",
           "build_conv2d_automaton", "sample_size_sweep"]


def blur_kernel(size: int = 9) -> np.ndarray:
    """An integer binomial blur kernel (odd ``size``), weights summing to
    a power of two so the normalization is an exact shift."""
    if size < 1 or size % 2 == 0:
        raise ValueError(f"kernel size must be odd and >= 1, got {size}")
    row = np.array([1], dtype=np.int64)
    for _ in range(size - 1):
        row = np.convolve(row, [1, 1])
    kernel = np.outer(row, row)
    return kernel


def _gather_taps(indices: np.ndarray, image: np.ndarray,
                 kernel: np.ndarray) -> np.ndarray:
    """Neighbourhood pixel values for each sampled output pixel.

    Returns an ``(n_taps, n_pixels)`` int64 array using clamped (edge-
    replicated) borders.
    """
    h, w = image.shape
    k = kernel.shape[0]
    off = k // 2
    rows = indices // w
    cols = indices % w
    taps = np.empty((k * k, len(indices)), dtype=np.int64)
    t = 0
    for dy in range(k):
        rr = np.clip(rows + dy - off, 0, h - 1)
        for dx in range(k):
            cc = np.clip(cols + dx - off, 0, w - 1)
            taps[t] = image[rr, cc]
            t += 1
    return taps


def conv2d_elements(indices: np.ndarray, image: np.ndarray,
                    kernel: np.ndarray) -> np.ndarray:
    """Convolution outputs at the given flat pixel indices (vectorized)."""
    taps = _gather_taps(indices, np.asarray(image), kernel)
    weights = kernel.reshape(-1, 1).astype(np.int64)
    acc = (taps * weights).sum(axis=0)
    total = int(kernel.sum())
    return ((acc + total // 2) // total).astype(np.uint8)


def conv2d_precise(image: np.ndarray,
                   kernel: np.ndarray | None = None) -> np.ndarray:
    """Reference blur of the whole image."""
    image = np.asarray(image)
    kernel = blur_kernel() if kernel is None else kernel
    n = image.size
    flat = conv2d_elements(np.arange(n, dtype=np.int64), image, kernel)
    return flat.reshape(image.shape)


def build_conv2d_automaton(image: np.ndarray,
                           kernel: np.ndarray | None = None,
                           chunks: int = 32,
                           permutation: Permutation | None = None,
                           prefetcher: bool = False,
                           reorder: bool = False,
                           pixel_bits: int = 8,
                           warm_start: np.ndarray | None = None,
                           ) -> AnytimeAutomaton:
    """The 2dconv anytime automaton: one diffusive output-sampled stage.

    ``pixel_bits < 8`` applies the reduced-precision variant: input pixels
    are truncated to their top bits before the dot products (Figure 19),
    which also cheapens each MAC in the cost model.
    """
    image = np.asarray(image, dtype=np.uint8)
    kernel = blur_kernel() if kernel is None else kernel
    if pixel_bits < 8:
        image = quantize_to_bits(image.astype(np.int64), pixel_bits,
                                 total_bits=8).astype(np.uint8)
    b_in = VersionedBuffer("input")
    b_out = VersionedBuffer("filtered")

    def element_fn(indices: np.ndarray, img: np.ndarray) -> np.ndarray:
        return conv2d_elements(indices, img, kernel)

    taps = kernel.size
    stage = MapStage(
        "conv", b_out, (b_in,), element_fn,
        shape=image.shape, dtype=np.uint8,
        permutation=permutation or TreePermutation(),
        fill=TreeFill(spatial_ndim=2),
        chunks=chunks,
        cost_per_element=taps * (pixel_bits / 8.0),
        prefetcher=prefetcher, reorder=reorder,
        warm_start=warm_start)
    return AnytimeAutomaton([stage], name="2dconv",
                            external={"input": image})


def sample_size_sweep(image: np.ndarray,
                      pixel_bits: int = 8,
                      read_upset_prob: float = 0.0,
                      sample_sizes: list[int] | None = None,
                      kernel: np.ndarray | None = None,
                      seed: int = 0) -> list[tuple[int, float]]:
    """Accuracy as a function of tree-sample size (Figures 19 and 20).

    Computes output pixels in tree order, optionally on reduced-precision
    pixels (``pixel_bits``) and through a drowsy SRAM that upsets each
    gathered input bit with ``read_upset_prob`` per read.  Returns
    ``(sample_size, snr_db)`` rows against the full-precision, upset-free
    precise output.  Error composition matches the paper's setup: flips
    are proportional to elements processed, so the reduced curves overlay
    the nominal one at small sample sizes.
    """
    from ..metrics.snr import snr_db

    image = np.asarray(image, dtype=np.uint8)
    kernel = blur_kernel() if kernel is None else kernel
    reference = conv2d_precise(image, kernel)
    work_image = image
    if pixel_bits < 8:
        work_image = quantize_to_bits(
            image.astype(np.int64), pixel_bits, 8).astype(np.uint8)
    n = image.size
    if sample_sizes is None:
        sample_sizes = [4 ** k for k in range(1, 1 + int(
            np.log2(max(image.shape)))) ] + [n]
        sample_sizes = sorted({min(s, n) for s in sample_sizes})
    order = TreePermutation().order(image.shape)
    fill = TreeFill(spatial_ndim=2)
    rng = np.random.default_rng(seed)
    dense = np.zeros(image.shape, dtype=np.uint8)
    weights = kernel.reshape(-1, 1).astype(np.int64)
    total = int(kernel.sum())
    rows: list[tuple[int, float]] = []
    done = 0
    for size in sample_sizes:
        size = min(size, n)
        if size > done:
            idx = order[done:size]
            taps = _gather_taps(idx, work_image.astype(np.int64), kernel)
            if read_upset_prob > 0.0:
                taps = flip_bits(taps, read_upset_prob, pixel_bits, rng)
            acc = (taps * weights).sum(axis=0)
            vals = np.clip((acc + total // 2) // total, 0, 255)
            dense.reshape(-1)[idx] = vals.astype(np.uint8)
            done = size
        approx = fill.fill(dense, order, done)
        rows.append((done, snr_db(approx, reference)))
    return rows
