"""K-means clustering (AxBench ``kmeans``) — paper Figures 15, 18.

"We construct an automaton with two stages in an asynchronous pipeline.
The first stage computes the cluster centroids and assigns pixels to
clusters based on their Euclidean distances.  This is diffusive; we
employ anytime output sampling with a tree permutation.  The second
(non-anytime) stage reduces the centroid computations of the multiple
threads from the previous stage."

Stage 1 samples pixels in tree order, assigning each to the nearest
centroid while accumulating per-cluster colour sums and counts (the
"thread-privatized" partials).  Stage 2 reduces the partials into updated
centroids — valid at any sample size, no weighting needed since the mean
is ``sums / counts`` — and recolours the assignment image with them: that
clustered image is the application output whose SNR the figures report.

Because stage 2 re-executes per assignment version, its core share
controls the gap between whole-application outputs; the kmeans benchmark
uses the final-stage scheduling policy (paper Section IV-C2) for exactly
this reason.  ``epochs > 1`` chains additional assign/reduce pairs (an
extension beyond the paper's single pass).
"""

from __future__ import annotations

from typing import Any

import numpy as np

from ..anytime.fill import TreeFill
from ..anytime.permutations import TreePermutation
from ..core.automaton import AnytimeAutomaton
from ..core.buffer import VersionedBuffer
from ..core.diffusive import DiffusiveStage
from ..core.stage import PreciseStage

__all__ = ["initial_centroids", "assign_pixels", "kmeans_precise",
           "build_kmeans_automaton", "KMeansAssignStage",
           "clustered_image_metric"]


def initial_centroids(image: np.ndarray, k: int) -> np.ndarray:
    """Deterministic centroid seeding: colour-space quantiles.

    Pixels are ranked by luma; centroid ``j`` is the mean colour of
    quantile band ``j`` — spread across the image's colour range without
    randomness, so runs are reproducible.
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    flat = np.asarray(image, dtype=np.float64).reshape(-1, 3)
    luma = flat @ np.array([0.299, 0.587, 0.114])
    order = np.argsort(luma, kind="stable")
    bands = np.array_split(order, k)
    return np.stack([flat[band].mean(axis=0) if band.size
                     else np.full(3, 128.0) for band in bands])


def assign_pixels(pixels: np.ndarray,
                  centroids: np.ndarray) -> np.ndarray:
    """Index of the nearest centroid (squared Euclidean) per pixel row."""
    pixels = np.asarray(pixels, dtype=np.float64)
    centroids = np.asarray(centroids, dtype=np.float64)
    d2 = ((pixels[:, None, :] - centroids[None, :, :]) ** 2).sum(axis=2)
    return np.argmin(d2, axis=1)


class KMeansAssignStage(DiffusiveStage):
    """Diffusive pixel assignment with partial-centroid accumulation.

    State: the dense assignment image (persists across passes — stale
    assignments from the previous centroid version remain valid
    approximations) plus per-cluster colour sums and counts, which reset
    every pass (they would double-count otherwise).
    """

    def __init__(self, name: str, output: VersionedBuffer,
                 centroids_in: VersionedBuffer, image_in: VersionedBuffer,
                 image_shape: tuple[int, int], k: int,
                 chunks: int = 32, prefetcher: bool = False) -> None:
        super().__init__(
            name, output, (centroids_in, image_in),
            shape=image_shape, permutation=TreePermutation(),
            chunks=chunks, cost_per_element=4.0 * k,
            prefetcher=prefetcher)
        self.k = k
        self._fill = TreeFill(spatial_ndim=2)
        # assignment is elementwise in the pixels, so several chunks can
        # be assigned in one vectorized pass; the per-chunk accumulator
        # updates (add.at / bincount) still run level by level in
        # apply_chunk, keeping every published partial bit-identical
        self.supports_batch = True

    def init_state(self, values: tuple[Any, ...]) -> dict[str, Any]:
        prev = self._state
        assign = (prev["assign"] if prev is not None
                  else np.zeros(self.shape, dtype=np.int64))
        return {"assign": assign,
                "sums": np.zeros((self.k, 3), dtype=np.float64),
                "counts": np.zeros(self.k, dtype=np.int64)}

    def process_chunk(self, state: dict[str, Any], indices: np.ndarray,
                      values: tuple[Any, ...]) -> Any:
        centroids, image = values
        pixels = np.asarray(image).reshape(-1, 3)[indices]
        labels = assign_pixels(pixels, centroids)
        return self._fold(state, indices, pixels, labels)

    def _fold(self, state: dict[str, Any], indices: np.ndarray,
              pixels: np.ndarray, labels: np.ndarray) -> Any:
        state["assign"].reshape(-1)[indices] = labels
        np.add.at(state["sums"], labels, pixels.astype(np.float64))
        state["counts"] += np.bincount(labels, minlength=self.k)
        return (indices, labels)

    def batch_chunks(self, state: dict[str, Any], indices: np.ndarray,
                     values: tuple[Any, ...]) -> tuple[np.ndarray,
                                                       np.ndarray]:
        centroids, image = values
        pixels = np.asarray(image).reshape(-1, 3)[indices]
        return pixels, assign_pixels(pixels, centroids)

    def apply_chunk(self, state: dict[str, Any], indices: np.ndarray,
                    batch: tuple[np.ndarray, np.ndarray], offset: int,
                    values: tuple[Any, ...]) -> Any:
        pixels, labels = batch
        span = slice(offset, offset + len(indices))
        return self._fold(state, indices, pixels[span], labels[span])

    def materialize(self, state: dict[str, Any], count: int,
                    values: tuple[Any, ...]) -> dict[str, Any]:
        if count >= self.n_elements or self._completed_passes > 0:
            assign = state["assign"].copy()
        else:
            assign = self._fill.fill(state["assign"], self.order, count)
        return {"assign": assign,
                "sums": state["sums"].copy(),
                "counts": state["counts"].copy(),
                "centroids_in": values[0]}

    def precise(self, input_values: dict[str, Any]) -> dict[str, Any]:
        centroids = input_values[self.inputs[0].name]
        image = input_values[self.inputs[1].name]
        pixels = np.asarray(image).reshape(-1, 3)
        labels = assign_pixels(pixels, centroids)
        sums = np.zeros((self.k, 3), dtype=np.float64)
        np.add.at(sums, labels, pixels.astype(np.float64))
        return {"assign": labels.reshape(self.shape),
                "sums": sums,
                "counts": np.bincount(labels, minlength=self.k),
                "centroids_in": centroids}


def _reduce_and_recolour(partial: dict[str, Any]) -> dict[str, Any]:
    """Stage 2: centroids from the partial sums; recoloured image.

    Empty clusters keep the centroid the assignment pass used.
    """
    counts = partial["counts"].astype(np.float64)
    safe = np.maximum(counts, 1.0)[:, None]
    fresh = partial["sums"] / safe
    prev = np.asarray(partial["centroids_in"], dtype=np.float64)
    centroids = np.where(partial["counts"][:, None] > 0, fresh, prev)
    palette = np.clip(centroids, 0, 255).astype(np.uint8)
    return {"centroids": centroids, "image": palette[partial["assign"]]}


def clustered_image_metric(value: dict[str, Any],
                           reference: Any) -> float:
    """SNR of the clustered image inside the stage-2 output dict.

    ``reference`` may be the precise stage-2 dict or a bare image array
    (e.g. from :func:`kmeans_precise`).
    """
    from ..metrics.snr import snr_db

    if isinstance(reference, dict):
        reference = reference["image"]
    return snr_db(value["image"], reference)


def kmeans_precise(image: np.ndarray, k: int = 6,
                   epochs: int = 1) -> np.ndarray:
    """Reference clustered image (same epoch count as the automaton)."""
    image = np.asarray(image, dtype=np.uint8)
    centroids = initial_centroids(image, k)
    pixels = image.reshape(-1, 3)
    labels = assign_pixels(pixels, centroids)
    for _ in range(epochs):
        labels = assign_pixels(pixels, centroids)
        sums = np.zeros((k, 3), dtype=np.float64)
        np.add.at(sums, labels, pixels.astype(np.float64))
        counts = np.bincount(labels, minlength=k)
        fresh = sums / np.maximum(counts, 1)[:, None]
        centroids = np.where(counts[:, None] > 0, fresh, centroids)
    palette = np.clip(centroids, 0, 255).astype(np.uint8)
    return palette[labels].reshape(image.shape)


def build_kmeans_automaton(image: np.ndarray, k: int = 6,
                           epochs: int = 1, chunks: int = 32,
                           prefetcher: bool = False) -> AnytimeAutomaton:
    """The two-stage kmeans automaton (times ``epochs``)."""
    if epochs < 1:
        raise ValueError(f"epochs must be >= 1, got {epochs}")
    image = np.asarray(image, dtype=np.uint8)
    h, w = image.shape[:2]
    n = h * w
    b_img = VersionedBuffer("image")
    b_c0 = VersionedBuffer("centroids0")
    stages = []
    prev_c = b_c0
    for e in range(1, epochs + 1):
        b_a = VersionedBuffer(f"partial{e}")
        b_r = VersionedBuffer(f"clustered{e}" if e == epochs
                              else f"reduced{e}")
        assign = KMeansAssignStage(f"assign{e}", b_a, prev_c, b_img,
                                   image_shape=(h, w), k=k,
                                   chunks=chunks, prefetcher=prefetcher)
        reduce_ = PreciseStage(f"reduce{e}", b_r, (b_a,),
                               _reduce_and_recolour,
                               cost=float(n + 3 * k))
        stages += [assign, reduce_]
        if e < epochs:
            # Chain epochs on the centroids: a light extraction stage
            # exposes them as the next assign's input buffer.
            b_c = VersionedBuffer(f"centroids{e}")
            stages.append(PreciseStage(
                f"centroids{e}", b_c, (b_r,),
                lambda r: r["centroids"], cost=float(3 * k)))
            prev_c = b_c
    return AnytimeAutomaton(
        stages, name="kmeans",
        external={"image": image,
                  "centroids0": initial_centroids(image, k)})
