"""Discrete wavelet transform (PERFECT ``dwt53``) — paper Figures 13, 17.

"Discrete wavelet transform performs a discretely-sampled wavelet
transform on an image. ... We approximate the transform and then execute
the inverse transform precisely; accuracy is measured on the inversed
output relative to the original image.  Our automaton consists of a
single iterative stage that employs loop perforation when processing and
transposing pixels."

The transform is the integer CDF 5/3 lifting scheme (JPEG2000 lossless):
perfectly invertible, so the automaton's final output reconstructs the
original image bit-exactly (SNR ∞).  Loop perforation processes every
``s``-th row (then column), replicating each processed line over the
skipped ones; strides shrink over the iterative levels down to the
precise stride 1.  The iterative re-execution is what gives dwt53 its
steep runtime-accuracy curve.
"""

from __future__ import annotations

import numpy as np

from ..anytime.perforation import StrideSchedule, geometric_strides
from ..core.automaton import AnytimeAutomaton
from ..core.buffer import VersionedBuffer
from ..core.iterative import AccuracyLevel, IterativeStage
from ..core.stage import access_penalty

__all__ = ["dwt53_rows", "idwt53_rows", "dwt53_forward", "dwt53_inverse",
           "dwt53_perforated", "PerforatedDWTStage",
           "build_dwt53_automaton", "reconstruct",
           "reconstruction_metric"]


def dwt53_rows(data: np.ndarray) -> np.ndarray:
    """One CDF 5/3 lifting level along the last axis (integer, exact).

    Output layout: approximation (s) coefficients in the left half,
    detail (d) coefficients in the right half.  The length of the last
    axis must be even.
    """
    data = np.asarray(data, dtype=np.int64)
    n = data.shape[-1]
    if n % 2:
        raise ValueError(f"dwt53 needs an even extent, got {n}")
    even = data[..., 0::2]
    odd = data[..., 1::2]
    # predict: d[i] = odd[i] - floor((even[i] + even[i+1]) / 2),
    # symmetric extension at the right edge
    even_next = np.concatenate([even[..., 1:], even[..., -1:]], axis=-1)
    d = odd - ((even + even_next) >> 1)
    # update: s[i] = even[i] + floor((d[i-1] + d[i] + 2) / 4),
    # symmetric extension at the left edge
    d_prev = np.concatenate([d[..., :1], d[..., :-1]], axis=-1)
    s = even + ((d_prev + d + 2) >> 2)
    return np.concatenate([s, d], axis=-1)


def idwt53_rows(coeffs: np.ndarray) -> np.ndarray:
    """Exact inverse of :func:`dwt53_rows`."""
    coeffs = np.asarray(coeffs, dtype=np.int64)
    n = coeffs.shape[-1]
    if n % 2:
        raise ValueError(f"idwt53 needs an even extent, got {n}")
    half = n // 2
    s = coeffs[..., :half]
    d = coeffs[..., half:]
    d_prev = np.concatenate([d[..., :1], d[..., :-1]], axis=-1)
    even = s - ((d_prev + d + 2) >> 2)
    even_next = np.concatenate([even[..., 1:], even[..., -1:]], axis=-1)
    odd = d + ((even + even_next) >> 1)
    out = np.empty(coeffs.shape, dtype=np.int64)
    out[..., 0::2] = even
    out[..., 1::2] = odd
    return out


def dwt53_forward(image: np.ndarray, levels: int = 1) -> np.ndarray:
    """2-D separable 5/3 transform: rows then columns, ``levels`` deep
    (each level transforms the top-left approximation quadrant)."""
    coeffs = np.asarray(image, dtype=np.int64).copy()
    h, w = coeffs.shape
    for _ in range(levels):
        sub = coeffs[:h, :w]
        sub[:] = dwt53_rows(sub)
        sub[:] = dwt53_rows(sub.T).T
        h //= 2
        w //= 2
    return coeffs


def dwt53_inverse(coeffs: np.ndarray, levels: int = 1) -> np.ndarray:
    """Exact inverse of :func:`dwt53_forward`."""
    coeffs = np.asarray(coeffs, dtype=np.int64).copy()
    hs = [coeffs.shape[0] >> k for k in range(levels)]
    ws = [coeffs.shape[1] >> k for k in range(levels)]
    for h, w in zip(reversed(hs), reversed(ws)):
        sub = coeffs[:h, :w]
        sub[:] = idwt53_rows(sub.T).T
        sub[:] = idwt53_rows(sub)
    return coeffs


def _perforate_lines(data: np.ndarray, stride: int) -> np.ndarray:
    """Transform every ``stride``-th row of ``data`` (axis 0), replicating
    each processed row over the skipped ones below it."""
    if stride == 1:
        return dwt53_rows(data)
    processed = dwt53_rows(data[::stride])
    owner = np.arange(data.shape[0]) // stride
    owner = np.minimum(owner, processed.shape[0] - 1)
    return processed[owner]


def dwt53_perforated(image: np.ndarray, stride: int,
                     levels: int = 1) -> np.ndarray:
    """Forward transform with loop perforation at ``stride``.

    Only every ``stride``-th line is processed in the row pass and in the
    column (transpose) pass — the paper's "loop perforation when
    processing and transposing pixels".  ``stride=1`` is precise.
    """
    coeffs = np.asarray(image, dtype=np.int64).copy()
    h, w = coeffs.shape
    for _ in range(levels):
        sub = coeffs[:h, :w]
        sub[:] = _perforate_lines(sub, stride)
        sub[:] = _perforate_lines(sub.T, stride).T
        h //= 2
        w //= 2
    return coeffs


class PerforatedDWTStage(IterativeStage):
    """The dwt53 forward stage, with vectorized multi-level batching.

    Under a command lease the stage fuses the granted perforation
    levels into one kernel call that computes the *row pass once* at
    the finest granted stride and derives every coarser stride's row
    pass from it by subsampling: ``dwt53_rows`` operates on each row
    independently, so when ``s_min`` divides ``s``,

        ``dwt53_rows(img[::s]) == dwt53_rows(img[::s_min])[::s//s_min]``

    holds bit-exactly (integer lifting).  The column pass cannot be
    shared — each stride's column input is its own row-pass output — so
    it stays per-level.  Outputs are bit-identical to the per-level
    path (the lease safety rule), which the ladder-equality
    conformance test enforces.

    Batching is enabled only at wavelet depth 1 (deeper transforms
    recurse into the approximation quadrant, which breaks the
    subsampling identity) and when every adjacent stride pair divides
    (true for the default geometric schedule).
    """

    def __init__(self, name: str, output: VersionedBuffer,
                 inputs: tuple[VersionedBuffer, ...],
                 levels, strides: tuple[int, ...],
                 wavelet_levels: int = 1) -> None:
        super().__init__(name, output, inputs, levels)
        self.strides = tuple(strides)
        self.wavelet_levels = wavelet_levels
        self.supports_batch = (
            wavelet_levels == 1
            and all(a % b == 0
                    for a, b in zip(self.strides, self.strides[1:])))

    def batch_levels(self, values, start: int, count: int):
        img = np.asarray(values[0], dtype=np.int64)
        strides = self.strides[start:start + count]
        s_min = strides[-1]           # strides decrease; finest last
        rows_min = dwt53_rows(img[::s_min])
        outs = []
        for s in strides:
            if s == 1:
                row_passed = rows_min
            else:
                processed = rows_min[::s // s_min]
                owner = np.arange(img.shape[0]) // s
                owner = np.minimum(owner, processed.shape[0] - 1)
                row_passed = processed[owner]
            outs.append(_perforate_lines(row_passed.T, s).T)
        return outs


def build_dwt53_automaton(image: np.ndarray,
                          strides: tuple[int, ...] | None = None,
                          levels: int = 1) -> AnytimeAutomaton:
    """The dwt53 automaton: a single iterative perforated-forward stage.

    Per the paper, the automaton is the transform alone; the precise
    inverse is applied during *measurement* (see
    :func:`reconstruction_metric`), so accuracy reflects the inversed
    output relative to the original image.
    """
    image = np.asarray(image, dtype=np.uint8)
    schedule = StrideSchedule(strides or geometric_strides(8))
    n = image.size
    b_in = VersionedBuffer("input")
    b_coeffs = VersionedBuffer("coeffs")

    def level_fn(stride: int):
        return lambda img: dwt53_perforated(img, stride, levels=levels)

    # Perforated passes walk lines at a stride (poor locality); the final
    # stride-1 pass is the sequential precise computation.
    acc_levels = [
        AccuracyLevel(
            level_fn(s),
            cost=(2.0 * n / s * levels
                  * (access_penalty("strided") if s > 1 else 1.0)),
            label=f"stride={s}")
        for s in schedule.strides
    ]
    s_fwd = PerforatedDWTStage("forward", b_coeffs, (b_in,), acc_levels,
                               strides=schedule.strides,
                               wavelet_levels=levels)
    return AnytimeAutomaton([s_fwd], name="dwt53",
                            external={"input": image})


def reconstruct(coeffs: np.ndarray, levels: int = 1) -> np.ndarray:
    """Invert a coefficient version back to pixel space (clipped u8)."""
    return np.clip(dwt53_inverse(coeffs, levels=levels),
                   0, 255).astype(np.uint8)


def reconstruction_metric(levels: int = 1):
    """Accuracy metric for dwt53 profiles: SNR of the precise inverse of
    each coefficient version against the original image."""
    from ..metrics.snr import snr_db

    def metric(coeffs: np.ndarray, original: np.ndarray) -> float:
        return snr_db(reconstruct(coeffs, levels=levels), original)

    return metric
