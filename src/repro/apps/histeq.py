"""Histogram equalization (PERFECT ``histeq``) — paper Figure 12.

"We construct an automaton with four computation stages in an
asynchronous pipeline.  The first stage is diffusive; it builds a
histogram of pixel values using anytime pseudo-random input sampling ...
The second and third stages are not anytime; they construct a normalized
cumulative distribution function from the histogram.  The fourth
diffusive stage generates the high-contrast image using tree-based output
sampling."

The non-anytime middle stages are what makes histeq's time-to-precise
high (~6x baseline in the paper): every fresh histogram version ripples
through CDF -> LUT -> a full re-run of the apply stage.
"""

from __future__ import annotations

import numpy as np

from ..anytime.fill import TreeFill
from ..anytime.permutations import LfsrPermutation, TreePermutation
from ..core.automaton import AnytimeAutomaton
from ..core.buffer import VersionedBuffer
from ..core.mapstage import MapStage
from ..core.reduction import ReductionStage
from ..core.stage import PreciseStage

__all__ = ["histogram", "lut_from_cdf", "equalization_lut",
           "histeq_precise", "build_histeq_automaton"]

_BINS = 256


def histogram(image: np.ndarray) -> np.ndarray:
    """256-bin intensity histogram (float counts)."""
    image = np.asarray(image)
    return np.bincount(image.reshape(-1).astype(np.int64),
                       minlength=_BINS).astype(np.float64)


def lut_from_cdf(cdf: np.ndarray) -> np.ndarray:
    """Normalize a cumulative distribution into a 0..255 remap table.

    Works on weighted (non-integer) CDF estimates too — the anytime
    pipeline feeds it sampled histograms scaled by ``n / i``.
    """
    cdf = np.asarray(cdf, dtype=np.float64)
    total = cdf[-1]
    if total <= 0:
        return np.arange(_BINS, dtype=np.uint8)
    nonzero = cdf[cdf > 0]
    cdf_min = float(nonzero[0]) if nonzero.size else 0.0
    denom = total - cdf_min
    if denom <= 0:
        return np.full(_BINS, 255, dtype=np.uint8)
    lut = np.round((cdf - cdf_min) / denom * 255.0)
    return np.clip(lut, 0, 255).astype(np.uint8)


def equalization_lut(hist: np.ndarray) -> np.ndarray:
    """Intensity remap table from a (possibly estimated) histogram."""
    return lut_from_cdf(np.cumsum(np.asarray(hist, dtype=np.float64)))


def histeq_precise(image: np.ndarray) -> np.ndarray:
    """Reference equalized image."""
    image = np.asarray(image, dtype=np.uint8)
    lut = equalization_lut(histogram(image))
    return lut[image]


def build_histeq_automaton(image: np.ndarray, chunks: int = 32,
                           prefetcher: bool = False,
                           restart_policy: str = "complete",
                           ) -> AnytimeAutomaton:
    """The four-stage histeq automaton of paper Section IV-A2.

    ``restart_policy`` applies to the apply stage: ``"preempt"`` abandons
    an in-flight output pass as soon as a newer LUT version is available,
    trading some intermediate outputs for an earlier precise finish.
    """
    image = np.asarray(image, dtype=np.uint8)
    n = image.size
    b_in = VersionedBuffer("input")
    b_hist = VersionedBuffer("hist")
    b_cdf = VersionedBuffer("cdf")
    b_lut = VersionedBuffer("lut")
    b_out = VersionedBuffer("equalized")

    def hist_chunk(indices: np.ndarray, img: np.ndarray) -> np.ndarray:
        return np.bincount(
            img.reshape(-1)[indices].astype(np.int64),
            minlength=_BINS).astype(np.float64)

    # Stage 1 (diffusive): pseudo-random input-sampled histogram, with
    # n/i weighting since addition is not idempotent (paper Figure 3).
    s_hist = ReductionStage(
        "hist", b_hist, (b_in,), hist_chunk,
        shape=n, out_shape=(_BINS,), dtype=np.float64, operator="add",
        permutation=LfsrPermutation(seed=1), weighted_output=True,
        chunks=chunks, cost_per_element=1.0, prefetcher=prefetcher)

    # Stages 2 and 3 (non-anytime): cumulative distribution + normalize.
    s_cdf = PreciseStage("cdf", b_cdf, (b_hist,),
                         lambda h: np.cumsum(h), cost=float(_BINS))
    s_lut = PreciseStage("lut", b_lut, (b_cdf,), lut_from_cdf,
                         cost=float(_BINS))

    # Stage 4 (diffusive): tree output-sampled application of the LUT.
    def apply_chunk(indices: np.ndarray, lut: np.ndarray,
                    img: np.ndarray) -> np.ndarray:
        return lut[img.reshape(-1)[indices]]

    s_apply = MapStage(
        "apply", b_out, (b_lut, b_in), apply_chunk,
        shape=image.shape, dtype=np.uint8,
        permutation=TreePermutation(), fill=TreeFill(spatial_ndim=2),
        chunks=chunks, cost_per_element=1.0, prefetcher=prefetcher,
        restart_policy=restart_policy)

    return AnytimeAutomaton([s_hist, s_cdf, s_lut, s_apply],
                            name="histeq", external={"input": image})
