"""Property-based fuzzing of random automata (``repro.check.fuzz``).

Extends the hypothesis strategies of ``tests/test_random_automata.py``
into a library-level fuzzer: instead of drawing live stage objects, the
strategy draws a **plain-JSON spec** — primitives only — describing a
random stage graph (precise / iterative / diffusive stages, every
sampling permutation, optional synchronous map→fold pairs), a
seed-deterministic fault-injection schedule, and a random interrupt
point.  :func:`build_automaton` turns a spec into a runnable
:class:`~repro.core.automaton.AnytimeAutomaton`, and :func:`run_spec`
executes it on the simulated executor with a strict
:class:`~repro.check.invariants.Checker` attached and asserts the
anytime guarantees:

* zero invariant violations (version order, seal-once, channel
  causality, span balance, post-publication immutability);
* an unfaulted, uninterrupted run converges **bit-exactly** to the
  precise evaluation, with exactly one final terminal version;
* every stage publishes at least once when the run completes;
* runs with faults or interrupts still terminate cleanly and every
  published version is validly ordered.

Because specs are JSON, a shrunk falsifying example is *replayable*:
:func:`fuzz` writes it (plus the error) to a seed file, and
:func:`replay` re-executes it — ``repro check --replay seed.json``.

hypothesis is imported lazily inside the functions that need it, so the
rest of ``repro.check`` works without the dev dependencies installed.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any

import numpy as np

from ..anytime.fill import ConstantFill
from ..anytime.permutations import (LfsrPermutation, Permutation,
                                    ReversedPermutation,
                                    SequentialPermutation,
                                    StridedPermutation, TreePermutation)
from ..core.automaton import AnytimeAutomaton
from ..core.buffer import VersionedBuffer
from ..core.channel import UpdateChannel
from ..core.controller import VersionCountStop
from ..core.faults import FaultInjector, FaultPolicy
from ..core.iterative import AccuracyLevel, IterativeStage
from ..core.mapstage import MapStage
from ..core.stage import PreciseStage
from ..core.syncstage import SynchronousStage
from .invariants import Checker

__all__ = ["VEC", "SPEC_FORMAT", "FuzzFailure", "spec_strategy",
           "build_automaton", "run_spec", "fuzz", "replay",
           "save_spec", "load_spec"]

VEC = 16             #: every buffer carries an int64 vector of this length
SPEC_FORMAT = 1      #: seed-file format version

_PERMUTATIONS = ("tree", "sequential", "reversed", "strided", "lfsr")


def _unary_op(kind: int):
    """The four elementwise int64 ops random stages compose."""
    return [lambda v: v + 3,
            lambda v: v * 2,
            lambda v: np.maximum(v - 5, 0),
            lambda v: v // 2][kind % 4]


def _coarse(v: np.ndarray) -> np.ndarray:
    return (np.asarray(v, np.int64) >> 3) << 3


def _permutation(name: str) -> Permutation:
    if name == "tree":
        return TreePermutation()
    if name == "sequential":
        return SequentialPermutation()
    if name == "reversed":
        return ReversedPermutation()
    if name == "strided":
        return StridedPermutation(stride=4)
    if name == "lfsr":
        return LfsrPermutation(seed=1)
    raise ValueError(f"unknown permutation {name!r}")


@dataclass
class FuzzFailure:
    """A shrunk falsifying example, ready to replay."""

    spec: dict[str, Any]
    error: str
    seed_file: str | None = None

    def __str__(self) -> str:
        where = (f" (saved to {self.seed_file})" if self.seed_file
                 else "")
        return (f"fuzzing found a falsifying automaton{where}:\n"
                f"{self.error}\nspec: {json.dumps(self.spec)}")


# -- spec generation ------------------------------------------------------

def spec_strategy():
    """A hypothesis strategy drawing plain-JSON automaton specs.

    Primitives only — ints, strings, bools, lists, dicts — so every
    drawn (and shrunk) example serializes losslessly to a seed file.
    """
    from hypothesis import strategies as st

    stage = st.fixed_dictionaries({
        "kind": st.integers(min_value=0, max_value=2),
        "op": st.integers(min_value=0, max_value=3),
        "cost": st.integers(min_value=1, max_value=50),
        "inputs": st.lists(st.integers(min_value=0, max_value=7),
                           min_size=1, max_size=2),
        "chunks": st.integers(min_value=1, max_value=4),
        "perm": st.sampled_from(_PERMUTATIONS),
        "sync": st.booleans(),
    })
    faults = st.one_of(
        st.none(),
        st.fixed_dictionaries({
            "seed": st.integers(min_value=0, max_value=2**16),
            "n": st.integers(min_value=1, max_value=3),
            "max_at": st.integers(min_value=1, max_value=24),
            "policy": st.sampled_from(["degrade", "restart"]),
        }))
    return st.fixed_dictionaries({
        "format": st.just(SPEC_FORMAT),
        "stages": st.lists(stage, min_size=1, max_size=6),
        "data": st.lists(st.integers(min_value=0, max_value=1000),
                         min_size=VEC, max_size=VEC),
        "cores": st.integers(min_value=1, max_value=32),
        "faults": faults,
        "stop_after": st.one_of(st.none(),
                                st.integers(min_value=1, max_value=8)),
    })


# -- spec -> automaton ----------------------------------------------------

def build_automaton(spec: dict[str, Any]) -> AnytimeAutomaton:
    """Deterministically construct the automaton a spec describes.

    Mirrors the strategy in ``tests/test_random_automata.py``: a
    linear-ish DAG where each stage consumes 1-2 earlier buffers, with
    three extensions — every sampling permutation (non-tree ones get an
    explicit :class:`ConstantFill`), optional synchronous map→fold
    pairs streaming updates over an :class:`UpdateChannel`, and any
    dangling buffers folded into a single terminal sink.
    """
    if spec.get("format") != SPEC_FORMAT:
        raise ValueError(
            f"unsupported spec format {spec.get('format')!r} "
            f"(expected {SPEC_FORMAT})")
    b_in = VersionedBuffer("in")
    buffers = [b_in]
    stages: list[Any] = []
    for i, s in enumerate(spec["stages"]):
        kind = int(s["kind"])
        op = _unary_op(int(s["op"]))
        cost = float(s["cost"])
        out = VersionedBuffer(f"b{i}")
        picks = [int(p) % len(buffers) for p in s["inputs"]]
        # dedup while preserving order (two picks may collide mod len)
        picks = list(dict.fromkeys(picks))
        inputs = tuple(buffers[p] for p in picks)

        if kind == 2 and bool(s.get("sync")):
            # A synchronous pair: a source map stage streaming updates
            # into a channel named after its own output buffer (the
            # precise() contract), plus a distributive fold child.
            # Only source stages may emit — a restarted pass on a
            # non-final input would never close the channel.
            channel = UpdateChannel(out.name)
            stages.append(_map_stage(
                f"s{i}", out, (b_in,), op, s, emit_to=channel))
            child_out = VersionedBuffer(f"b{i}g")
            stages.append(_sync_child(f"s{i}g", child_out, channel,
                                      int(s["op"])))
            buffers.append(out)
            buffers.append(child_out)
            continue

        if kind == 0 or len(inputs) >= 2:
            def fn(*vals, op=op):
                acc = vals[0]
                for v in vals[1:]:
                    acc = acc + v
                return op(acc)

            stages.append(PreciseStage(f"s{i}", out, inputs, fn,
                                       cost=cost))
        elif kind == 1:
            levels = [
                AccuracyLevel(lambda v, op=op: _coarse(op(v)),
                              cost=cost),
                AccuracyLevel(lambda v, op=op: op(v), cost=cost * 2),
            ]
            stages.append(IterativeStage(f"s{i}", out, inputs, levels))
        else:
            stages.append(_map_stage(f"s{i}", out, inputs, op, s))
        buffers.append(out)

    # guarantee a single terminal: chain any dangling buffers into a sum
    consumed = {b.name for st_ in stages for b in st_.inputs}
    consumed |= {st_.channel.name for st_ in stages
                 if isinstance(st_, SynchronousStage)}
    dangling = [b for b in buffers[:-1]
                if b.name not in consumed and b.name != "in"]
    if dangling:
        out = VersionedBuffer("sink")
        stages.append(PreciseStage(
            "sink", out, tuple(dangling) + (buffers[-1],),
            lambda *vs: sum(vs[1:], vs[0]), cost=1.0))
    data = np.asarray(spec["data"], dtype=np.int64)
    if data.shape != (VEC,):
        raise ValueError(f"spec data must be a {VEC}-vector")
    return AnytimeAutomaton(stages, name="fuzz",
                            external={"in": data})


def _map_stage(name: str, out: VersionedBuffer,
               inputs: tuple[VersionedBuffer, ...], op, s: dict[str, Any],
               emit_to: UpdateChannel | None = None) -> MapStage:
    perm_name = str(s.get("perm", "tree"))
    fill = None if perm_name == "tree" else ConstantFill(0)

    def elem(idx, *vals, op=op):
        acc = np.asarray(vals[0], np.int64)
        for v in vals[1:]:
            acc = acc + np.asarray(v, np.int64)
        return op(acc)[idx]

    return MapStage(name, out, inputs, elem, shape=VEC, dtype=np.int64,
                    permutation=_permutation(perm_name), fill=fill,
                    chunks=int(s["chunks"]),
                    cost_per_element=float(s["cost"]) / VEC,
                    emit_to=emit_to)


def _sync_child(name: str, out: VersionedBuffer, channel: UpdateChannel,
                op_kind: int) -> SynchronousStage:
    """A fold child distributive over elementwise map updates.

    The parent computes ``op(in)`` per element and streams
    ``(indices, values)`` updates; the child applies a second
    elementwise op ``g`` to each update and assigns — assignment is
    trivially distributive, so the accumulated output equals
    ``g(parent_precise)``.
    """
    g = _unary_op(op_kind + 1)

    def initial() -> np.ndarray:
        return np.zeros(VEC, dtype=np.int64)

    def update(acc, upd, g=g):
        indices, values = upd
        acc = np.array(acc, dtype=np.int64, copy=True)
        acc[indices] = g(np.asarray(values, np.int64))
        return acc

    return SynchronousStage(
        name, out, channel, initial_fn=initial, update_fn=update,
        update_cost=lambda upd: float(len(upd[0])),
        precise_fn=lambda parent: g(np.asarray(parent, np.int64)),
        precise_cost=float(VEC))


# -- execution + properties ----------------------------------------------

def run_spec(spec: dict[str, Any]) -> dict[str, Any]:
    """Execute a spec on the simulated executor and assert the
    guarantees; returns a small summary dict on success.

    Raises :class:`AssertionError` (including
    :class:`~repro.check.invariants.CheckFailure`) when a guarantee is
    broken — the property hypothesis shrinks against.
    """
    automaton = build_automaton(spec)
    reference = automaton.precise_output()
    terminal = automaton.terminal_buffer_name

    faults_cfg = spec.get("faults")
    injector = None
    policy = None
    if faults_cfg is not None:
        injector = FaultInjector.random_schedule(
            int(faults_cfg["seed"]),
            [s.name for s in automaton.graph.stages],
            n_faults=int(faults_cfg["n"]),
            max_at=int(faults_cfg["max_at"]))
        policy = FaultPolicy(on_failure=str(faults_cfg["policy"]),
                             max_retries=1)
    stop = (VersionCountStop(int(spec["stop_after"]))
            if spec.get("stop_after") is not None else None)

    checker = Checker.for_graph(automaton.graph, hash_values=True,
                                strict_order=True)
    result = automaton.run_simulated(
        total_cores=float(spec["cores"]), stop=stop,
        faults=policy, injector=injector, trace=checker)
    checker.close()
    checker.raise_if_violations()

    pristine = faults_cfg is None and stop is None
    records = result.output_records(terminal)
    if pristine:
        assert result.completed, "unfaulted run must complete"
        assert records, "terminal stage must publish at least once"
        final = records[-1]
        assert final.final, "last terminal version must be final"
        assert not any(r.final for r in records[:-1]), \
            "only the last terminal version may be final"
        assert np.array_equal(np.asarray(final.value), reference), \
            "final output must equal the precise evaluation bit-exactly"
        for stage in automaton.graph.stages:
            assert result.timeline.for_buffer(stage.output.name), \
                f"stage {stage.name} never published"
    elif result.completed and not result.errors \
            and not result.stopped_early:
        # faults that never fired / interrupts that never triggered
        # must leave the precise answer intact
        assert records and records[-1].final
        assert np.array_equal(np.asarray(records[-1].value), reference)
    times = [r.time for r in result.timeline.records]
    assert times == sorted(times), "records must be time-ordered"
    return {
        "completed": bool(result.completed),
        "stopped_early": bool(result.stopped_early),
        "errors": len(result.errors),
        "terminal_versions": len(records),
        "events": checker.report().events,
    }


# -- seed files -----------------------------------------------------------

def save_spec(spec: dict[str, Any], path: str,
              error: str | None = None) -> None:
    payload = {"format": SPEC_FORMAT, "spec": spec, "error": error}
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")


def load_spec(path: str) -> dict[str, Any]:
    with open(path, encoding="utf-8") as fh:
        payload = json.load(fh)
    spec = payload.get("spec", payload)   # accept bare specs too
    if spec.get("format") != SPEC_FORMAT:
        raise ValueError(
            f"{path}: unsupported seed-file format "
            f"{spec.get('format')!r}")
    return spec


def replay(path: str) -> dict[str, Any]:
    """Re-run a saved falsifying spec; raises if it still fails."""
    return run_spec(load_spec(path))


# -- the fuzz loop --------------------------------------------------------

def fuzz(max_examples: int = 100, seed_file: str | None = None,
         derandomize: bool = False) -> FuzzFailure | None:
    """Fuzz random automata; returns the shrunk failure or None.

    hypothesis drives generation and shrinking
    (``report_multiple_bugs=False`` so the single minimal example is
    the one we capture); the last spec the property saw when the run
    aborts *is* the shrunk falsifying example, which we serialize to
    ``seed_file`` for ``replay``.
    """
    from hypothesis import HealthCheck, given, settings

    last: dict[str, Any] = {}

    @settings(max_examples=max_examples, deadline=None, database=None,
              derandomize=derandomize, report_multiple_bugs=False,
              suppress_health_check=list(HealthCheck))
    @given(spec_strategy())
    def property_(spec: dict[str, Any]) -> None:
        last["spec"] = spec
        run_spec(spec)

    try:
        property_()
    except Exception as exc:
        spec = last.get("spec")
        if spec is None:          # generation itself broke; re-raise
            raise
        error = f"{type(exc).__name__}: {exc}"
        if seed_file is not None:
            save_spec(spec, seed_file, error=error)
        return FuzzFailure(spec=spec, error=error, seed_file=seed_file)
    return None
