"""Transport-differential conformance for the serving fleet.

The anytime guarantee must be transport-invariant: the *same*
duplicate-heavy workload served by an AF_UNIX (fork) fleet and by a
TCP fleet must seal bit-identical finals per request key, and killing
a TCP worker mid-run must end in a bit-exact final after the in-band
checkpoint migration — with zero invariant violations from a
:class:`~repro.check.invariants.Checker` attached to every worker-side
run (``check=True`` worker config) and none either when answers come
from the router's fleet-wide memo.

Three legs (:func:`run_fleet_differential`, ``repro check --fleet``):

``unix`` / ``tcp``
    The same duplicate-heavy spec list on a 2-worker fork fleet and a
    2-worker localhost TCP fleet.  Per-key ``value_digest`` sets must
    be singletons, equal across transports, and equal to the precise
    reference digest computed in-process.  Both legs must report
    memo/coalesce sharing (the duplicates) and zero violations.

``migration``
    A 3-worker TCP fleet with per-worker ``resume_dir``s; one worker
    that provably holds suspend checkpoints (frozen with SIGSTOP
    first) is SIGKILLed.  Orphans must migrate via in-band ``ckpt_*``
    frames (``migrated >= 1``), every request must complete with the
    reference digest when final, and violations must stay zero —
    including for runs restored mid-stream on the survivor.
"""

from __future__ import annotations

import os
import signal
import time as _time
from dataclasses import dataclass
from typing import Any, Callable

from ..apps.registry import get_app
from ..serve.fleet import value_digest
from ..serve.router import FleetRouter, summarize_fleet
from ..serve.transport import spawn_local_tcp_worker

__all__ = ["FleetDifferentialReport", "run_fleet_differential"]


@dataclass
class FleetDifferentialReport:
    """Transport matrix + migration outcome for one duplicate-heavy
    workload (see module docstring for the leg contracts)."""

    app: str
    size: int
    ok: bool
    legs: list[dict[str, Any]]
    mismatches: list[dict[str, Any]]

    def to_dict(self) -> dict[str, Any]:
        return {
            "report": "fleet-differential",
            "app": self.app, "size": self.size, "ok": self.ok,
            "legs": list(self.legs),
            "mismatches": list(self.mismatches),
        }

    def summary(self) -> str:
        verdict = "PASS" if self.ok else "FAIL"
        names = ", ".join(l["leg"] for l in self.legs)
        return (f"{self.app}: {verdict} across [{names}]; "
                f"{len(self.mismatches)} mismatch(es)")


def _reference_digests(app: str, size: int,
                       seeds: list[int]) -> dict[int, str]:
    """Precise in-process outputs per seed — the transport-independent
    ground truth every fleet's finals must match bit-exactly."""
    spec = get_app(app)
    return {seed: value_digest(
                spec.build(spec.make_input(size, seed)).precise_output())
            for seed in seeds}


def _collect(requests: list[Any]) -> tuple[dict[int, set[str]],
                                           list[int | None]]:
    """Per-seed digest sets of *final* completed answers, plus every
    reported violation count (non-terminal requests skipped — the
    drain-timeout mismatch already covers them)."""
    digests: dict[int, set[str]] = {}
    violations: list[int | None] = []
    for request in requests:
        if not request.done:
            continue
        out = request.result(timeout_s=0.0)
        violations.append(out.get("violations"))
        if out["state"] == "completed" and out.get("final") \
                and out.get("value_digest"):
            digests.setdefault(request.seed, set()).add(
                out["value_digest"])
    return digests, violations


def _run_leg(fleet: FleetRouter, specs: list[tuple[str, int, int]],
             slo: dict[str, Any],
             drain_timeout_s: float) -> tuple[list[Any], dict[str, Any]]:
    requests = [fleet.submit(app, size=size, seed=seed, slo=slo)
                for app, size, seed in specs]
    drained = fleet.drain(timeout_s=drain_timeout_s)
    summary = summarize_fleet(requests) if drained else {}
    summary["drained"] = drained
    return requests, summary


def _tcp_fleet(n: int, workdir: str, base_config: dict[str, Any],
               resume: bool) -> tuple[list[Any], list[tuple[str, int]]]:
    procs, endpoints = [], []
    for i in range(n):
        config = dict(base_config)
        if resume:
            config["resume_dir"] = os.path.join(workdir, f"w{i}")
        process, endpoint = spawn_local_tcp_worker(config)
        procs.append(process)
        endpoints.append(endpoint)
    return procs, endpoints


def _reap(procs: list[Any]) -> None:
    for process in procs:
        if process.is_alive():
            process.terminate()
        process.join(timeout=5.0)


def run_fleet_differential(app: str = "dwt53", size: int = 16,
                           distinct: int = 3, duplicates: int = 4,
                           migration_size: int = 96,
                           workdir: str | None = None,
                           timeout_s: float = 240.0,
                           progress: Callable[[str], None]
                           | None = None) -> FleetDifferentialReport:
    """AF_UNIX vs TCP digest equality plus the kill-one-TCP-worker
    in-band migration leg (module docstring has the full contract).

    The duplicate-heavy workload is ``distinct`` seeds ×
    ``duplicates`` copies each; migration runs ``migration_size``
    inputs so runs live long enough to be suspended and killed.
    """
    import tempfile

    def note(text: str) -> None:
        if progress is not None:
            progress(text)

    workdir = workdir or tempfile.mkdtemp(prefix="fleetdiff-")
    legs: list[dict[str, Any]] = []
    mismatches: list[dict[str, Any]] = []
    seeds = list(range(distinct))
    specs = [(app, size, seed) for seed in seeds
             for _ in range(duplicates)]
    slo = {"deadline_s": timeout_s}
    config = {"slots": 2, "queue_limit": max(8, len(specs)),
              "check": True}
    reference = _reference_digests(app, size, seeds)

    def check_digests(leg: str, digests: dict[int, set[str]],
                      violations: list[int | None],
                      summary: dict[str, Any]) -> dict[str, Any]:
        for seed, seen in sorted(digests.items()):
            if len(seen) != 1:
                mismatches.append({"leg": leg, "seed": seed,
                                   "kind": "digest-divergence",
                                   "digests": sorted(seen)})
            elif next(iter(seen)) != reference[seed]:
                mismatches.append({"leg": leg, "seed": seed,
                                   "kind": "digest-vs-reference",
                                   "digest": next(iter(seen)),
                                   "reference": reference[seed]})
        bad = [v for v in violations if v not in (0, None)]
        if bad:
            mismatches.append({"leg": leg, "kind": "violations",
                               "counts": bad})
        if not summary.get("drained"):
            mismatches.append({"leg": leg, "kind": "drain-timeout"})
        return {
            "leg": leg,
            "drained": bool(summary.get("drained")),
            "completed": summary.get("completed"),
            "failed": summary.get("failed"),
            "shared": (summary.get("coalesced", 0)
                       + summary.get("memo_hits", 0)),
            "violations_checked": sum(1 for v in violations
                                      if v is not None),
            "digests": {str(s): sorted(d)
                        for s, d in sorted(digests.items())},
        }

    # -- leg 1: AF_UNIX fork fleet ---------------------------------------
    note("leg unix: 2-worker fork fleet")
    with FleetRouter(workers=2, worker_config=config) as fleet:
        requests, summary = _run_leg(fleet, specs, slo, timeout_s)
        digests_unix, violations = _collect(requests)
    legs.append(check_digests("unix", digests_unix, violations,
                              summary))

    # -- leg 2: TCP fleet, same workload ---------------------------------
    note("leg tcp: 2-worker localhost TCP fleet")
    procs, endpoints = _tcp_fleet(2, workdir, config, resume=False)
    try:
        with FleetRouter(endpoints=endpoints,
                         worker_config=config) as fleet:
            requests, summary = _run_leg(fleet, specs, slo, timeout_s)
            digests_tcp, violations = _collect(requests)
    finally:
        _reap(procs)
    legs.append(check_digests("tcp", digests_tcp, violations, summary))
    if {s: sorted(d) for s, d in digests_unix.items()} \
            != {s: sorted(d) for s, d in digests_tcp.items()}:
        mismatches.append({"leg": "unix-vs-tcp",
                           "kind": "digest-set-mismatch",
                           "unix": {str(s): sorted(d) for s, d
                                    in digests_unix.items()},
                           "tcp": {str(s): sorted(d) for s, d
                                   in digests_tcp.items()}})

    # -- leg 3: kill one TCP worker, require in-band migration -----------
    note("leg migration: SIGKILL one TCP worker mid-run")
    mig_seeds = list(range(6))
    mig_specs = [("2dconv", migration_size, seed)
                 for seed in mig_seeds]
    mig_reference = _reference_digests("2dconv", migration_size,
                                       mig_seeds)
    mig_config = {"slots": 1, "queue_limit": 6, "quantum_s": 0.02,
                  "check": True}
    procs, endpoints = _tcp_fleet(3, workdir, mig_config, resume=True)
    leg: dict[str, Any] = {"leg": "migration"}
    try:
        with FleetRouter(endpoints=endpoints, resume_dir=workdir,
                         worker_config=mig_config) as fleet:
            requests = [fleet.submit(a, size=s, seed=sd, slo=slo)
                        for a, s, sd in mig_specs]
            victim = None
            deadline = _time.monotonic() + 60.0
            while victim is None and _time.monotonic() < deadline:
                with fleet._lock:
                    candidates = [l for l in fleet._links if l.inflight]
                for link in candidates:
                    os.kill(procs[link.index].pid, signal.SIGSTOP)
                    wdir = os.path.join(workdir, f"w{link.index}")
                    if link.inflight and os.path.isdir(wdir) and any(
                            f.endswith(".rck")
                            for f in os.listdir(wdir)):
                        victim = link   # frozen, checkpoints pinned
                        break
                    os.kill(procs[link.index].pid, signal.SIGCONT)
                if victim is None:
                    _time.sleep(0.02)
            if victim is None:
                mismatches.append({"leg": "migration",
                                   "kind": "no-checkpoint-pinned"})
            else:
                os.kill(procs[victim.index].pid, signal.SIGKILL)
            drained = fleet.drain(timeout_s=timeout_s)
            summary = (summarize_fleet(requests) if drained else {})
            summary["drained"] = drained
            counters = dict(fleet.counters)
            digests_mig, violations = _collect(requests)
    finally:
        _reap(procs)
    for seed, seen in sorted(digests_mig.items()):
        expected = mig_reference[seed]
        if seen != {expected}:
            mismatches.append({"leg": "migration", "seed": seed,
                               "kind": "digest-vs-reference",
                               "digests": sorted(seen),
                               "reference": expected})
    bad = [v for v in violations if v not in (0, None)]
    if bad:
        mismatches.append({"leg": "migration", "kind": "violations",
                           "counts": bad})
    if not summary.get("drained"):
        mismatches.append({"leg": "migration", "kind": "drain-timeout"})
    elif summary.get("failed"):
        mismatches.append({"leg": "migration", "kind": "failed",
                           "count": summary["failed"]})
    if victim is not None and counters.get("migrated", 0) < 1:
        mismatches.append({"leg": "migration",
                           "kind": "no-in-band-migration",
                           "counters": counters})
    leg.update({
        "drained": bool(summary.get("drained")),
        "completed": summary.get("completed"),
        "failed": summary.get("failed"),
        "worker_deaths": counters.get("worker_deaths"),
        "migrated": counters.get("migrated"),
        "violations_checked": sum(1 for v in violations
                                  if v is not None),
    })
    legs.append(leg)

    return FleetDifferentialReport(
        app=app, size=size, ok=not mismatches, legs=legs,
        mismatches=mismatches)
