"""The runtime invariant checker: a trace sink that proves a run honest.

:class:`Checker` implements the :class:`~repro.core.tracing.TraceSink`
protocol, so it attaches to *any* executor — simulated, threaded,
process, or a serving-layer run — through the same ``trace=`` parameter
the observability layer already plumbs everywhere.  Every event the
executor (and the buffer/channel tracer hooks) emits is validated
against the anytime guarantees; violations are collected as structured
:class:`Violation` records, not raised mid-run (pass ``fail_fast=True``
to turn the first violation into an immediate :class:`CheckFailure`).

Checked invariants (the ``invariant`` field of each violation):

``version-order``
    Buffer versions must advance by exactly one per write — a skipped
    or regressed version means a lost or reordered publication.
``write-after-final``
    The precise output is frozen; no write may carry a version newer
    than the final one.
``write-after-seal``
    A sealed buffer (producer degraded) must never grow a new version.
``seal-once``
    Sealing is a one-shot transition; duplicate seal events mean the
    runtime misreported the buffer lifecycle.
``foreign-writer``
    Property 2: every write to a stage-owned buffer must be attributed
    to that stage (requires an ownership map — see :meth:`for_graph`).
``channel-causality``
    A consumer can never have received more updates than its producer
    emitted.
``channel-state``
    (strict order only) The queue depth reported by an emit/recv event
    must match the running emitted-received balance.
``emit-after-close``
    (strict order only) No update may be enqueued on a closed stream.
``channel-close-once``
    A channel close is a one-shot transition.
``pin-balance``
    Shared-memory slot pins and unpins must balance: an unpin of an
    unpinned slot means a consumer's snapshot could have been reused
    under it.
``accuracy-regression``
    ``accuracy.sample`` values for a buffer must be non-decreasing up
    to the buffer's tolerance (dB) — the anytime refinement contract.
    Disabled per buffer when its tolerance is None (non-monotone by
    design).
``accuracy-nan``
    The accuracy metric produced NaN — the comparison itself broke.
``span-balance``
    Every ``stage.start`` needs its ``stage.finish`` and vice versa
    (checked per event and again at :meth:`close`).
``value-mutated``
    A buffer's content changed *after* it was published — post-seal
    mutation of a supposedly immutable approximation.  Requires buffer
    references (see :meth:`for_graph` / ``hash_buffers``); detected by
    digesting values at write time and re-digesting at close.

Ordering caveat: the threaded and process executors emit events from
several threads, so cross-object event order is not causal.  The
checker therefore keys its per-buffer checks on *version numbers*
(assigned under the buffer lock — race-free) and defers channel-total
checks to :meth:`close`.  ``strict_order=True`` (right for simulated
traces, recorded single-threaded streams and tampered replays)
additionally enforces stream-order causality on channels.
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping

import numpy as np

from ..core.tracing import TraceEvent, TraceSink

__all__ = ["Violation", "CheckReport", "CheckFailure", "Checker",
           "check_events", "INVARIANTS"]

#: every invariant the checker can flag (the vocabulary of
#: ``Violation.invariant``)
INVARIANTS = (
    "version-order", "write-after-final", "write-after-seal",
    "seal-once", "foreign-writer", "channel-causality", "channel-state",
    "emit-after-close", "channel-close-once", "pin-balance",
    "accuracy-regression", "accuracy-nan", "span-balance",
    "value-mutated",
)


class CheckFailure(AssertionError):
    """Raised by ``fail_fast`` checkers and :meth:`Checker.raise_if_violations`."""

    def __init__(self, violations: list["Violation"]) -> None:
        self.violations = list(violations)
        lines = "\n".join(f"  - {v.describe()}" for v in self.violations)
        super().__init__(
            f"{len(self.violations)} anytime-invariant violation(s):\n"
            f"{lines}")


@dataclass(frozen=True)
class Violation:
    """One broken invariant, anchored to the event that revealed it."""

    invariant: str
    ts: float
    detail: str
    target: str | None = None
    stage: str | None = None
    index: int | None = None       # ordinal of the offending event

    def describe(self) -> str:
        where = f" [{self.target}]" if self.target else ""
        who = f" ({self.stage})" if self.stage else ""
        return (f"{self.invariant}{where}{who} at ts={self.ts:.6g}: "
                f"{self.detail}")

    def to_dict(self) -> dict[str, Any]:
        return {"invariant": self.invariant, "ts": self.ts,
                "detail": self.detail, "target": self.target,
                "stage": self.stage, "index": self.index}


@dataclass
class CheckReport:
    """Machine-readable outcome of one checked run."""

    ok: bool
    violations: list[Violation]
    events: int
    kind_counts: dict[str, int]
    stats: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        return {"ok": self.ok, "events": self.events,
                "kind_counts": dict(self.kind_counts),
                "violations": [v.to_dict() for v in self.violations],
                "stats": dict(self.stats)}


def _digest(value: Any) -> str:
    """Content fingerprint used by the post-publication mutation check."""
    h = hashlib.sha1()
    if isinstance(value, np.ndarray):
        h.update(str(value.dtype).encode())
        h.update(str(value.shape).encode())
        h.update(np.ascontiguousarray(value).tobytes())
    else:
        h.update(repr(value).encode())
    return h.hexdigest()


@dataclass
class _BufState:
    last_version: int | None = None
    final_version: int | None = None
    seal_version: int | None = None
    seal_events: int = 0
    writes: int = 0


@dataclass
class _ChanState:
    emitted: int = 0
    received: int = 0
    closed: bool = False
    close_events: int = 0


class Checker:
    """A validating trace sink (see module docstring for the contract).

    Parameters
    ----------
    owners:
        ``{buffer_name: stage_name}`` for Property-2 attribution; writes
        to unknown buffers are only version-checked.
    tolerance_db:
        Default accuracy-regression tolerance in dB applied to every
        ``accuracy.sample`` target.  ``None`` (default) disables the
        accuracy check unless a per-buffer tolerance is given.
    tolerances:
        Per-buffer overrides; an explicit ``None`` entry exempts a
        non-monotone-by-design buffer.
    strict_order:
        Enable stream-order channel causality checks (deterministic /
        single-threaded traces only; see module docstring).
    hash_buffers:
        ``{buffer_name: VersionedBuffer}`` — snapshot and digest these
        buffers' values at every write event and re-verify the digest at
        :meth:`close`, catching post-publication mutation.
    forward:
        Optional downstream :class:`TraceSink` receiving every event
        unchanged (tee), so checking composes with recording.
    fail_fast:
        Raise :class:`CheckFailure` at the first violation instead of
        collecting.
    """

    enabled = True

    def __init__(self, owners: Mapping[str, str] | None = None,
                 tolerance_db: float | None = None,
                 tolerances: Mapping[str, float | None] | None = None,
                 strict_order: bool = False,
                 hash_buffers: Mapping[str, Any] | None = None,
                 forward: TraceSink | None = None,
                 fail_fast: bool = False) -> None:
        self.owners = dict(owners or {})
        self.tolerance_db = tolerance_db
        self.tolerances = dict(tolerances or {})
        self.strict_order = bool(strict_order)
        self.hash_buffers = dict(hash_buffers or {})
        self.forward = forward
        self.fail_fast = bool(fail_fast)
        self.violations: list[Violation] = []
        self._events = 0
        self._kinds: dict[str, int] = {}
        self._buffers: dict[str, _BufState] = {}
        self._channels: dict[str, _ChanState] = {}
        self._pins: dict[tuple[str, int], int] = {}
        self._accuracy_best: dict[str, float] = {}
        self._span_depth: dict[str, int] = {}
        self._digests: dict[str, tuple[int, str]] = {}
        self._closed = False

    @classmethod
    def for_graph(cls, graph: Any, hash_values: bool = False,
                  **kwargs: Any) -> "Checker":
        """A checker pre-wired to an automaton graph's structure.

        Derives the Property-2 ownership map from the graph's
        producers; ``hash_values=True`` additionally registers every
        stage-owned buffer for the post-publication mutation check.
        """
        owners = {s.output.name: s.name for s in graph.stages}
        hash_buffers = ({s.output.name: s.output for s in graph.stages}
                        if hash_values else None)
        return cls(owners=owners, hash_buffers=hash_buffers, **kwargs)

    def seed_resumed(self, graph: Any) -> None:
        """Prime the checker with a restored run's starting state.

        A run resumed from a checkpoint (:mod:`repro.ckpt`) starts its
        trace mid-stream: buffers already hold versions and channels may
        carry a queued backlog whose emits happened before the
        interruption.  Without seeding, the first continuation write
        would evade the +1 version-order check (first-observation is
        accepted at any version) and draining the restored backlog
        would trip ``channel-causality`` at close.  Call this after
        :meth:`~repro.core.automaton.AnytimeAutomaton.restore` and
        before launching the continuation.
        """
        for name, buffer in graph.buffers.items():
            snap = buffer.snapshot()
            if snap.version == 0:
                continue
            buf = self._buffers.setdefault(name, _BufState())
            buf.last_version = snap.version
            if snap.final and buf.final_version is None:
                buf.final_version = snap.version
            if snap.sealed and buf.seal_version is None:
                buf.seal_version = snap.version
                buf.seal_events = 1
        for name, channel in graph.channels.items():
            chan = self._channels.setdefault(name, _ChanState())
            chan.emitted = channel.emitted
            chan.received = channel.received
            chan.closed = channel.closed

    # -- TraceSink protocol ----------------------------------------------

    def emit(self, event: TraceEvent) -> None:
        index = self._events
        self._events += 1
        self._kinds[event.kind] = self._kinds.get(event.kind, 0) + 1
        handler = self._HANDLERS.get(event.kind)
        if handler is not None:
            handler(self, event, index)
        if self.forward is not None:
            self.forward.emit(event)

    def close(self) -> None:
        """Run the end-of-stream checks; idempotent."""
        if self._closed:
            return
        self._closed = True
        for name, chan in self._channels.items():
            if chan.received > chan.emitted:
                self._flag("channel-causality", 0.0, name, None, None,
                           f"{chan.received} update(s) received but only "
                           f"{chan.emitted} emitted")
        for stage, depth in self._span_depth.items():
            if depth != 0:
                self._flag("span-balance", 0.0, None, stage, None,
                           f"{depth} stage.start event(s) without a "
                           f"matching stage.finish at end of trace")
        for name, (version, digest) in self._digests.items():
            buffer = self.hash_buffers.get(name)
            if buffer is None:
                continue
            snap = buffer.snapshot()
            if snap.version == version and _digest(snap.value) != digest:
                self._flag("value-mutated", 0.0, name,
                           self.owners.get(name), None,
                           f"version {version} changed content after "
                           f"publication (post-seal mutation)")
        if self.forward is not None:
            self.forward.close()

    # -- results ---------------------------------------------------------

    @property
    def ok(self) -> bool:
        return not self.violations

    def report(self) -> CheckReport:
        outstanding = {f"{seg}:{slot}": n
                       for (seg, slot), n in self._pins.items() if n}
        return CheckReport(
            ok=self.ok, violations=list(self.violations),
            events=self._events, kind_counts=dict(self._kinds),
            stats={
                "buffers": len(self._buffers),
                "channels": len(self._channels),
                "outstanding_pins": outstanding,
                "strict_order": self.strict_order,
            })

    def raise_if_violations(self) -> None:
        if self.violations:
            raise CheckFailure(self.violations)

    # -- internals -------------------------------------------------------

    def _flag(self, invariant: str, ts: float, target: str | None,
              stage: str | None, index: int | None, detail: str) -> None:
        violation = Violation(invariant=invariant, ts=ts, detail=detail,
                              target=target, stage=stage, index=index)
        self.violations.append(violation)
        if self.fail_fast:
            raise CheckFailure([violation])

    def _on_write(self, e: TraceEvent, i: int) -> None:
        name = e.target or "?"
        version = int(e.args.get("version", 0))
        final = bool(e.args.get("final", False))
        buf = self._buffers.setdefault(name, _BufState())
        buf.writes += 1
        if buf.last_version is not None \
                and version != buf.last_version + 1:
            self._flag("version-order", e.ts, name, e.stage, i,
                       f"version {version} after {buf.last_version} "
                       f"(must advance by exactly one)")
        buf.last_version = max(version, buf.last_version or 0)
        if buf.final_version is not None \
                and version > buf.final_version:
            self._flag("write-after-final", e.ts, name, e.stage, i,
                       f"version {version} written after final version "
                       f"{buf.final_version}")
        if buf.seal_version is not None and version > buf.seal_version:
            self._flag("write-after-seal", e.ts, name, e.stage, i,
                       f"version {version} written after seal at "
                       f"version {buf.seal_version}")
        if final:
            if buf.final_version is not None:
                self._flag("write-after-final", e.ts, name, e.stage, i,
                           f"second final write (version {version}; "
                           f"final was {buf.final_version})")
            else:
                buf.final_version = version
        owner = self.owners.get(name)
        if owner is not None and e.stage != owner:
            self._flag("foreign-writer", e.ts, name, e.stage, i,
                       f"write attributed to {e.stage!r} on a buffer "
                       f"owned by {owner!r} (Property 2)")
        buffer = self.hash_buffers.get(name)
        if buffer is not None:
            snap = buffer.snapshot()
            # keyed by the snapshot's own version: racing a newer write
            # simply records the newer version's digest
            self._digests[name] = (snap.version, _digest(snap.value))

    def _on_seal(self, e: TraceEvent, i: int) -> None:
        name = e.target or "?"
        buf = self._buffers.setdefault(name, _BufState())
        buf.seal_events += 1
        if buf.seal_events > 1:
            self._flag("seal-once", e.ts, name, e.stage, i,
                       f"seal event #{buf.seal_events} (sealing is a "
                       f"one-shot transition)")
        version = int(e.args.get("version", buf.last_version or 0))
        if buf.seal_version is None:
            buf.seal_version = version

    def _on_emit(self, e: TraceEvent, i: int) -> None:
        name = e.target or "?"
        chan = self._channels.setdefault(name, _ChanState())
        chan.emitted += 1
        if self.strict_order:
            if chan.closed:
                self._flag("emit-after-close", e.ts, name, e.stage, i,
                           "update enqueued on a closed stream")
            queued = e.args.get("queued")
            expected = chan.emitted - chan.received
            if queued is not None and int(queued) != expected:
                self._flag("channel-state", e.ts, name, e.stage, i,
                           f"emit reports queue depth {queued}, "
                           f"running balance says {expected}")

    def _on_recv(self, e: TraceEvent, i: int) -> None:
        name = e.target or "?"
        chan = self._channels.setdefault(name, _ChanState())
        chan.received += 1
        if self.strict_order:
            if chan.received > chan.emitted:
                self._flag("channel-causality", e.ts, name, e.stage, i,
                           f"received update #{chan.received} with only "
                           f"{chan.emitted} emitted")
            queued = e.args.get("queued")
            expected = chan.emitted - chan.received
            if queued is not None and int(queued) != expected:
                self._flag("channel-state", e.ts, name, e.stage, i,
                           f"recv reports queue depth {queued}, "
                           f"running balance says {expected}")

    def _on_close(self, e: TraceEvent, i: int) -> None:
        name = e.target or "?"
        chan = self._channels.setdefault(name, _ChanState())
        if e.kind == "channel.close":
            chan.close_events += 1
            if chan.close_events > 1:
                self._flag("channel-close-once", e.ts, name, e.stage, i,
                           f"close event #{chan.close_events}")
        chan.closed = True

    def _on_pin(self, e: TraceEvent, i: int) -> None:
        key = (str(e.args.get("segment", e.target)),
               int(e.args.get("slot", -1)))
        self._pins[key] = self._pins.get(key, 0) + 1

    def _on_unpin(self, e: TraceEvent, i: int) -> None:
        key = (str(e.args.get("segment", e.target)),
               int(e.args.get("slot", -1)))
        balance = self._pins.get(key, 0)
        if balance <= 0:
            self._flag("pin-balance", e.ts, e.target, e.stage, i,
                       f"unpin of unpinned slot {key[1]} in segment "
                       f"{key[0]}")
        self._pins[key] = balance - 1

    def _on_accuracy(self, e: TraceEvent, i: int) -> None:
        name = e.target or "?"
        tol = self.tolerances.get(name, self.tolerance_db)
        if tol is None:
            return
        acc = float(e.args.get("accuracy", 0.0))
        if math.isnan(acc):
            self._flag("accuracy-nan", e.ts, name, e.stage, i,
                       "accuracy metric returned NaN")
            return
        best = self._accuracy_best.get(name)
        if best is not None and acc < best - tol:
            self._flag("accuracy-regression", e.ts, name, e.stage, i,
                       f"accuracy fell to {acc:.4g} dB from a best of "
                       f"{best:.4g} dB (tolerance {tol:g} dB)")
        if best is None or acc > best:
            self._accuracy_best[name] = acc

    def _on_start(self, e: TraceEvent, i: int) -> None:
        stage = e.stage or "?"
        self._span_depth[stage] = self._span_depth.get(stage, 0) + 1
        if self._span_depth[stage] > 1:
            self._flag("span-balance", e.ts, None, stage, i,
                       f"stage.start while {self._span_depth[stage] - 1} "
                       f"span(s) already open")

    def _on_finish(self, e: TraceEvent, i: int) -> None:
        stage = e.stage or "?"
        depth = self._span_depth.get(stage, 0)
        if depth <= 0:
            self._flag("span-balance", e.ts, None, stage, i,
                       "stage.finish without a matching stage.start")
        self._span_depth[stage] = depth - 1 if depth > 0 else 0

    _HANDLERS = {
        "buffer.write": _on_write,
        "buffer.seal": _on_seal,
        "channel.emit": _on_emit,
        "channel.recv": _on_recv,
        "channel.close": _on_close,
        "channel.abort": _on_close,
        "shm.pin": _on_pin,
        "shm.unpin": _on_unpin,
        "accuracy.sample": _on_accuracy,
        "stage.start": _on_start,
        "stage.finish": _on_finish,
    }


def check_events(events: Iterable[TraceEvent],
                 **kwargs: Any) -> CheckReport:
    """Feed a recorded event stream through a fresh strict checker.

    Recorded streams are single sequences, so ``strict_order`` defaults
    to True here (override via ``kwargs``).
    """
    kwargs.setdefault("strict_order", True)
    checker = Checker(**kwargs)
    for event in events:
        checker.emit(event)
    checker.close()
    return checker.report()
