"""Checker self-test: deliberately broken runs the checker must catch.

A checker that never fires proves nothing.  This module is the
falsifiability story for :mod:`repro.check.invariants`: a table of
:class:`SelfTestCase` entries, one (or more) per invariant class, each
producing a deliberately broken execution and asserting the checker
reports exactly the expected violation.

Two mechanisms, because the runtime actively *prevents* most
violations:

**live** cases
    Genuinely broken stages run on a real executor — a stage whose
    accuracy regresses mid-run, a stage that mutates its published
    value after sealing it, a stage that writes a sibling's buffer
    out-of-band.  These prove the checker catches misbehavior through
    the same trace plumbing real runs use.  (The process executor
    isolates workers so in-worker mutation and foreign writes never
    reach the parent's buffers — exactly the protection Property 2
    wants — so those cases run on the simulated and threaded executors
    only; the accuracy-regression case runs on all three.)

**tamper** cases
    The runtime itself refuses some violations (a
    :class:`~repro.core.buffer.VersionedBuffer` raises on post-final
    writes rather than emitting a bogus event), so for those we replay
    *tampered event streams* through :func:`~repro.check.invariants.check_events`
    — the recorded-trace audit path — covering every invariant class
    uniformly, independent of executor.

``repro check --self-test`` runs the whole table and fails unless every
case is caught with no stray violations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np

from ..core.automaton import AnytimeAutomaton
from ..core.buffer import VersionedBuffer
from ..core.stage import Compute, PreciseStage, Stage, Write
from ..core.tracing import TraceEvent
from ..metrics.snr import snr_db
from .invariants import Checker, CheckReport, check_events

__all__ = ["SelfTestCase", "SelfTestOutcome", "SelfTestReport",
           "SELF_TEST_CASES", "run_self_test", "LIVE_EXECUTORS"]

#: executors live cases may run on
LIVE_EXECUTORS = ("simulated", "threaded", "process")


@dataclass(frozen=True)
class SelfTestCase:
    """One deliberately broken execution and its expected verdict.

    ``run(executor)`` produces a :class:`CheckReport`; ``executor`` is
    ``"trace"`` for tamper cases (executor-independent) and one of
    :data:`LIVE_EXECUTORS` for live cases.  ``allowed`` lists further
    invariants the breakage may legitimately trip as collateral.
    """

    name: str
    invariant: str
    mode: str                      # "tamper" | "live"
    description: str
    run: Callable[[str], CheckReport]
    executors: tuple[str, ...] = ("trace",)
    allowed: tuple[str, ...] = ()

    def evaluate(self, executor: str) -> "SelfTestOutcome":
        report = self.run(executor)
        found = sorted({v.invariant for v in report.violations})
        tolerated = set(self.allowed) | {self.invariant}
        stray = [k for k in found if k not in tolerated]
        return SelfTestOutcome(
            case=self.name, executor=executor,
            expected=self.invariant, found=found,
            caught=self.invariant in found, stray=stray,
            violations=[v.to_dict() for v in report.violations])


@dataclass
class SelfTestOutcome:
    case: str
    executor: str
    expected: str
    found: list[str]
    caught: bool
    stray: list[str]
    violations: list[dict[str, Any]]

    @property
    def ok(self) -> bool:
        return self.caught and not self.stray

    def describe(self) -> str:
        status = "caught" if self.ok else (
            "MISSED" if not self.caught else f"stray {self.stray}")
        return (f"{self.case} [{self.executor}] expected "
                f"{self.expected}: {status}")


@dataclass
class SelfTestReport:
    outcomes: list[SelfTestOutcome] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return bool(self.outcomes) and all(o.ok for o in self.outcomes)

    def to_dict(self) -> dict[str, Any]:
        return {
            "report": "checker-self-test", "ok": self.ok,
            "cases": len(self.outcomes),
            "outcomes": [
                {"case": o.case, "executor": o.executor,
                 "expected": o.expected, "found": o.found,
                 "caught": o.caught, "stray": o.stray, "ok": o.ok,
                 "violations": o.violations}
                for o in self.outcomes],
        }

    def summary(self) -> str:
        ok = sum(1 for o in self.outcomes if o.ok)
        lines = [f"checker self-test: {ok}/{len(self.outcomes)} "
                 f"violation cases caught"]
        lines += [f"  {o.describe()}" for o in self.outcomes]
        return "\n".join(lines)


# -- tampered event streams ----------------------------------------------

def _ev(ts: float, kind: str, stage: str | None = None,
        target: str | None = None, **args: Any) -> TraceEvent:
    return TraceEvent(ts=ts, kind=kind, stage=stage, target=target,
                      args=args)


def _w(ts: float, version: int, final: bool = False,
       stage: str = "s", target: str = "b") -> TraceEvent:
    return _ev(ts, "buffer.write", stage, target,
               version=version, final=final)


def _tamper(events: list[TraceEvent],
            **kwargs: Any) -> Callable[[str], CheckReport]:
    def run(executor: str) -> CheckReport:
        return check_events(events, **kwargs)
    return run


def _tamper_value_mutated(executor: str) -> CheckReport:
    # a real buffer holding a mutable (list) value that changes after
    # its write event was recorded
    buffer = VersionedBuffer("b")
    buffer.register_writer("s")
    value = [1, 2, 3]
    version = buffer.write(value, final=True, writer="s")
    checker = Checker(owners={"b": "s"}, hash_buffers={"b": buffer},
                      strict_order=True)
    checker.emit(_w(0.0, version, final=True))   # digest taken here
    value[0] = 999          # post-publication mutation
    checker.close()                               # re-digest differs
    return checker.report()


# -- live broken stages ---------------------------------------------------

class _RegressingStage(Stage):
    """Publishes a near-precise version, then a much worse one.

    Breaks monotone refinement: the accuracy stream (via
    ``trace_metric``) collapses at version 2 before recovering to the
    precise output.
    """

    def run_once(self, snaps, inputs_final):
        (value,) = self.input_values(snaps)
        value = np.asarray(value, np.float64)
        yield Compute(1.0, label=f"{self.name}:good")
        yield Write(value + 0.01)
        yield Compute(1.0, label=f"{self.name}:bad")
        yield Write(np.full_like(value, 1e6))
        yield Compute(1.0, label=f"{self.name}:precise")
        yield Write(value.copy(), final=inputs_final)

    def precise(self, input_values):
        return np.asarray(input_values[self.inputs[0].name], np.float64)

    @property
    def precise_cost(self) -> float:
        return 3.0


class _MutatingStage(Stage):
    """Publishes a mutable value as final, then keeps mutating it.

    Lists pass through the buffer's freeze unshared, so the published
    approximation silently changes after sealing — exactly what the
    write-time digest / close-time re-digest pair exists to catch.
    """

    def run_once(self, snaps, inputs_final):
        (value,) = self.input_values(snaps)
        payload = [float(v) for v in np.asarray(value).ravel()[:4]]
        yield Compute(1.0, label=f"{self.name}:compute")
        yield Write(payload, final=inputs_final)
        payload[0] = -1.0       # post-seal mutation
        yield Compute(0.0, label=f"{self.name}:cover-tracks")

    def precise(self, input_values):
        value = input_values[self.inputs[0].name]
        return [float(v) for v in np.asarray(value).ravel()[:4]]

    @property
    def precise_cost(self) -> float:
        return 1.0


class _OutOfBandWriter(Stage):
    """Writes a downstream sibling's buffer directly (Property 2 break).

    The victim buffer's tracer still fires, so the checker sees a write
    whose attributed stage is not the registered owner.
    """

    def __init__(self, name: str, output: VersionedBuffer,
                 inputs: tuple[VersionedBuffer, ...],
                 victim: VersionedBuffer) -> None:
        super().__init__(name, output, inputs)
        self.victim = victim

    def run_once(self, snaps, inputs_final):
        (value,) = self.input_values(snaps)
        yield Compute(1.0, label=f"{self.name}:compute")
        # out-of-band: bypass the command protocol and poke the
        # victim's buffer (writer unattributed, so the buffer's own
        # Property-2 guard cannot refuse it)
        self.victim.write(np.asarray(value, np.float64) * 0.5)
        yield Write(np.asarray(value, np.float64), final=inputs_final)

    def precise(self, input_values):
        return np.asarray(input_values[self.inputs[0].name], np.float64)

    @property
    def precise_cost(self) -> float:
        return 1.0


def _input_vector() -> np.ndarray:
    return np.linspace(1.0, 16.0, 16)


def _run_live(build: Callable[[VersionedBuffer], list[Stage]],
              executor: str, metric: bool = False,
              tolerance_db: float | None = None) -> CheckReport:
    b_in = VersionedBuffer("in")
    data = _input_vector()
    stages = build(b_in)
    automaton = AnytimeAutomaton(stages, name="selftest",
                                 external={"in": data})
    checker = Checker.for_graph(
        automaton.graph, hash_values=(executor != "process"),
        strict_order=(executor == "simulated"),
        tolerances={automaton.terminal_buffer_name: tolerance_db})
    kwargs: dict[str, Any] = {"trace": checker}
    if metric:
        kwargs["trace_metric"] = snr_db
        kwargs["trace_reference"] = data
    if executor == "simulated":
        automaton.run_simulated(**kwargs)
    elif executor == "threaded":
        automaton.run_threaded(timeout_s=60.0, **kwargs)
    elif executor == "process":
        automaton.run_processes(timeout_s=60.0, **kwargs)
    else:
        raise ValueError(f"unknown executor {executor!r}")
    checker.close()
    return checker.report()


def _live_regression(executor: str) -> CheckReport:
    return _run_live(
        lambda b_in: [_RegressingStage(
            "reg", VersionedBuffer("out"), (b_in,))],
        executor, metric=True, tolerance_db=0.0)


def _live_mutation(executor: str) -> CheckReport:
    return _run_live(
        lambda b_in: [_MutatingStage(
            "mut", VersionedBuffer("out"), (b_in,))],
        executor)


def _live_foreign_write(executor: str) -> CheckReport:
    def build(b_in: VersionedBuffer) -> list[Stage]:
        b0 = VersionedBuffer("b0")
        victim = VersionedBuffer("victim")
        evil = _OutOfBandWriter("evil", b0, (b_in,), victim)
        honest = PreciseStage(
            "honest", victim, (b0,),
            lambda v: np.asarray(v, np.float64) + 1.0, cost=1.0)
        return [evil, honest]
    return _run_live(build, executor)


def _live_clean(executor: str) -> CheckReport:
    """Control case: a correct pipeline must produce zero violations."""
    def build(b_in: VersionedBuffer) -> list[Stage]:
        b0 = VersionedBuffer("b0")
        out = VersionedBuffer("out")
        return [
            PreciseStage("double", b0, (b_in,),
                         lambda v: np.asarray(v, np.float64) * 2.0,
                         cost=2.0),
            PreciseStage("shift", out, (b0,),
                         lambda v: np.asarray(v, np.float64) + 1.0,
                         cost=1.0),
        ]
    report = _run_live(build, executor, metric=True, tolerance_db=0.0)
    # invert the verdict contract: this case "catches" its invariant
    # when there is nothing to catch — see the clean-run entry below
    return report


# -- the table ------------------------------------------------------------

SELF_TEST_CASES: tuple[SelfTestCase, ...] = (
    # tampered streams: one per invariant class
    SelfTestCase(
        "tamper-version-skip", "version-order", "tamper",
        "write version 3 follows version 1 (a version was lost)",
        _tamper([_w(0.0, 1), _w(1.0, 3)])),
    SelfTestCase(
        "tamper-version-regress", "version-order", "tamper",
        "write version 1 repeats after itself (reordered publication)",
        _tamper([_w(0.0, 1), _w(1.0, 1)])),
    SelfTestCase(
        "tamper-write-after-final", "write-after-final", "tamper",
        "a version newer than the final one appears",
        _tamper([_w(0.0, 1, final=True), _w(1.0, 2)])),
    SelfTestCase(
        "tamper-double-final", "write-after-final", "tamper",
        "two versions both claim finality",
        _tamper([_w(0.0, 1, final=True), _w(1.0, 2, final=True)])),
    SelfTestCase(
        "tamper-write-after-seal", "write-after-seal", "tamper",
        "a sealed (degraded) buffer grows a new version",
        _tamper([_w(0.0, 1),
                 _ev(1.0, "buffer.seal", "s", "b", version=1),
                 _w(2.0, 2)])),
    SelfTestCase(
        "tamper-seal-twice", "seal-once", "tamper",
        "the buffer lifecycle reports two seal transitions",
        _tamper([_w(0.0, 1),
                 _ev(1.0, "buffer.seal", "s", "b", version=1),
                 _ev(2.0, "buffer.seal", "s", "b", version=1)])),
    SelfTestCase(
        "tamper-foreign-writer", "foreign-writer", "tamper",
        "a write on s's buffer is attributed to another stage",
        _tamper([_w(0.0, 1, stage="intruder")], owners={"b": "s"})),
    SelfTestCase(
        "tamper-recv-unsent", "channel-causality", "tamper",
        "a consumer receives an update nobody emitted",
        _tamper([_ev(0.0, "channel.recv", "g", "c", queued=0)]),
        allowed=("channel-state",)),
    SelfTestCase(
        "tamper-queue-depth", "channel-state", "tamper",
        "an emit reports a queue depth that contradicts the balance",
        _tamper([_ev(0.0, "channel.emit", "f", "c", queued=5)])),
    SelfTestCase(
        "tamper-emit-after-close", "emit-after-close", "tamper",
        "an update is enqueued on a closed stream",
        _tamper([_ev(0.0, "channel.emit", "f", "c", queued=1),
                 _ev(1.0, "channel.close", "f", "c"),
                 _ev(2.0, "channel.emit", "f", "c", queued=2)]),
        allowed=("channel-state",)),
    SelfTestCase(
        "tamper-close-twice", "channel-close-once", "tamper",
        "the stream closes twice",
        _tamper([_ev(0.0, "channel.close", "f", "c"),
                 _ev(1.0, "channel.close", "f", "c")])),
    SelfTestCase(
        "tamper-unbalanced-unpin", "pin-balance", "tamper",
        "a shared-memory slot is unpinned more often than pinned",
        _tamper([_ev(0.0, "shm.pin", "w", "b", segment="seg", slot=3),
                 _ev(1.0, "shm.unpin", "w", "b", segment="seg", slot=3),
                 _ev(2.0, "shm.unpin", "w", "b", segment="seg",
                     slot=3)])),
    SelfTestCase(
        "tamper-accuracy-regression", "accuracy-regression", "tamper",
        "the accuracy stream falls below its running best",
        _tamper([_ev(0.0, "accuracy.sample", "s", "b", accuracy=10.0),
                 _ev(1.0, "accuracy.sample", "s", "b", accuracy=3.0)],
                tolerance_db=0.0)),
    SelfTestCase(
        "tamper-accuracy-nan", "accuracy-nan", "tamper",
        "the accuracy metric produced NaN",
        _tamper([_ev(0.0, "accuracy.sample", "s", "b",
                     accuracy=float("nan"))], tolerance_db=0.0)),
    SelfTestCase(
        "tamper-unbalanced-span", "span-balance", "tamper",
        "a stage start never finishes",
        _tamper([_ev(0.0, "stage.start", "s")])),
    SelfTestCase(
        "tamper-orphan-finish", "span-balance", "tamper",
        "a stage finish has no matching start",
        _tamper([_ev(0.0, "stage.finish", "s", status="completed")])),
    SelfTestCase(
        "tamper-value-mutated", "value-mutated", "tamper",
        "a published (list) value changes content after its write",
        _tamper_value_mutated),
    # live broken stages through real executors
    SelfTestCase(
        "live-accuracy-regression", "accuracy-regression", "live",
        "a stage whose second version is far worse than its first",
        _live_regression, executors=LIVE_EXECUTORS),
    SelfTestCase(
        "live-post-seal-mutation", "value-mutated", "live",
        "a stage mutates its published final value after sealing",
        _live_mutation, executors=("simulated", "threaded")),
    SelfTestCase(
        "live-foreign-write", "foreign-writer", "live",
        "a stage pokes a sibling's buffer out-of-band",
        _live_foreign_write, executors=("simulated", "threaded")),
)


def run_self_test(executors: tuple[str, ...] = LIVE_EXECUTORS,
                  progress: Callable[[str], None] | None = None,
                  ) -> SelfTestReport:
    """Run every self-test case; live cases on each requested executor.

    The report is ``ok`` only when every broken execution is caught
    under its expected invariant with no stray violations — plus a
    clean control pipeline per executor producing *zero* violations.
    """
    report = SelfTestReport()
    for case in SELF_TEST_CASES:
        targets = (case.executors if case.mode == "live"
                   else ("trace",))
        for executor in targets:
            if case.mode == "live" and executor not in executors:
                continue
            if progress:
                progress(f"  self-test: {case.name} [{executor}] ...")
            report.outcomes.append(case.evaluate(executor))
    # the control: a clean pipeline must not trip anything
    for executor in executors:
        if progress:
            progress(f"  self-test: clean-control [{executor}] ...")
        clean = _live_clean(executor)
        report.outcomes.append(SelfTestOutcome(
            case="clean-control", executor=executor,
            expected="(none)", found=sorted(
                {v.invariant for v in clean.violations}),
            caught=clean.ok, stray=[v.invariant
                                    for v in clean.violations],
            violations=[v.to_dict() for v in clean.violations]))
    return report
