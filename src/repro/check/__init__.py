"""Conformance checking for anytime automata (``repro.check``).

The model's value proposition rests on three runtime guarantees
(paper Section III):

1. **Monotone refinement** — every stage's output sequence is
   non-decreasing in accuracy (versions strictly ordered, accuracy
   non-regressing up to a declared tolerance).
2. **Interrupt validity** — an interrupt at any moment observes a
   valid, atomically published approximation (never a torn value,
   never a version that later regresses or mutates).
3. **Convergence** — uninterrupted execution reaches the bit-exact
   precise output.

We now have three executors (simulated, threaded, process) plus a
preemptive serving layer; this package machine-checks that they all
uphold those guarantees on the same automaton:

:mod:`repro.check.invariants`
    A composable :class:`Checker` that attaches to any executor
    through the existing trace-sink hook and validates the event
    stream: version ordering, seal-once semantics, no post-seal or
    post-final writes, single-writer attribution, channel emit/recv
    causality, shared-memory pin/unpin balance, and monotone accuracy
    with a per-buffer tolerance knob.
:mod:`repro.check.differential`
    A differential harness running one application on all three
    executors (and under :class:`~repro.serve.AnytimeServer`
    preempt/resume) and cross-checking final outputs bit-exactly,
    version counts, and trace shapes into a machine-readable report.
    Its restore mode (:func:`run_restore_differential`) interrupts a
    run on executor A, checkpoints it (:mod:`repro.ckpt`), restores on
    executor B, and requires the continuation to be indistinguishable
    from a never-interrupted run.
:mod:`repro.check.fleetdiff`
    A transport differential for the serving fleet: the same
    duplicate-heavy workload on AF_UNIX and TCP fleets must seal
    bit-identical finals, and a SIGKILLed TCP worker's runs must
    migrate in-band and still finish bit-exact with zero invariant
    violations (``repro check --fleet``).
:mod:`repro.check.fuzz`
    Property-based fuzzing of random automata (iterative / diffusive /
    synchronous mixes, every sampling permutation, fault-injection
    schedules, random interrupt points), shrinking failures to a
    replayable JSON seed file.
:mod:`repro.check.selftest`
    A table of deliberately broken executions — one per invariant —
    asserting the checker catches each (``repro check --self-test``).

CLI: ``python -m repro check`` (see ``repro check --help``).
"""

from .differential import (ACCURACY_TOLERANCE_DB, DEFAULT_APPS,
                           DEFAULT_EXECUTORS, DifferentialReport,
                           RestoreReport, RunObservation,
                           run_differential, run_restore_differential)
from .fleetdiff import FleetDifferentialReport, run_fleet_differential
from .invariants import (CheckFailure, Checker, CheckReport, Violation,
                         check_events)
from .selftest import (SELF_TEST_CASES, SelfTestCase, SelfTestOutcome,
                       SelfTestReport, run_self_test)

__all__ = [
    "Checker", "CheckReport", "CheckFailure", "Violation",
    "check_events",
    "run_differential", "DifferentialReport", "RunObservation",
    "run_restore_differential", "RestoreReport",
    "run_fleet_differential", "FleetDifferentialReport",
    "ACCURACY_TOLERANCE_DB", "DEFAULT_APPS", "DEFAULT_EXECUTORS",
    "run_self_test", "SELF_TEST_CASES", "SelfTestCase",
    "SelfTestOutcome", "SelfTestReport",
]
