"""Differential conformance: one automaton, every executor, one truth.

The convergence guarantee says an uninterrupted run reaches the
bit-exact precise output *regardless of the execution substrate*.  This
harness runs one application on the simulated, threaded and process
executors — each with a :class:`~repro.check.invariants.Checker`
attached — and cross-checks:

* **final outputs** bit-exactly against the graph's precise evaluation
  (and therefore against each other);
* **version counts** — every produced buffer publishes at least once,
  the terminal buffer publishes exactly one final version, and source
  stages (whose inputs are all external, hence final from the start)
  publish the same deterministic version ladder everywhere;
* **trace shapes** — the same stages appear, every span balances, every
  run ends with every stage ``completed``;
* **invariant reports** — zero checker violations per run.

A fourth leg replays the same application under
:class:`~repro.serve.AnytimeServer` preemption: two concurrent requests
share one slot with a tiny quantum, the harness polls their snapshots
mid-flight (each observed snapshot must refine monotonically — the
interrupt-validity guarantee), and both must still finish bit-exact.

Everything lands in a machine-readable :class:`DifferentialReport`
(``to_dict()`` / ``repro check --json``).
"""

from __future__ import annotations

import time as _time
from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np

from ..apps.registry import get_app
from ..core.tracing import InMemorySink
from .invariants import Checker, CheckReport

__all__ = ["RunObservation", "DifferentialReport", "run_differential",
           "RestoreReport", "run_restore_differential",
           "DEFAULT_EXECUTORS", "DEFAULT_APPS", "ACCURACY_TOLERANCE_DB"]

DEFAULT_EXECUTORS = ("simulated", "threaded", "process")

#: the acceptance trio: a diffusive map app, an iterative multi-stage
#: app, and a loop-perforated wavelet app
DEFAULT_APPS = ("2dconv", "kmeans", "dwt53")

#: per-app accuracy-regression tolerance (dB) for the monotone-accuracy
#: check; None exempts apps whose metric is non-monotone by design
#: (kmeans' assignment refinement can transiently lower SNR while
#: centroids move, dwt53's reconstruction metric jumps across
#: perforation levels)
ACCURACY_TOLERANCE_DB: dict[str, float | None] = {
    "2dconv": None,
    "kmeans": None,
    "dwt53": None,
}


@dataclass
class RunObservation:
    """What one executor did with one build of the automaton."""

    executor: str
    wall_s: float
    completed: bool
    stopped_early: bool
    final_matches_precise: bool
    version_counts: dict[str, int]
    final_counts: dict[str, int]
    stage_set: list[str]
    kind_counts: dict[str, int]
    check: CheckReport
    errors: list[str] = field(default_factory=list)

    def to_dict(self) -> dict[str, Any]:
        return {
            "executor": self.executor, "wall_s": self.wall_s,
            "completed": self.completed,
            "stopped_early": self.stopped_early,
            "final_matches_precise": self.final_matches_precise,
            "version_counts": dict(self.version_counts),
            "final_counts": dict(self.final_counts),
            "stage_set": list(self.stage_set),
            "kind_counts": dict(self.kind_counts),
            "check": self.check.to_dict(),
            "errors": list(self.errors),
        }


@dataclass
class DifferentialReport:
    """Cross-executor conformance verdict for one application."""

    app: str
    size: int
    seed: int
    ok: bool
    observations: list[RunObservation]
    mismatches: list[dict[str, Any]]
    serve: dict[str, Any] | None = None

    def to_dict(self) -> dict[str, Any]:
        return {
            "report": "differential-conformance",
            "app": self.app, "size": self.size, "seed": self.seed,
            "ok": self.ok,
            "observations": [o.to_dict() for o in self.observations],
            "mismatches": list(self.mismatches),
            "serve": self.serve,
        }

    def summary(self) -> str:
        verdict = "PASS" if self.ok else "FAIL"
        legs = ", ".join(o.executor for o in self.observations)
        serve = ("" if self.serve is None else
                 f" + serve({'ok' if self.serve.get('ok') else 'FAIL'})")
        return (f"{self.app}: {verdict} across [{legs}]{serve}; "
                f"{len(self.mismatches)} mismatch(es)")


def _values_equal(a: Any, b: Any) -> bool:
    """Bit-exact structural equality over arrays and containers."""
    if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
        return (np.asarray(a).shape == np.asarray(b).shape
                and np.array_equal(np.asarray(a), np.asarray(b)))
    if isinstance(a, (tuple, list)) and isinstance(b, (tuple, list)):
        return (len(a) == len(b)
                and all(_values_equal(x, y) for x, y in zip(a, b)))
    if isinstance(a, dict) and isinstance(b, dict):
        return (a.keys() == b.keys()
                and all(_values_equal(v, b[k]) for k, v in a.items()))
    return bool(a == b)


def _observe(spec: Any, image: np.ndarray, executor: str,
             reference: Any, timeout_s: float,
             tolerance_db: float | None,
             lease_k: int = 8) -> RunObservation:
    """Run one fresh build on one executor with a checker attached."""
    automaton = spec.build(image)
    precise = automaton.precise_output()
    mem = InMemorySink()
    checker = Checker.for_graph(
        automaton.graph, hash_values=(executor != "process"),
        strict_order=(executor == "simulated"), forward=mem,
        tolerances={automaton.terminal_buffer_name: tolerance_db})
    t0 = _time.perf_counter()
    kwargs: dict[str, Any] = dict(
        trace=checker, trace_metric=spec.metric,
        trace_reference=reference, lease_k=lease_k)
    if executor == "simulated":
        result = automaton.run_simulated(schedule=spec.schedule, **kwargs)
    elif executor == "threaded":
        result = automaton.run_threaded(timeout_s=timeout_s, **kwargs)
    elif executor == "process":
        result = automaton.run_processes(timeout_s=timeout_s, **kwargs)
    else:
        raise ValueError(f"unknown executor {executor!r}; expected one "
                         f"of {DEFAULT_EXECUTORS}")
    wall = _time.perf_counter() - t0
    checker.close()

    terminal = automaton.terminal_buffer_name
    final_rec = result.timeline.final_record(terminal)
    matches = (final_rec is not None
               and _values_equal(final_rec.value, precise))
    counts: dict[str, int] = {}
    finals: dict[str, int] = {}
    for r in result.timeline.records:
        counts[r.buffer] = counts.get(r.buffer, 0) + 1
        if r.final:
            finals[r.buffer] = finals.get(r.buffer, 0) + 1
    stage_set = sorted({e.stage for e in mem.events
                        if e.kind == "stage.start" and e.stage})
    return RunObservation(
        executor=executor, wall_s=wall, completed=result.completed,
        stopped_early=result.stopped_early,
        final_matches_precise=matches,
        version_counts=counts, final_counts=finals,
        stage_set=stage_set, kind_counts=mem.counts(),
        check=checker.report(),
        errors=[f"{name}: {exc!r}" for name, exc in result.errors])


def _serve_input(spec: Any, size: int, seed: int, quantum_s: float,
                 timeout_s: float) -> tuple[np.ndarray, int]:
    """Pick an input large enough that one request spans many quanta.

    Preemption only happens when a run outlives its quantum; the fast
    apps (dwt53 finishes a 24-point signal in ~1 ms) would otherwise
    complete in their first tenure and the preempt/resume leg would
    test nothing.  Probe solo wall time, doubling the input until a
    run costs at least a dozen quanta.
    """
    target_s = 12.0 * quantum_s
    for _ in range(8):
        image = spec.make_input(size, seed)
        probe = spec.build(image)
        t0 = _time.perf_counter()
        probe.run_threaded(timeout_s=timeout_s)
        if _time.perf_counter() - t0 >= target_s:
            break
        size *= 2
    return spec.make_input(size, seed), size


def _observe_serve(spec: Any, size: int, seed: int,
                   timeout_s: float, quantum_s: float = 0.005,
                   requests: int = 2) -> dict[str, Any]:
    """Replay the app under AnytimeServer preempt/resume.

    ``requests`` concurrent submissions share a single slot, so the
    scheduler must preempt and resume to be fair; every mid-flight
    snapshot poll must observe a monotonically refining, never-regressing
    approximation, and every request must still converge bit-exactly.
    """
    from ..serve import SLO, AnytimeServer

    problems: list[str] = []
    image, size = _serve_input(spec, size, seed, quantum_s, timeout_s)
    reference = (spec.reference(image)
                 if spec.reference_kind != "input" else image)
    precise = spec.build(image).precise_output()
    with AnytimeServer(slots=1, queue_limit=requests + 1,
                       quantum_s=quantum_s, tick_s=0.002) as server:
        sessions = [
            server.submit(lambda: spec.build(image),
                          SLO(deadline_s=timeout_s),
                          metric=lambda v: spec.metric(v, reference),
                          name=f"diff-{i}")
            for i in range(requests)]
        seen = {s.name: 0 for s in sessions}
        exhausted = {s.name: False for s in sessions}
        deadline = _time.monotonic() + timeout_s
        while (not all(s.done for s in sessions)
               and _time.monotonic() < deadline):
            for s in sessions:
                snap = s.snapshot()
                if snap.version < seen[s.name]:
                    problems.append(
                        f"{s.name}: snapshot regressed from version "
                        f"{seen[s.name]} to {snap.version}")
                if exhausted[s.name] and not snap.exhausted:
                    problems.append(
                        f"{s.name}: snapshot un-exhausted (was "
                        f"final/sealed, now neither)")
                seen[s.name] = max(seen[s.name], snap.version)
                exhausted[s.name] = exhausted[s.name] or snap.exhausted
            _time.sleep(0.002)
        drained = server.drain(timeout_s=timeout_s)
        stats = server.stats()
    if not drained:
        problems.append("server drain timed out")
    states: dict[str, str] = {}
    for s in sessions:
        r = s.result(timeout_s=0.0)
        states[s.name] = r.state.value
        if r.state.value != "completed":
            problems.append(f"{s.name}: ended {r.state.value}")
        elif not _values_equal(r.snapshot.value, precise):
            problems.append(f"{s.name}: completed output is not "
                            f"bit-exact against the precise reference")
    if stats.get("preemptions", 0) < 1:
        problems.append(
            f"no preemption occurred ({requests} requests on 1 slot "
            f"with quantum {quantum_s}s should contend)")
    return {
        "ok": not problems,
        "requests": requests,
        "size": size,
        "states": states,
        "preemptions": stats.get("preemptions", 0),
        "resumes": stats.get("resumes", 0),
        "problems": problems,
    }


def run_differential(app: str = "2dconv", size: int = 24, seed: int = 0,
                     executors: tuple[str, ...] = DEFAULT_EXECUTORS,
                     serve: bool = True, timeout_s: float = 120.0,
                     tolerance_db: float | None = "default",
                     progress: Callable[[str], None] | None = None,
                     lease_k: int = 8) -> DifferentialReport:
    """Run one app across executors and cross-check the guarantees.

    ``tolerance_db="default"`` looks the app up in
    :data:`ACCURACY_TOLERANCE_DB`; pass a float (or None to disable)
    to override.  ``lease_k`` is forwarded to every executor leg —
    the report must come out identical at any setting (the lease
    safety rule: batching may not change the published versions).
    """
    spec = get_app(app)
    image = spec.make_input(size, seed)
    reference = (spec.reference(image)
                 if spec.reference_kind != "input" else image)
    if tolerance_db == "default":
        tolerance_db = ACCURACY_TOLERANCE_DB.get(app)

    observations: list[RunObservation] = []
    mismatches: list[dict[str, Any]] = []

    def note(kind: str, detail: str, **extra: Any) -> None:
        mismatches.append({"kind": kind, "detail": detail, **extra})

    for executor in executors:
        if progress:
            progress(f"  {app}: {executor} executor ...")
        obs = _observe(spec, image, executor, reference, timeout_s,
                       tolerance_db, lease_k=lease_k)
        observations.append(obs)
        if not obs.completed:
            note("incomplete", f"{executor} run did not complete",
                 executor=executor, errors=obs.errors)
        if not obs.final_matches_precise:
            note("final-mismatch",
                 f"{executor} final output differs from the precise "
                 f"evaluation", executor=executor)
        for buffer, n in obs.final_counts.items():
            if n != 1:
                note("final-count",
                     f"{executor}: buffer {buffer!r} carries {n} final "
                     f"versions (expected exactly 1)", executor=executor)
        if not obs.check.ok:
            note("invariant-violations",
                 f"{executor}: {len(obs.check.violations)} checker "
                 f"violation(s)", executor=executor,
                 violations=[v.to_dict() for v in obs.check.violations])

    # cross-executor shape checks (need at least two legs)
    if len(observations) >= 2:
        base = observations[0]
        for obs in observations[1:]:
            if obs.stage_set != base.stage_set:
                note("trace-shape",
                     f"stage sets differ: {base.executor} saw "
                     f"{base.stage_set}, {obs.executor} saw "
                     f"{obs.stage_set}")
            missing = (set(base.version_counts)
                       - set(obs.version_counts))
            extra = set(obs.version_counts) - set(base.version_counts)
            if missing or extra:
                note("trace-shape",
                     f"buffer sets differ between {base.executor} and "
                     f"{obs.executor} (missing={sorted(missing)}, "
                     f"extra={sorted(extra)})")
        # source stages see final inputs from the start, so their
        # version ladder is structural — identical on every executor
        automaton = spec.build(image)
        source_buffers = [s.output.name
                          for s in automaton.graph.source_stages()]
        for buffer in source_buffers:
            counts = {o.executor: o.version_counts.get(buffer, 0)
                      for o in observations}
            if len(set(counts.values())) > 1:
                note("version-count",
                     f"source buffer {buffer!r} version counts "
                     f"diverge: {counts}", buffer=buffer)
    for obs in observations:
        for buffer, n in obs.version_counts.items():
            if n < 1:
                note("missing-versions",
                     f"{obs.executor}: buffer {buffer!r} never "
                     f"published", executor=obs.executor)

    serve_leg: dict[str, Any] | None = None
    if serve:
        if progress:
            progress(f"  {app}: AnytimeServer preempt/resume ...")
        serve_leg = _observe_serve(spec, size, seed, timeout_s)
        if not serve_leg["ok"]:
            note("serve", "; ".join(serve_leg["problems"]))

    ok = not mismatches
    return DifferentialReport(app=app, size=size, seed=seed, ok=ok,
                              observations=observations,
                              mismatches=mismatches, serve=serve_leg)


# ---------------------------------------------------------------------------
# Restore differential (repro.ckpt): interrupt on A, continue on B


@dataclass
class RestoreReport:
    """Cross-executor checkpoint/restore conformance for one app.

    Each leg interrupts a fresh run on executor A mid-flight, writes a
    checkpoint, restores it onto executor B, runs the continuation to
    completion under an invariant checker, and requires the logical run
    (prefix + continuation) to be indistinguishable from one that was
    never interrupted: bit-exact final output, exactly one final
    version, a gap-free version ladder, source-buffer version counts
    equal to the uninterrupted run's, and zero invariant violations.
    """

    app: str
    size: int
    seed: int
    ok: bool
    legs: list[dict[str, Any]]
    mismatches: list[dict[str, Any]]

    def to_dict(self) -> dict[str, Any]:
        return {
            "report": "restore-differential",
            "app": self.app, "size": self.size, "seed": self.seed,
            "ok": self.ok, "legs": list(self.legs),
            "mismatches": list(self.mismatches),
        }

    def summary(self) -> str:
        verdict = "PASS" if self.ok else "FAIL"
        pairs = ", ".join(f"{l['src']}>{l['dst']}" for l in self.legs)
        return (f"{self.app}: {verdict} across [{pairs}]; "
                f"{len(self.mismatches)} mismatch(es)")


def _interrupt_on(spec: Any, image: np.ndarray, executor: str,
                  path: str, timeout_s: float,
                  min_versions: int = 2) -> None:
    """Run a fresh build on ``executor``, checkpoint it mid-run.

    The simulated leg interrupts deterministically via a stop
    condition's ``checkpoint_at_stop``; the wall-clock legs launch,
    poll the terminal buffer for signs of progress, and checkpoint the
    live handle.  A fast run may complete before the checkpoint lands —
    that is a legal capture too (the restore then merely replays a
    finished run), so no retry is needed.
    """
    from ..core.controller import VersionCountStop

    automaton = spec.build(image)
    if executor == "simulated":
        automaton.run_simulated(schedule=spec.schedule,
                                stop=VersionCountStop(min_versions),
                                checkpoint_at_stop=path)
        return
    if executor == "threaded":
        handle = automaton.launch_threaded()
    elif executor == "process":
        handle = automaton.launch_processes()
    else:
        raise ValueError(f"unknown executor {executor!r}; expected one "
                         f"of {DEFAULT_EXECUTORS}")
    buffer = automaton.graph.buffers[automaton.terminal_buffer_name]
    deadline = _time.monotonic() + timeout_s
    while buffer.version < min_versions \
            and _time.monotonic() < deadline:
        _time.sleep(0.002)
    handle.checkpoint(path)
    handle.request_stop()
    handle.result()


def _observe_restore(spec: Any, image: np.ndarray, src: str, dst: str,
                     precise: Any, reference: Any,
                     ref_source_counts: dict[str, int], path: str,
                     timeout_s: float, tolerance_db: float | None,
                     lease_k: int = 8) -> dict[str, Any]:
    """One leg: checkpoint on ``src``, continue on ``dst``, verify."""
    from ..ckpt import read_header
    from ..core.automaton import AnytimeAutomaton

    problems: list[str] = []
    t0 = _time.perf_counter()
    _interrupt_on(spec, image, src, path, timeout_s)
    header = read_header(path)
    if header.get("executor") != src:
        problems.append(
            f"checkpoint header names executor "
            f"{header.get('executor')!r}, expected {src!r}")
    restored = AnytimeAutomaton.restore(
        path, builder=lambda: spec.build(image))
    terminal = restored.terminal_buffer_name
    checker = Checker.for_graph(
        restored.graph, hash_values=(dst != "process"),
        strict_order=(dst == "simulated"),
        tolerances={terminal: tolerance_db})
    checker.seed_resumed(restored.graph)
    kwargs: dict[str, Any] = dict(
        trace=checker, trace_metric=spec.metric,
        trace_reference=reference, lease_k=lease_k)
    if dst == "simulated":
        result = restored.run_simulated(schedule=spec.schedule,
                                        **kwargs)
    elif dst == "threaded":
        result = restored.run_threaded(timeout_s=timeout_s, **kwargs)
    elif dst == "process":
        result = restored.run_processes(timeout_s=timeout_s, **kwargs)
    else:
        raise ValueError(f"unknown executor {dst!r}; expected one "
                         f"of {DEFAULT_EXECUTORS}")
    checker.close()
    wall = _time.perf_counter() - t0

    if not result.completed:
        problems.append(
            f"continuation did not complete "
            f"(errors: {[f'{n}: {e!r}' for n, e in result.errors]})")
    final_rec = result.timeline.final_record(terminal)
    if final_rec is None:
        problems.append("continuation produced no final version")
    elif final_rec.value is not None \
            and not _values_equal(final_rec.value, precise):
        problems.append("final output is not bit-exact against the "
                        "precise evaluation")
    if not _values_equal(result.final_values.get(terminal), precise):
        problems.append("final buffer value is not bit-exact against "
                        "the precise evaluation")
    counts: dict[str, int] = {}
    finals: dict[str, int] = {}
    for r in result.timeline.records:
        counts[r.buffer] = counts.get(r.buffer, 0) + 1
        if r.final:
            finals[r.buffer] = finals.get(r.buffer, 0) + 1
    if finals.get(terminal, 0) != 1:
        problems.append(
            f"terminal buffer carries {finals.get(terminal, 0)} final "
            f"version(s) across prefix + continuation (expected 1)")
    # source ladders are structural — the logical (prefix +
    # continuation) ladder must match the uninterrupted run exactly
    for buffer, expected in ref_source_counts.items():
        got = counts.get(buffer, 0)
        if got != expected:
            problems.append(
                f"source buffer {buffer!r} published {got} versions "
                f"across prefix + continuation; uninterrupted run "
                f"published {expected}")
    versions = [r.version for r in result.timeline.for_buffer(terminal)]
    if versions != sorted(versions):
        problems.append(
            f"terminal ladder is not monotone across the checkpoint "
            f"seam: {versions}")
    if not checker.ok:
        problems.append(
            f"{len(checker.violations)} invariant violation(s): "
            + "; ".join(v.describe() for v in checker.violations[:5]))
    return {
        "src": src, "dst": dst, "ok": not problems,
        "wall_s": wall, "live_at_capture":
            sorted(header.get("summary", {}).get("live_stages", [])),
        "problems": problems,
    }


def run_restore_differential(app: str = "2dconv", size: int = 48,
                             seed: int = 0,
                             pairs: list[tuple[str, str]] | None = None,
                             workdir: str | None = None,
                             timeout_s: float = 120.0,
                             tolerance_db: float | None = "default",
                             progress: Callable[[str], None]
                             | None = None,
                             lease_k: int = 8) -> RestoreReport:
    """Checkpoint/restore conformance across executor pairs.

    ``pairs`` defaults to every ordered (src, dst) combination of the
    three executors — the six cross-executor migrations plus the three
    same-executor resumes.  Checkpoints are written under ``workdir``
    (a temp directory when None) and left in place on failure so CI can
    attach them as artifacts.
    """
    import os
    import tempfile

    spec = get_app(app)
    image = spec.make_input(size, seed)
    reference = (spec.reference(image)
                 if spec.reference_kind != "input" else image)
    precise = spec.build(image).precise_output()
    if tolerance_db == "default":
        tolerance_db = ACCURACY_TOLERANCE_DB.get(app)
    if pairs is None:
        pairs = [(a, b) for a in DEFAULT_EXECUTORS
                 for b in DEFAULT_EXECUTORS]
    # uninterrupted structural reference: source-buffer version counts
    # (identical on every executor, so one deterministic run suffices)
    baseline = spec.build(image)
    base_result = baseline.run_simulated(schedule=spec.schedule)
    source_buffers = {s.output.name
                      for s in baseline.graph.source_stages()}
    ref_source_counts: dict[str, int] = {b: 0 for b in source_buffers}
    for r in base_result.timeline.records:
        if r.buffer in source_buffers:
            ref_source_counts[r.buffer] += 1

    own_workdir = workdir is None
    if own_workdir:
        workdir = tempfile.mkdtemp(prefix=f"repro-ckpt-{app}-")
    else:
        os.makedirs(workdir, exist_ok=True)
    legs: list[dict[str, Any]] = []
    mismatches: list[dict[str, Any]] = []
    for src, dst in pairs:
        if progress:
            progress(f"  {app}: checkpoint on {src}, restore on "
                     f"{dst} ...")
        path = os.path.join(workdir, f"{app}-{src}-to-{dst}.rck")
        leg = _observe_restore(spec, image, src, dst, precise,
                               reference, ref_source_counts, path,
                               timeout_s, tolerance_db,
                               lease_k=lease_k)
        legs.append(leg)
        if leg["ok"]:
            if own_workdir:
                try:
                    os.unlink(path)
                except OSError:
                    pass
        else:
            leg["checkpoint"] = path
            mismatches.append({
                "kind": "restore", "src": src, "dst": dst,
                "detail": "; ".join(leg["problems"]),
                "checkpoint": path,
            })
    if own_workdir and not mismatches:
        try:
            os.rmdir(workdir)
        except OSError:
            pass
    return RestoreReport(app=app, size=size, seed=seed,
                         ok=not mismatches, legs=legs,
                         mismatches=mismatches)
