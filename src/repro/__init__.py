"""The Anytime Automaton — reproduction of San Miguel & Enright Jerger,
"The Anytime Automaton", ISCA 2016.

A computation model that executes an approximate application as a
parallel pipeline of anytime computation stages: approximate versions of
the whole application output appear early and improve monotonically until
the precise output is reached, and execution can be interrupted at any
moment with a valid result.

Quick tour::

    from repro import build_conv2d_automaton, scene_image

    image = scene_image(256)
    automaton = build_conv2d_automaton(image)
    result = automaton.run_simulated(total_cores=32)
    profile = automaton.profile(result)       # runtime vs SNR curve
    print(profile.format_table(max_rows=10))

Packages:

- :mod:`repro.core` — the model: stages, buffers, pipelines, executors.
- :mod:`repro.anytime` — the transformation toolkit: permutations,
  operators, fills, perforation, reduced precision.
- :mod:`repro.hw` — simulated hardware substrates: approximate SRAM and
  DRAM, fixed point, cache + prefetcher, energy.
- :mod:`repro.apps` — the evaluation applications (2dconv, histeq,
  dwt53, debayer, kmeans, and the Figure 10 organization demo).
- :mod:`repro.data` — deterministic synthetic inputs.
- :mod:`repro.metrics` — SNR and runtime-accuracy profiles.
- :mod:`repro.bench` — the experiment harness regenerating every figure.
"""

from .anytime import (LfsrPermutation, SequentialPermutation,
                      StrideSchedule, TreePermutation)
from .apps import (build_conv2d_automaton, build_debayer_automaton,
                   build_dwt53_automaton, build_histeq_automaton,
                   build_kmeans_automaton)
from .apps.pipeline_demo import ORGANIZATIONS, build_organization
from .core import (AccuracyTarget, AnytimeAutomaton, ChromeTraceSink,
                   DeadlineStop, EnergyBudget, FailureBudget,
                   FaultInjector, FaultPolicy, InMemorySink, JsonlSink,
                   ManualStop, NullSink, SimulatedExecutor, StageReport,
                   ThreadedExecutor, TraceEvent, VersionedBuffer)
from .data import bayer_mosaic, clustered_image, scene_image
from .metrics import RuntimeAccuracyProfile, snr_db

__version__ = "1.0.0"

__all__ = [
    "LfsrPermutation", "SequentialPermutation", "StrideSchedule",
    "TreePermutation",
    "build_conv2d_automaton", "build_debayer_automaton",
    "build_dwt53_automaton", "build_histeq_automaton",
    "build_kmeans_automaton",
    "ORGANIZATIONS", "build_organization",
    "AccuracyTarget", "AnytimeAutomaton", "ChromeTraceSink",
    "DeadlineStop", "EnergyBudget", "FailureBudget", "FaultInjector",
    "FaultPolicy", "InMemorySink", "JsonlSink", "ManualStop", "NullSink",
    "SimulatedExecutor", "StageReport", "ThreadedExecutor", "TraceEvent",
    "VersionedBuffer",
    "bayer_mosaic", "clustered_image", "scene_image",
    "RuntimeAccuracyProfile", "snr_db",
    "__version__",
]
