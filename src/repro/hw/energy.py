"""Relative energy accounting.

The automaton's promise is that stopping early saves *time and energy*
("hold-the-power-button computing").  Absolute joules depend on hardware we
do not have; what the model needs is a consistent relative account so that

- an energy-budget stop condition can be enforced,
- reduced-precision and low-voltage-storage variants show their savings,
- benchmarks can report energy-to-acceptable-output next to runtime.

Costs are expressed in abstract energy units per operation; the defaults
follow the usual relative ordering (DRAM access >> cache access >> MAC)
and scale MAC energy linearly with operand bit width (bit-serial
arithmetic) and storage energy with the drowsy-SRAM voltage level.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["EnergyTable", "EnergyMeter"]


@dataclass(frozen=True)
class EnergyTable:
    """Per-operation energy costs in abstract units."""

    mac_per_bit: float = 0.125       # an 8-bit MAC costs 1.0
    alu_op: float = 0.5
    sram_access: float = 1.0         # nominal voltage
    dram_access: float = 20.0
    overhead_per_element: float = 0.1

    def mac(self, bits: int) -> float:
        """Energy of one multiply-accumulate at ``bits`` operand width."""
        if bits < 1:
            raise ValueError(f"bits must be >= 1, got {bits}")
        return self.mac_per_bit * bits


@dataclass
class EnergyMeter:
    """Accumulates energy charges; used by executors and stages.

    The meter is additive and supports snapshots, so an executor can
    record cumulative energy at each output version and a stop condition
    can cap the total.
    """

    table: EnergyTable = field(default_factory=EnergyTable)
    total: float = 0.0

    def charge(self, amount: float) -> float:
        """Add a raw energy amount (units)."""
        if amount < 0:
            raise ValueError("cannot charge negative energy")
        self.total += amount
        return self.total

    def charge_macs(self, count: float, bits: int = 8) -> float:
        """Charge ``count`` MACs at ``bits`` operand width."""
        return self.charge(count * self.table.mac(bits))

    def charge_alu(self, count: float) -> float:
        return self.charge(count * self.table.alu_op)

    def charge_sram(self, accesses: float,
                    energy_per_access: float = 1.0) -> float:
        """Charge SRAM accesses scaled by a voltage level's relative
        energy (see :class:`repro.hw.sram.VoltageLevel`)."""
        return self.charge(accesses * self.table.sram_access
                           * energy_per_access)

    def charge_dram(self, accesses: float) -> float:
        return self.charge(accesses * self.table.dram_access)

    def reset(self) -> None:
        self.total = 0.0
