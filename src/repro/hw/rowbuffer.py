"""DRAM row-buffer locality model (paper Section IV-C3).

"In conventional architectures, the anytime automaton can suffer from
poor cache **and row buffer** locality when sampling with the
non-sequential tree and pseudo-random permutations."

An open-page DRAM bank keeps the most recently activated row latched in
its row buffer; an access to the same row is a cheap *row hit*, while a
different row forces precharge + activate (a *row conflict*).  This model
replays an address trace over a multi-bank open-page DRAM and reports the
row-hit rate — the second half of the paper's locality claim, next to the
cache simulator in :mod:`repro.hw.cache`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["DramGeometry", "RowBufferStats", "RowBufferModel"]


@dataclass(frozen=True)
class DramGeometry:
    """Address mapping of the modelled DRAM."""

    row_bytes: int = 2 * 1024      # row (page) size per bank
    banks: int = 8

    def __post_init__(self) -> None:
        if self.row_bytes <= 0 or self.banks <= 0:
            raise ValueError("geometry must be positive")

    def locate(self, address: int) -> tuple[int, int]:
        """(bank, row) of a byte address — row-interleaved banks."""
        row_global = address // self.row_bytes
        return row_global % self.banks, row_global // self.banks


@dataclass
class RowBufferStats:
    accesses: int = 0
    row_hits: int = 0

    @property
    def hit_rate(self) -> float:
        return self.row_hits / self.accesses if self.accesses else 0.0


class RowBufferModel:
    """Open-page policy: each bank latches its last-activated row."""

    def __init__(self, geometry: DramGeometry | None = None) -> None:
        self.geometry = geometry or DramGeometry()
        self._open_row = np.full(self.geometry.banks, -1,
                                 dtype=np.int64)
        self.stats = RowBufferStats()

    def access(self, address: int) -> bool:
        """Access a byte address; True on a row-buffer hit."""
        bank, row = self.geometry.locate(int(address))
        self.stats.accesses += 1
        if self._open_row[bank] == row:
            self.stats.row_hits += 1
            return True
        self._open_row[bank] = row
        return False

    def run_trace(self, addresses: np.ndarray) -> RowBufferStats:
        """Replay a whole trace (vectorized: per-bank hit detection).

        Equivalent to calling :meth:`access` per address, but computed
        with NumPy: an access hits iff the previous access *to the same
        bank* touched the same row.
        """
        addresses = np.asarray(addresses, dtype=np.int64).reshape(-1)
        if addresses.size == 0:
            return self.stats
        rows_global = addresses // self.geometry.row_bytes
        banks = rows_global % self.geometry.banks
        rows = rows_global // self.geometry.banks
        hits = 0
        for b in range(self.geometry.banks):
            sel = banks == b
            series = rows[sel]
            if series.size == 0:
                continue
            same = series[1:] == series[:-1]
            hits += int(same.sum())
            # the first access to the bank hits only if the row was
            # already open from a previous trace
            if self._open_row[b] == series[0]:
                hits += 1
            self._open_row[b] = series[-1]
        self.stats.accesses += addresses.size
        self.stats.row_hits += hits
        return self.stats
