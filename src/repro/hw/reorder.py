"""Near-data in-memory reordering (paper Section IV-C3, last remedy).

"Thanks to recent advancements in near-data processing [1], input and
output data sets can be reordered in-memory, since the sampling
permutations are typically static throughout the runtime of the
application."

If the data is physically laid out in permutation order, the anytime
stage's accesses become sequential: the locality penalty disappears
entirely, at the price of one streaming reorder pass through memory
(which a 3D-stacked DRAM reorganization engine performs at near-bandwidth
rates).  :class:`ReorderEngine` models that cost; diffusive stages accept
``reorder=True`` to charge it once per pass and drop their access penalty
to 1.0.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["ReorderEngine", "reorder_layout"]


@dataclass(frozen=True)
class ReorderEngine:
    """Cost model of a near-memory data-reorganization engine.

    ``cost_per_element`` is the work-unit cost of streaming one element
    through the engine (read + permuted write).  The default 0.5 makes a
    reorder pass cheap relative to any compute kernel that does several
    operations per element — consistent with the near-bandwidth rates
    reported for in-memory reorganization.
    """

    cost_per_element: float = 0.5

    def __post_init__(self) -> None:
        if self.cost_per_element <= 0:
            raise ValueError(
                f"cost_per_element must be positive: "
                f"{self.cost_per_element}")

    def reorder_cost(self, n_elements: int) -> float:
        """Work units to lay out ``n_elements`` in permutation order."""
        if n_elements < 0:
            raise ValueError(f"n_elements cannot be negative: "
                             f"{n_elements}")
        return n_elements * self.cost_per_element

    def breakeven_penalty(self, n_elements: int,
                          compute_per_element: float) -> float:
        """The access penalty above which reordering pays off for a
        single pass: reorder + sequential beats penalized access when
        ``penalty > 1 + reorder_cost / compute_work``."""
        if compute_per_element <= 0:
            raise ValueError("compute_per_element must be positive")
        return 1.0 + self.cost_per_element / compute_per_element


def reorder_layout(data: np.ndarray, order: np.ndarray) -> np.ndarray:
    """The physically reordered copy the engine would produce.

    ``result[i] = data.flat[order[i]]`` over the leading axis — after
    this, walking the result sequentially visits elements in sampling
    order.  (Functionally the library always gathers with fancy
    indexing; this helper exists for tests and for code that wants the
    actual layout.)
    """
    data = np.asarray(data)
    flat = data.reshape((-1,) + data.shape[1:]) if data.ndim > 1 \
        else data
    order = np.asarray(order, dtype=np.int64)
    n = flat.shape[0] if data.ndim > 1 else data.size
    if sorted(order.tolist()) != list(range(n)):
        raise ValueError("order must be a permutation of the leading "
                         "axis")
    if data.ndim > 1:
        return flat[order]
    return data.reshape(-1)[order]
