"""Permutation-aware prefetcher (paper Section IV-C3).

"Both permutations are deterministic.  As a result, simple hardware
prefetchers can be implemented to alleviate the high miss rates due to poor
locality.  The overhead and complexity of such prefetchers is minimal: an
address computation unit coupled with the deterministic tree or
pseudo-random (e.g., LFSR) counters."

:class:`PermutationPrefetcher` models exactly that: it owns a copy of the
sampling permutation, tracks the stage's position in the sequence, and on
every demand access issues prefetches for the next ``depth`` elements of
the sequence.  The locality ablation benchmark compares miss rates with
and without it for sequential, tree and LFSR permutations.
"""

from __future__ import annotations

import numpy as np

from .cache import Cache, CacheStats

__all__ = ["PermutationPrefetcher", "run_prefetched_trace"]


class PermutationPrefetcher:
    """Prefetches future elements of a known deterministic permutation.

    Parameters
    ----------
    cache:
        The cache to install prefetched lines into.
    addresses:
        The full byte-address sequence the computation will access, in
        access order (i.e. the permutation already applied).
    depth:
        Prefetch lookahead in elements.
    """

    def __init__(self, cache: Cache, addresses: np.ndarray,
                 depth: int = 8) -> None:
        if depth < 1:
            raise ValueError(f"depth must be >= 1, got {depth}")
        self.cache = cache
        self.addresses = np.asarray(addresses, dtype=np.int64)
        self.depth = depth
        self._pos = 0

    def access_next(self) -> bool:
        """Perform the next demand access, then prefetch ahead."""
        if self._pos >= len(self.addresses):
            raise IndexError("trace exhausted")
        hit = self.cache.access(int(self.addresses[self._pos]))
        self._pos += 1
        stop = min(self._pos + self.depth, len(self.addresses))
        for i in range(self._pos, stop):
            self.cache.prefetch(int(self.addresses[i]))
        return hit

    def run(self) -> CacheStats:
        """Run the remaining trace to completion."""
        while self._pos < len(self.addresses):
            self.access_next()
        return self.cache.stats


def run_prefetched_trace(addresses: np.ndarray, cache: Cache | None = None,
                         depth: int = 8) -> CacheStats:
    """Convenience: run a whole trace through a prefetching cache."""
    cache = cache or Cache()
    return PermutationPrefetcher(cache, addresses, depth=depth).run()
