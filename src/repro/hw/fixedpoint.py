"""Fixed-point arithmetic substrate.

The paper's reduced-precision experiments (Figures 6, 10, 19) operate on
fixed-point/integer data.  This module provides an explicit fixed-point
format — quantization, dequantization, saturation and bit slicing — so the
reduced-precision anytime stages can state exactly which bits they have
computed with, and tests can assert bit-exactness.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["FixedPointFormat", "Q8", "UQ8"]


@dataclass(frozen=True)
class FixedPointFormat:
    """A fixed-point number format.

    Parameters
    ----------
    total_bits:
        Width of the representation in bits (including the sign bit when
        ``signed``).
    frac_bits:
        Number of fractional bits; the represented value of raw integer
        ``q`` is ``q / 2**frac_bits``.
    signed:
        Whether the format is two's-complement signed.
    """

    total_bits: int
    frac_bits: int
    signed: bool = True

    def __post_init__(self) -> None:
        if not 1 <= self.total_bits <= 62:
            raise ValueError(f"total_bits out of range: {self.total_bits}")
        if not 0 <= self.frac_bits <= self.total_bits:
            raise ValueError(
                f"frac_bits must be in [0, total_bits], got "
                f"{self.frac_bits}")

    @property
    def scale(self) -> float:
        """Value of one least-significant bit."""
        return 2.0 ** -self.frac_bits

    @property
    def min_raw(self) -> int:
        return -(1 << (self.total_bits - 1)) if self.signed else 0

    @property
    def max_raw(self) -> int:
        bits = self.total_bits - 1 if self.signed else self.total_bits
        return (1 << bits) - 1

    @property
    def min_value(self) -> float:
        return self.min_raw * self.scale

    @property
    def max_value(self) -> float:
        return self.max_raw * self.scale

    def quantize(self, values: np.ndarray) -> np.ndarray:
        """Real values -> raw integers, rounding to nearest, saturating."""
        raw = np.round(np.asarray(values, dtype=np.float64)
                       / self.scale).astype(np.int64)
        return np.clip(raw, self.min_raw, self.max_raw)

    def dequantize(self, raw: np.ndarray) -> np.ndarray:
        """Raw integers -> real values."""
        return np.asarray(raw, dtype=np.float64) * self.scale

    def roundtrip(self, values: np.ndarray) -> np.ndarray:
        """Quantize then dequantize (the representable approximation)."""
        return self.dequantize(self.quantize(values))

    def saturate(self, raw: np.ndarray) -> np.ndarray:
        """Clamp raw integers into the representable range."""
        return np.clip(np.asarray(raw, dtype=np.int64),
                       self.min_raw, self.max_raw)

    def truncate(self, raw: np.ndarray, keep_bits: int) -> np.ndarray:
        """Keep only the top ``keep_bits`` magnitude bits of raw values.

        This is the reduced-precision view: the value a computation sees
        when only the most significant ``keep_bits`` have been processed.
        Signs are preserved; magnitude bits below the kept window are
        zeroed.
        """
        if not 0 <= keep_bits <= self.total_bits:
            raise ValueError(
                f"keep_bits must be in [0, {self.total_bits}]")
        raw = np.asarray(raw, dtype=np.int64)
        magnitude_bits = (self.total_bits - 1 if self.signed
                          else self.total_bits)
        drop = max(magnitude_bits - keep_bits, 0)
        mask = ~((1 << drop) - 1)
        return np.where(raw < 0, -((-raw) & mask), raw & mask)

    def quantization_snr_db(self, values: np.ndarray) -> float:
        """SNR (dB) of representing ``values`` in this format."""
        values = np.asarray(values, dtype=np.float64)
        approx = self.roundtrip(values)
        noise = float(((values - approx) ** 2).sum())
        signal = float((values ** 2).sum())
        if noise == 0.0:
            return float("inf")
        return 10.0 * np.log10(signal / noise)


#: signed Q0.8-style byte format (8 bits, all fractional)
Q8 = FixedPointFormat(total_bits=8, frac_bits=7, signed=True)

#: unsigned 8-bit integer pixels (the apps' default pixel format)
UQ8 = FixedPointFormat(total_bits=8, frac_bits=0, signed=False)
