"""Low-refresh DRAM retention model (Flikker-style approximate storage).

The paper lists low-refresh DRAM [13] alongside drowsy SRAM as an
approximate storage substrate for iterative anytime stages.  Cells that are
refreshed less often than their retention time lose their charge and decay
to a fixed value; the probability a cell has decayed grows with the time
since its last refresh.

We model a DRAM row population with exponentially distributed retention
times: after ``t`` seconds without refresh, each bit has independently
decayed with probability ``1 - exp(-t / tau)`` scaled by the fraction of
weak cells.  This is sufficient for the retention-sweep extension
benchmark and for failure-injection tests of iterative stages.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["RetentionModel", "LowRefreshDram"]


@dataclass(frozen=True)
class RetentionModel:
    """Per-bit decay statistics of a DRAM array.

    Attributes
    ----------
    weak_fraction:
        Fraction of cells that are retention-weak (can decay within the
        refresh intervals we explore); typical populations are dominated
        by strong cells, so this is small.
    tau_seconds:
        Mean retention time of a weak cell.
    decay_to_one:
        Whether a decayed cell reads as 1 (true-cell) or 0 (anti-cell).
    """

    weak_fraction: float = 1e-4
    tau_seconds: float = 2.0
    decay_to_one: bool = False

    def decay_probability(self, elapsed_seconds: float) -> float:
        """Probability that a given bit has decayed after ``elapsed``."""
        if elapsed_seconds < 0:
            raise ValueError("elapsed time cannot be negative")
        weak_decay = 1.0 - float(np.exp(-elapsed_seconds
                                        / self.tau_seconds))
        return self.weak_fraction * weak_decay


class LowRefreshDram:
    """A DRAM array whose refresh interval can be relaxed.

    The refresh energy saved is proportional to the interval extension;
    :attr:`refresh_energy_saved` reports the fraction saved relative to
    the nominal (64 ms) interval.
    """

    NOMINAL_REFRESH_S = 0.064

    def __init__(self, bits_per_word: int = 8,
                 model: RetentionModel | None = None,
                 refresh_interval_s: float = NOMINAL_REFRESH_S,
                 seed: int = 0) -> None:
        if refresh_interval_s < self.NOMINAL_REFRESH_S:
            raise ValueError("refresh interval below nominal")
        self.bits_per_word = bits_per_word
        self.model = model or RetentionModel()
        self.refresh_interval_s = refresh_interval_s
        self._rng = np.random.default_rng(seed)
        self._data: np.ndarray | None = None
        self._since_refresh = 0.0

    @property
    def refresh_energy_saved(self) -> float:
        """Refresh-energy fraction saved vs. the nominal interval."""
        return 1.0 - self.NOMINAL_REFRESH_S / self.refresh_interval_s

    def write(self, values: np.ndarray) -> None:
        """Store an integer array (freshly charged cells)."""
        values = np.asarray(values)
        if not np.issubdtype(values.dtype, np.integer):
            raise TypeError(
                f"LowRefreshDram stores integers, got {values.dtype}")
        self._data = values.copy()
        self._since_refresh = 0.0

    def refresh(self) -> None:
        """Refresh all rows (decayed cells stay decayed — refresh only
        re-charges whatever value is currently stored)."""
        self._since_refresh = 0.0

    def elapse(self, seconds: float) -> None:
        """Advance time, decaying cells whose refresh is overdue.

        Time beyond the configured refresh interval accumulates decay;
        each elapsed interval applies one round of decay and an implicit
        refresh of the (possibly corrupted) contents.
        """
        if self._data is None:
            raise RuntimeError("elapse on unwritten DRAM")
        if seconds < 0:
            raise ValueError("seconds cannot be negative")
        self._since_refresh += seconds
        while self._since_refresh >= self.refresh_interval_s:
            self._apply_decay(self.refresh_interval_s)
            self._since_refresh -= self.refresh_interval_s

    def _apply_decay(self, interval: float) -> None:
        assert self._data is not None
        p = self.model.decay_probability(interval)
        if p <= 0:
            return
        flat = self._data.reshape(-1)
        total_bits = flat.size * self.bits_per_word
        n_decays = self._rng.binomial(total_bits, p)
        if n_decays == 0:
            return
        positions = self._rng.choice(total_bits, size=n_decays,
                                     replace=False)
        elements = positions // self.bits_per_word
        bit_index = (positions % self.bits_per_word).astype(flat.dtype)
        bit = flat.dtype.type(1) << bit_index
        if self.model.decay_to_one:
            np.bitwise_or.at(flat, elements, bit)
        else:
            np.bitwise_and.at(flat, elements, np.bitwise_not(bit))

    def read(self) -> np.ndarray:
        """Read current contents (non-destructive in this model)."""
        if self._data is None:
            raise RuntimeError("read from unwritten DRAM")
        return self._data.copy()
