"""Set-associative cache simulator (paper Section IV-C3 substrate).

The paper observes that tree and pseudo-random sampling permutations have
poor cache and row-buffer locality compared to sequential access, which is
why the anytime automata do not reach the precise output as early as the
baseline — and that deterministic permutations admit simple prefetchers
that recover most of the loss.

This simulator quantifies that claim: feed it the address trace induced by
a sampling permutation and read back miss rates.  It models a single-level,
set-associative, write-allocate cache with true-LRU replacement, which is
all the locality study needs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["CacheConfig", "CacheStats", "Cache", "trace_for_permutation"]


@dataclass(frozen=True)
class CacheConfig:
    """Geometry of the simulated cache."""

    size_bytes: int = 32 * 1024
    line_bytes: int = 64
    ways: int = 8

    def __post_init__(self) -> None:
        if self.line_bytes <= 0 or self.size_bytes <= 0 or self.ways <= 0:
            raise ValueError("cache geometry must be positive")
        if self.size_bytes % (self.line_bytes * self.ways):
            raise ValueError(
                "size must be a multiple of line_bytes * ways")

    @property
    def num_sets(self) -> int:
        return self.size_bytes // (self.line_bytes * self.ways)


@dataclass
class CacheStats:
    """Access counters."""

    accesses: int = 0
    misses: int = 0
    prefetch_hits: int = 0

    @property
    def hits(self) -> int:
        return self.accesses - self.misses

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0


class Cache:
    """A set-associative LRU cache fed with byte addresses."""

    def __init__(self, config: CacheConfig | None = None) -> None:
        self.config = config or CacheConfig()
        self.stats = CacheStats()
        sets = self.config.num_sets
        ways = self.config.ways
        # tags[s, w] = line tag or -1; lru[s, w] = age (0 = most recent)
        self._tags = np.full((sets, ways), -1, dtype=np.int64)
        self._lru = np.tile(np.arange(ways, dtype=np.int64), (sets, 1))
        self._prefetched = np.zeros((sets, ways), dtype=bool)

    def _locate(self, address: int) -> tuple[int, int]:
        line = address // self.config.line_bytes
        return int(line % self.config.num_sets), int(line)

    def _touch(self, set_idx: int, way: int) -> None:
        age = self._lru[set_idx, way]
        self._lru[set_idx][self._lru[set_idx] < age] += 1
        self._lru[set_idx, way] = 0

    def _fill(self, set_idx: int, tag: int, prefetch: bool) -> None:
        ways = self._tags[set_idx]
        empties = np.flatnonzero(ways == -1)
        way = int(empties[0]) if empties.size else int(
            np.argmax(self._lru[set_idx]))
        self._tags[set_idx, way] = tag
        self._prefetched[set_idx, way] = prefetch
        self._touch(set_idx, way)

    def access(self, address: int) -> bool:
        """Access one byte address; returns True on hit."""
        self.stats.accesses += 1
        set_idx, tag = self._locate(address)
        ways = np.flatnonzero(self._tags[set_idx] == tag)
        if ways.size:
            way = int(ways[0])
            if self._prefetched[set_idx, way]:
                self.stats.prefetch_hits += 1
                self._prefetched[set_idx, way] = False
            self._touch(set_idx, way)
            return True
        self.stats.misses += 1
        self._fill(set_idx, tag, prefetch=False)
        return False

    def prefetch(self, address: int) -> None:
        """Install a line without counting an access (prefetcher fill)."""
        set_idx, tag = self._locate(address)
        if (self._tags[set_idx] == tag).any():
            return
        self._fill(set_idx, tag, prefetch=True)

    def run_trace(self, addresses: np.ndarray) -> CacheStats:
        """Access a whole address trace; returns the stats object."""
        for a in np.asarray(addresses).reshape(-1):
            self.access(int(a))
        return self.stats


def trace_for_permutation(order: np.ndarray, element_bytes: int = 4,
                          base: int = 0) -> np.ndarray:
    """Byte-address trace of visiting array elements in ``order``."""
    if element_bytes <= 0:
        raise ValueError("element_bytes must be positive")
    return base + np.asarray(order, dtype=np.int64) * element_bytes
