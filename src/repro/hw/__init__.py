"""Simulated hardware substrates.

The paper's evaluation leans on hardware we do not have (low-voltage SRAM,
reduced-precision datapaths, a 32-thread POWER7+ box).  These modules are
the synthetic equivalents: fixed-point arithmetic, fault-injecting
approximate storage (SRAM and DRAM), a cache simulator with a
permutation-aware prefetcher, and relative energy accounting.  See
DESIGN.md for the substitution rationale.
"""

from .cache import Cache, CacheConfig, CacheStats, trace_for_permutation
from .dram import LowRefreshDram, RetentionModel
from .energy import EnergyMeter, EnergyTable
from .fixedpoint import Q8, UQ8, FixedPointFormat
from .prefetch import PermutationPrefetcher, run_prefetched_trace
from .reorder import ReorderEngine, reorder_layout
from .rowbuffer import DramGeometry, RowBufferModel, RowBufferStats
from .sram import (DEFAULT_VOLTAGE_LADDER, DrowsySram, VoltageLevel,
                   flip_bits)

__all__ = [
    "Cache", "CacheConfig", "CacheStats", "trace_for_permutation",
    "LowRefreshDram", "RetentionModel",
    "EnergyMeter", "EnergyTable",
    "Q8", "UQ8", "FixedPointFormat",
    "PermutationPrefetcher", "run_prefetched_trace",
    "ReorderEngine", "reorder_layout",
    "DramGeometry", "RowBufferModel", "RowBufferStats",
    "DEFAULT_VOLTAGE_LADDER", "DrowsySram", "VoltageLevel", "flip_bits",
]
