"""Drowsy-SRAM approximate storage model (paper Figures 19-20 substrate).

The paper evaluates iterative anytime approximation via approximate storage
— low-voltage SRAM whose cells suffer *read upsets* with some probability
per bit per read.  This module models such a storage device:

- a :class:`VoltageLevel` maps a supply-voltage setting to a per-bit read
  upset probability and a relative energy-per-access (the paper cites up to
  ~90% supply power savings at a 0.001% upset rate, via EnerJ [19]);
- :class:`DrowsySram` stores integer arrays and injects deterministic,
  seeded bit flips on every read;
- upsets are **data-destructive** (paper III-B1): a flipped bit stays
  flipped in the array until :meth:`DrowsySram.flush` rewrites precise
  values, which is why the iterative construction must flush (or use a
  separate device) between intermediate computations.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["VoltageLevel", "DEFAULT_VOLTAGE_LADDER", "DrowsySram",
           "flip_bits"]


@dataclass(frozen=True)
class VoltageLevel:
    """One operating point of the drowsy SRAM.

    Attributes
    ----------
    name:
        Human-readable label (e.g. ``"0.001%"``).
    read_upset_prob:
        Probability that any single bit flips on a read.
    energy_per_access:
        Energy of one access relative to nominal voltage (1.0).
    """

    name: str
    read_upset_prob: float
    energy_per_access: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.read_upset_prob <= 1.0:
            raise ValueError(
                f"read_upset_prob must be a probability, got "
                f"{self.read_upset_prob}")
        if self.energy_per_access <= 0:
            raise ValueError("energy_per_access must be positive")


#: Paper Figure 20 operating points: nominal, 0.00001% and 0.001% read
#: upset probability; the 0.001% point is "estimated to yield up to 90%
#: supply power savings".
DEFAULT_VOLTAGE_LADDER: tuple[VoltageLevel, ...] = (
    VoltageLevel("0.001%", 1e-5, 0.10),
    VoltageLevel("0.00001%", 1e-7, 0.35),
    VoltageLevel("nominal", 0.0, 1.00),
)


def flip_bits(values: np.ndarray, prob: float, bits: int,
              rng: np.random.Generator) -> np.ndarray:
    """Return ``values`` with each of the low ``bits`` bits independently
    flipped with probability ``prob``.

    Vectorized exact Bernoulli-per-bit injection; dtype is preserved.
    """
    if prob < 0 or prob > 1:
        raise ValueError(f"prob must be a probability, got {prob}")
    values = np.asarray(values)
    if not np.issubdtype(values.dtype, np.integer):
        raise TypeError(f"bit flips need integer data, got {values.dtype}")
    if prob == 0.0 or values.size == 0:
        return values.copy()
    out = values.copy()
    flat = out.reshape(-1)
    # Expected flips are tiny at the paper's probabilities; draw the number
    # of flips binomially, then place them uniformly over (element, bit).
    total_bits = flat.size * bits
    n_flips = rng.binomial(total_bits, prob)
    if n_flips == 0:
        return out
    positions = rng.choice(total_bits, size=n_flips, replace=False)
    elements = positions // bits
    bit_index = (positions % bits).astype(flat.dtype)
    np.bitwise_xor.at(flat, elements,
                      flat.dtype.type(1) << bit_index)
    return out


class DrowsySram:
    """An approximate SRAM storing one integer array.

    Parameters
    ----------
    bits_per_word:
        How many low-order bits of each stored element are physically held
        in (and can be corrupted by) the array — 8 for pixel data.
    level:
        Initial :class:`VoltageLevel`.
    seed:
        RNG seed; the same seed reproduces the same upsets, which keeps
        the Figure 20 experiment deterministic.
    """

    def __init__(self, bits_per_word: int = 8,
                 level: VoltageLevel = DEFAULT_VOLTAGE_LADDER[-1],
                 seed: int = 0) -> None:
        if not 1 <= bits_per_word <= 62:
            raise ValueError(
                f"bits_per_word out of range: {bits_per_word}")
        self.bits_per_word = bits_per_word
        self.level = level
        self._rng = np.random.default_rng(seed)
        self._data: np.ndarray | None = None
        self.reads = 0
        self.writes = 0
        self.energy = 0.0
        self.bit_flips = 0

    def set_level(self, level: VoltageLevel) -> None:
        """Change the operating voltage (takes effect on future reads)."""
        self.level = level

    def write(self, values: np.ndarray) -> None:
        """Store an integer array at full fidelity."""
        values = np.asarray(values)
        if not np.issubdtype(values.dtype, np.integer):
            raise TypeError(
                f"DrowsySram stores integers, got {values.dtype}")
        if values.size and (int(values.max()) >= (1 << self.bits_per_word)
                            or int(values.min()) < 0):
            raise ValueError(
                f"values do not fit in {self.bits_per_word} unsigned bits")
        self._data = values.copy()
        self.writes += values.size
        self.energy += values.size * self.level.energy_per_access

    def flush(self, precise: np.ndarray) -> None:
        """Reinitialize the array to precise values.

        Required between the intermediate computations of an iterative
        stage: upsets are destructive, so without a flush the corruption
        accumulated at a low-voltage level would degrade the higher-
        accuracy levels that follow (paper III-B1).
        """
        self.write(precise)

    def read(self) -> np.ndarray:
        """Read the whole array, injecting read upsets.

        The injected flips are written back into the stored data
        (destructive read), modelling a cell whose content was lost.
        """
        if self._data is None:
            raise RuntimeError("read from unwritten SRAM")
        corrupted = flip_bits(self._data, self.level.read_upset_prob,
                              self.bits_per_word, self._rng)
        diff = np.bitwise_xor(corrupted, self._data)
        self.bit_flips += int(
            np.bitwise_count(diff.astype(np.uint64)).sum())
        self._data = corrupted
        self.reads += corrupted.size
        self.energy += corrupted.size * self.level.energy_per_access
        return corrupted.copy()

    @property
    def stored(self) -> np.ndarray:
        """Current (possibly corrupted) contents, without an access."""
        if self._data is None:
            raise RuntimeError("SRAM has no contents")
        return self._data.copy()
