"""On-disk checkpoint format (repro.ckpt).

A checkpoint file is self-describing and digest-stamped::

    MAGIC (8 bytes) | u32 header length | JSON header | pickled payload

The JSON header is cheap to read without unpickling anything: it names
the automaton, the app spec that can rebuild its graph, the executor the
run was captured on, and a SHA-256 digest of the payload bytes.  The
payload carries numpy arrays and stage cursors, so it is pickled; the
digest check runs *before* unpickling, turning a truncated or corrupted
file into a structured :class:`CheckpointError` instead of an arbitrary
unpickling crash.

Writes are atomic: the file is assembled under a temporary name in the
same directory and renamed into place, so a reader never observes a
half-written checkpoint (the serving layer checkpoints on shed while
the fleet router may concurrently look for migration sources).
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import struct
from typing import Any

__all__ = ["CheckpointError", "FORMAT_VERSION", "MAGIC",
           "write_checkpoint", "read_header", "load_checkpoint"]

#: file magic: "repro checkpoint", format generation 1
MAGIC = b"RPROCKP1"

#: bumped on any incompatible payload/header layout change
FORMAT_VERSION = 1

_LEN = struct.Struct("<I")


class CheckpointError(RuntimeError):
    """A checkpoint file is missing, corrupted, truncated, or from an
    incompatible format generation — or does not match the graph it is
    being restored onto."""


def write_checkpoint(path: str, payload: dict[str, Any],
                     header_extra: dict[str, Any] | None = None) -> str:
    """Serialize ``payload`` to ``path`` atomically; returns the digest.

    ``header_extra`` lands in the JSON header (app spec, summary, …) and
    must be JSON-serializable; the payload itself may hold arbitrary
    picklable values (numpy arrays, stage cursors).
    """
    blob = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
    digest = hashlib.sha256(blob).hexdigest()
    header = {"format_version": FORMAT_VERSION,
              "payload_sha256": digest,
              "payload_len": len(blob)}
    if header_extra:
        header.update(header_extra)
    head = json.dumps(header, sort_keys=True).encode("utf-8")
    tmp = f"{path}.tmp.{os.getpid()}"
    with open(tmp, "wb") as fh:
        fh.write(MAGIC)
        fh.write(_LEN.pack(len(head)))
        fh.write(head)
        fh.write(blob)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)
    return digest


def _read_exact(fh, n: int, what: str) -> bytes:
    data = fh.read(n)
    if len(data) != n:
        raise CheckpointError(
            f"checkpoint truncated while reading {what} "
            f"(wanted {n} bytes, got {len(data)})")
    return data


def read_header(path: str) -> dict[str, Any]:
    """Read and validate only the JSON header (no unpickling)."""
    try:
        fh = open(path, "rb")
    except OSError as exc:
        raise CheckpointError(f"cannot open checkpoint: {exc}") from exc
    with fh:
        magic = _read_exact(fh, len(MAGIC), "magic")
        if magic != MAGIC:
            raise CheckpointError(
                f"not a repro checkpoint (bad magic {magic!r})")
        (head_len,) = _LEN.unpack(
            _read_exact(fh, _LEN.size, "header length"))
        head = _read_exact(fh, head_len, "header")
    try:
        header = json.loads(head.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise CheckpointError(
            f"checkpoint header is not valid JSON: {exc}") from exc
    if not isinstance(header, dict):
        raise CheckpointError("checkpoint header is not a JSON object")
    version = header.get("format_version")
    if version != FORMAT_VERSION:
        raise CheckpointError(
            f"unsupported checkpoint format_version {version!r} "
            f"(this build reads {FORMAT_VERSION})")
    return header


def load_checkpoint(path: str) -> tuple[dict[str, Any], dict[str, Any]]:
    """Load ``(header, payload)``, verifying the payload digest first."""
    header = read_header(path)
    with open(path, "rb") as fh:
        fh.seek(len(MAGIC))
        (head_len,) = _LEN.unpack(
            _read_exact(fh, _LEN.size, "header length"))
        fh.seek(len(MAGIC) + _LEN.size + head_len)
        blob = fh.read()
    expected_len = header.get("payload_len")
    if expected_len is not None and len(blob) != expected_len:
        raise CheckpointError(
            f"checkpoint payload truncated: header promises "
            f"{expected_len} bytes, file holds {len(blob)}")
    digest = hashlib.sha256(blob).hexdigest()
    if digest != header.get("payload_sha256"):
        raise CheckpointError(
            f"checkpoint payload digest mismatch (expected "
            f"{header.get('payload_sha256')}, got {digest})")
    try:
        payload = pickle.loads(blob)
    except Exception as exc:
        raise CheckpointError(
            f"checkpoint payload failed to unpickle: {exc!r}") from exc
    if not isinstance(payload, dict):
        raise CheckpointError("checkpoint payload is not a dict")
    return header, payload
