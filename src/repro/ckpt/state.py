"""Capture and re-application of run state (repro.ckpt).

The executors own quiescing — stopping the world at an inter-command
boundary — and then hand this module the *authoritative* state: buffer
snapshots, channel queues, per-stage cursors (``Stage.capture_state``),
stage reports, cumulative energy and stop-condition progress.  This
module assembles those pieces into the checkpoint payload and, on the
restore side, re-applies them to a freshly rebuilt graph of the same
shape.

What a checkpoint deliberately does **not** carry:

* Executor identity — a checkpoint captured on the process executor
  restores onto the simulated, threaded, or process backend (the
  command protocol is the portability boundary).
* Fault-injector counters — an injector is a test harness bound to one
  run; the resumed run takes a fresh one (or none).
* In-flight ``Compute`` work — a stage interrupted mid-command re-runs
  that command, so up to one compute per stage may be double-charged
  for energy.  Values and versions are unaffected (commands are pure
  and writes idempotent under the cursor protocol).
"""

from __future__ import annotations

import time
from dataclasses import asdict, dataclass, field
from typing import Any

from ..core.controller import (AccuracyTarget, AnyOf, FailureBudget,
                               StopCondition, VersionCountStop)
from ..core.faults import StageReport
from ..core.graph import AutomatonGraph
from ..core.recording import Timeline, WriteRecord
from .format import CheckpointError, write_checkpoint

__all__ = ["ResumeInfo", "assemble_payload", "apply_to_graph",
           "capture_stop", "restore_stop", "save_checkpoint",
           "STATUS_LIVE", "STATUS_COMPLETED", "STATUS_DEGRADED",
           "STATUS_FAILED"]

#: stage status values in a checkpoint: a *live* stage carries a cursor
#: and resumes; the terminal ones are recorded so the resumed run skips
#: relaunching the stage and reports it faithfully.
STATUS_LIVE = "live"
STATUS_COMPLETED = "completed"
STATUS_DEGRADED = "degraded"
STATUS_FAILED = "failed"

_TERMINAL = (STATUS_COMPLETED, STATUS_DEGRADED, STATUS_FAILED)


# ---------------------------------------------------------------------------
# Stop-condition progress


def capture_stop(stop: StopCondition | None) -> dict[str, Any] | None:
    """Progress counters of a stop condition, type-dispatched.

    Stateless conditions (deadline, energy budget, manual) need nothing:
    energy carries over via the checkpoint's energy field and deadlines
    are per-segment wall budgets.  Stateful ones record their counters
    so e.g. a ``VersionCountStop(12)`` interrupted after 7 versions
    fires after 5 more on the resumed run, not 12.
    """
    if stop is None:
        return None
    if isinstance(stop, AnyOf):
        return {"kind": "any_of",
                "parts": [capture_stop(c) for c in stop.conditions]}
    if isinstance(stop, VersionCountStop):
        return {"kind": "version_count", "seen": stop._seen}
    if isinstance(stop, AccuracyTarget):
        return {"kind": "accuracy", "last_score": stop.last_score}
    if isinstance(stop, FailureBudget):
        return {"kind": "failure_budget", "seen": stop.failures}
    return {"kind": "stateless"}


def restore_stop(stop: StopCondition | None,
                 data: dict[str, Any] | None) -> None:
    """Re-apply captured progress onto a freshly built stop condition.

    Tolerant of shape mismatch — the resuming caller may supply a
    different (or no) stop condition; only matching kinds are seeded.
    """
    if stop is None or data is None:
        return
    kind = data.get("kind")
    if isinstance(stop, AnyOf) and kind == "any_of":
        for cond, part in zip(stop.conditions, data.get("parts") or ()):
            restore_stop(cond, part)
    elif isinstance(stop, VersionCountStop) and kind == "version_count":
        stop._seen = int(data.get("seen", 0))
    elif isinstance(stop, AccuracyTarget) and kind == "accuracy":
        stop.last_score = data.get("last_score")
    elif isinstance(stop, FailureBudget) and kind == "failure_budget":
        with stop._lock:
            stop._seen = int(data.get("seen", 0))


# ---------------------------------------------------------------------------
# Payload assembly (executor -> checkpoint)


def assemble_payload(graph: AutomatonGraph, *, name: str, executor: str,
                     stages: dict[str, dict[str, Any]],
                     reports: dict[str, StageReport],
                     energy: float,
                     timeline: Timeline,
                     duration: float,
                     stop: StopCondition | None = None,
                     buffer_values: dict[str, Any] | None = None,
                     channel_requeue: dict[str, list[Any]] | None = None,
                     ) -> dict[str, Any]:
    """Build the checkpoint payload from executor-authoritative state.

    ``stages`` maps stage name to ``{"status": ..., "cursor": ...}``
    (cursor None for terminal stages).  ``buffer_values`` overrides the
    captured value per buffer — the process executor passes decoded
    payloads here because its parent-side buffers hold shared-memory
    descriptors, not arrays.  ``channel_requeue`` prepends updates that
    were dequeued from a channel but never delivered to the consumer
    (a threaded-gate park can strand one in the executor's send slot):
    they are put back at the head of the *checkpointed* queue, with the
    received cursor rolled back to match, so no element of a
    synchronous stream is lost.
    """
    buffers: dict[str, Any] = {}
    for bname, buffer in graph.buffers.items():
        snap = buffer.snapshot()
        if snap.version == 0:
            continue
        value = snap.value
        if buffer_values and bname in buffer_values:
            value = buffer_values[bname]
        buffers[bname] = (value, snap.version, snap.final, snap.sealed)
    channels: dict[str, Any] = {}
    for cname, channel in graph.channels.items():
        with channel._cond:
            queue = list(channel._queue)
            emitted = channel.emitted
            received = channel.received
            closed = channel._closed
            aborted = channel._aborted
        for update in reversed((channel_requeue or {}).get(cname, ())):
            queue.insert(0, update)
            received -= 1
        channels[cname] = (queue, emitted, received, closed, aborted)
    known = {s.name for s in graph.stages}
    missing = known - set(stages)
    if missing:
        raise CheckpointError(
            f"capture is missing stage cursors for {sorted(missing)}")
    prefix = [(r.time, r.buffer, r.version, r.final, r.energy)
              for r in timeline.records]
    return {
        "name": name,
        "executor": executor,
        "buffers": buffers,
        "channels": channels,
        "stages": {n: dict(st) for n, st in stages.items()},
        "reports": {n: asdict(r) for n, r in reports.items()},
        "energy": float(energy),
        "duration": float(duration),
        "stop": capture_stop(stop),
        "prefix": prefix,
    }


def save_checkpoint(path: str, payload: dict[str, Any],
                    app_spec: dict[str, Any] | None = None) -> str:
    """Write a payload with a summary header; returns the digest."""
    live = [n for n, st in payload["stages"].items()
            if st.get("status") == STATUS_LIVE]
    header = {
        "name": payload.get("name"),
        "executor": payload.get("executor"),
        "app_spec": app_spec,
        "wall_time": time.time(),
        "summary": {
            "energy": payload.get("energy"),
            "duration": payload.get("duration"),
            "live_stages": sorted(live),
            "buffer_versions": {
                n: v for n, (_, v, _f, _s)
                in payload["buffers"].items()},
        },
    }
    return write_checkpoint(path, payload, header)


# ---------------------------------------------------------------------------
# Restore (checkpoint -> fresh graph)


@dataclass
class ResumeInfo:
    """What an executor needs beyond the graph state to continue a run.

    ``finished`` maps stage name to its terminal status — those stages
    are not relaunched (their buffers are already final or sealed).
    ``prefix`` is the interrupted run's timeline; executors prepend it
    so the resumed result's ladder spans the whole logical run.
    """

    finished: dict[str, str] = field(default_factory=dict)
    energy: float = 0.0
    duration: float = 0.0
    reports: dict[str, StageReport] = field(default_factory=dict)
    stop: dict[str, Any] | None = None
    prefix: Timeline = field(default_factory=Timeline)
    executor: str = ""

    def seed_reports(self, names: list[str]) -> dict[str, StageReport]:
        """Reports for a resumed run: checkpointed counters where
        available, fresh ones elsewhere."""
        out = {}
        for n in names:
            prior = self.reports.get(n)
            out[n] = (StageReport(**{**asdict(prior)})
                      if prior is not None else StageReport(stage=n))
        return out


def apply_to_graph(graph: AutomatonGraph,
                   payload: dict[str, Any]) -> ResumeInfo:
    """Re-apply a checkpoint payload onto a freshly built graph.

    The graph must have the same shape (stage, buffer, channel names)
    as the captured one; mismatches raise :class:`CheckpointError`.
    Buffers get their version ladders' tips, channels their queued
    updates and cursors, live stages their resume cursors.
    """
    buffers = payload.get("buffers") or {}
    channels = payload.get("channels") or {}
    stages = payload.get("stages") or {}
    by_name = {s.name: s for s in graph.stages}
    unknown = set(stages) - set(by_name)
    if unknown:
        raise CheckpointError(
            f"checkpoint names stages absent from the graph: "
            f"{sorted(unknown)}")
    missing = set(by_name) - set(stages)
    if missing:
        raise CheckpointError(
            f"checkpoint lacks state for stages {sorted(missing)}")
    for bname, state in buffers.items():
        buffer = graph.buffers.get(bname)
        if buffer is None:
            raise CheckpointError(
                f"checkpoint names buffer {bname!r} absent from the "
                f"graph")
        value, version, final, sealed = state
        buffer.restore(value, version, final, sealed)
    for cname, state in channels.items():
        channel = graph.channels.get(cname)
        if channel is None:
            raise CheckpointError(
                f"checkpoint names channel {cname!r} absent from the "
                f"graph")
        queue, emitted, received, closed, aborted = state
        try:
            channel.restore(list(queue), emitted, received, closed,
                            aborted)
        except ValueError as exc:
            raise CheckpointError(str(exc)) from exc
    info = ResumeInfo(
        energy=float(payload.get("energy", 0.0)),
        duration=float(payload.get("duration", 0.0)),
        stop=payload.get("stop"),
        executor=str(payload.get("executor", "")))
    for sname, st in stages.items():
        status = st.get("status")
        if status in _TERMINAL:
            info.finished[sname] = status
        elif status == STATUS_LIVE:
            cursor = st.get("cursor")
            if cursor is not None:
                by_name[sname].restore_state(cursor)
        else:
            raise CheckpointError(
                f"stage {sname!r} has unknown checkpoint status "
                f"{status!r}")
    for sname, rep in (payload.get("reports") or {}).items():
        try:
            info.reports[sname] = StageReport(**rep)
        except TypeError as exc:
            raise CheckpointError(
                f"stage report for {sname!r} does not match this "
                f"build: {exc}") from exc
    for rec in payload.get("prefix") or ():
        t, bname, version, final, energy = rec
        info.prefix.add(WriteRecord(time=t, buffer=bname,
                                    version=version, final=final,
                                    energy=energy))
    return info
