"""repro.ckpt — checkpoint, restore, and cross-executor migration.

A live anytime run can be quiesced at an inter-command boundary,
serialized to a self-describing on-disk checkpoint, and restored on
*any* executor — simulated, threaded, or process — with bit-exact
continuation of its output ladder.  This is the anytime model's
interruptibility guarantee made durable: the output buffer always holds
a valid approximation, so a run can also always be *moved*.

Entry points:

* ``RunHandle.checkpoint(path)`` on a launched threaded or process run
  (see :mod:`repro.core.executor` / :mod:`repro.core.procexec`);
* ``checkpoint_at_stop=path`` on the simulated executor;
* ``AnytimeAutomaton.restore(path)`` to rebuild an automaton from a
  checkpoint and ``launch_*``/``run_*`` it on any backend;
* ``repro ckpt inspect`` / ``repro check --restore`` on the CLI.
"""

from .format import (CheckpointError, FORMAT_VERSION, MAGIC,
                     load_checkpoint, read_header, write_checkpoint)
from .state import (ResumeInfo, STATUS_COMPLETED, STATUS_DEGRADED,
                    STATUS_FAILED, STATUS_LIVE, apply_to_graph,
                    assemble_payload, capture_stop, restore_stop,
                    save_checkpoint)

__all__ = [
    "CheckpointError", "FORMAT_VERSION", "MAGIC",
    "load_checkpoint", "read_header", "write_checkpoint",
    "ResumeInfo", "assemble_payload", "apply_to_graph",
    "capture_stop", "restore_stop", "save_checkpoint",
    "STATUS_LIVE", "STATUS_COMPLETED", "STATUS_DEGRADED",
    "STATUS_FAILED",
]
