"""Online output-quality estimation without a reference.

The paper positions the automaton as the natural partner for dynamic
error control (Green, SAGE, Rumba): because whole-application outputs are
available early, an online controller can watch *them* rather than
per-segment accuracies.  But at runtime there is no precise reference to
compute SNR against.  Two practical estimators:

- :class:`ConvergenceEstimator` — measures the change between
  consecutive output versions; as a diffusive automaton approaches the
  precise output, inter-version deltas shrink, so a small delta is
  evidence of convergence.  (It is a heuristic: an iterative stage's
  versions can plateau before the precise pass.)
- :class:`SampleAgreementEstimator` — holds out a pinned set of sample
  positions and compares the current version against their precisely
  computed values; gives a true (if noisy) SNR estimate at the cost of
  computing the holdout up front.

Both integrate with the executor through
:class:`~repro.core.controller.StopCondition` adapters (see
:class:`ConvergenceStop`).
"""

from __future__ import annotations

from typing import Any, Callable

import numpy as np

from ..core.controller import StopCondition
from ..core.recording import WriteRecord
from .snr import snr_db

__all__ = ["ConvergenceEstimator", "SampleAgreementEstimator",
           "ConvergenceStop"]


class ConvergenceEstimator:
    """Tracks relative change between consecutive output versions.

    :meth:`update` feeds the next version and returns the relative delta
    ``rms(v_k - v_{k-1}) / rms(v_k)`` (``inf`` for the first version).
    :attr:`converged` becomes True once ``patience`` consecutive deltas
    fall below ``threshold``.
    """

    def __init__(self, threshold: float = 0.01,
                 patience: int = 2) -> None:
        if threshold <= 0:
            raise ValueError(f"threshold must be positive: {threshold}")
        if patience < 1:
            raise ValueError(f"patience must be >= 1: {patience}")
        self.threshold = threshold
        self.patience = patience
        self._previous: np.ndarray | None = None
        self._streak = 0
        self.deltas: list[float] = []

    def update(self, value: np.ndarray) -> float:
        value = np.asarray(value, dtype=np.float64)
        if self._previous is None:
            delta = float("inf")
        else:
            diff = float(np.sqrt(np.mean(
                (value - self._previous) ** 2)))
            scale = float(np.sqrt(np.mean(value ** 2)))
            delta = diff / scale if scale > 0 else (
                0.0 if diff == 0 else float("inf"))
        self._previous = value.copy()
        self.deltas.append(delta)
        if delta < self.threshold:
            self._streak += 1
        else:
            self._streak = 0
        return delta

    @property
    def converged(self) -> bool:
        return self._streak >= self.patience


class SampleAgreementEstimator:
    """Estimates output SNR from a precomputed holdout sample.

    Parameters
    ----------
    positions:
        Flat indices of the holdout elements.
    truth:
        Their precisely computed values (the up-front cost of this
        estimator; typically a tiny fraction of the output).
    """

    def __init__(self, positions: np.ndarray,
                 truth: np.ndarray) -> None:
        positions = np.asarray(positions, dtype=np.int64)
        truth = np.asarray(truth, dtype=np.float64)
        if len(positions) != len(truth):
            raise ValueError(
                f"positions ({len(positions)}) and truth "
                f"({len(truth)}) lengths differ")
        if len(positions) == 0:
            raise ValueError("holdout sample cannot be empty")
        self.positions = positions
        self.truth = truth

    @classmethod
    def from_element_fn(cls, element_fn: Callable[..., np.ndarray],
                        positions: np.ndarray,
                        *inputs: Any) -> "SampleAgreementEstimator":
        """Build the holdout by running a map stage's element function
        on the pinned positions."""
        truth = element_fn(np.asarray(positions, dtype=np.int64),
                           *inputs)
        return cls(positions, np.asarray(truth, dtype=np.float64))

    def estimate_snr_db(self, value: np.ndarray) -> float:
        """SNR of the current version, measured on the holdout only.

        The value's spatial axes are flattened; trailing per-element
        axes (e.g. RGB channels) must match the truth's trailing shape.
        """
        value = np.asarray(value, dtype=np.float64)
        if self.truth.ndim > 1:
            flat = value.reshape(-1, *self.truth.shape[1:])
        else:
            flat = value.reshape(-1)
        return snr_db(flat[self.positions], self.truth)


class ConvergenceStop(StopCondition):
    """Halt when consecutive output versions stop changing.

    ``extract`` maps a record's value to the array to compare (identity
    by default; pass e.g. ``lambda v: v["image"]`` for dict outputs).
    A ``min_versions`` guard prevents stopping on the very first
    plateau of an automaton that is still warming up.
    """

    def __init__(self, threshold: float = 0.01, patience: int = 2,
                 min_versions: int = 3,
                 extract: Callable[[Any], np.ndarray] | None = None,
                 ) -> None:
        if min_versions < 1:
            raise ValueError(
                f"min_versions must be >= 1: {min_versions}")
        self.estimator = ConvergenceEstimator(threshold=threshold,
                                              patience=patience)
        self.min_versions = min_versions
        self.extract = extract or (lambda v: v)
        self._seen = 0

    def should_stop(self, record: WriteRecord) -> bool:
        if record.value is None:
            raise ValueError(
                "ConvergenceStop needs a watched terminal buffer")
        self._seen += 1
        self.estimator.update(np.asarray(self.extract(record.value),
                                         dtype=np.float64))
        return (self._seen >= self.min_versions
                and self.estimator.converged)
