"""Offline-profile-guided budget planning.

The paper's anytime guarantee composes naturally with offline profiling
(Green [3] and friends): measure a runtime-accuracy profile on
calibration inputs once, then — for future inputs of the same class —
read the time budget a target quality needs straight off the profile.
Unlike pure offline approaches, a mispredicted budget is harmless here:
the output at the deadline is still a valid approximation, and "it is a
simple matter of letting it run longer".

:class:`DeadlinePlanner` implements that loop: calibrate on one or more
profiles, pick a budget for a target SNR with a safety margin, and
(optionally) fall back to letting the automaton run on when the target
was missed.
"""

from __future__ import annotations

from typing import Any, Callable

from .profiles import RuntimeAccuracyProfile

__all__ = ["DeadlinePlanner"]


class DeadlinePlanner:
    """Plan time budgets from calibration profiles.

    Parameters
    ----------
    margin:
        Multiplicative safety factor on the looked-up budget (1.2 = run
        20% longer than calibration suggests).
    """

    def __init__(self, margin: float = 1.2) -> None:
        if margin < 1.0:
            raise ValueError(
                f"margin must be >= 1 (a shorter budget than "
                f"calibration suggests makes no sense): {margin}")
        self.margin = margin
        self.profiles: list[RuntimeAccuracyProfile] = []

    def calibrate(self, profile: RuntimeAccuracyProfile) -> None:
        """Add one calibration profile (more inputs, better plans)."""
        if not profile.points:
            raise ValueError("cannot calibrate on an empty profile")
        self.profiles.append(profile)

    @property
    def calibrated(self) -> bool:
        return bool(self.profiles)

    def budget_for(self, target_db: float) -> float:
        """Normalized runtime budget expected to achieve ``target_db``.

        Uses the *worst* (largest) budget across calibration profiles,
        times the margin; falls back to the latest time-to-precise when
        some calibration input never showed the target (conservative).
        """
        if not self.calibrated:
            raise RuntimeError("planner has no calibration profiles")
        budgets = []
        for profile in self.profiles:
            t = profile.time_to_snr(target_db)
            if t is None:
                t = profile.points[-1].runtime
            budgets.append(t)
        return max(budgets) * self.margin

    def run(self, builder: Callable[[], Any], target_db: float,
            total_cores: float = 32.0,
            metric: Callable[[Any, Any], float] | None = None,
            reference: Any = None,
            executor: str = "simulated",
            baseline_wall_s: float | None = None,
            **run_kwargs: Any) -> tuple[Any, float]:
        """Build an automaton, run it to the planned budget, and return
        ``(result, planned_budget)``.

        The run uses a :class:`~repro.core.controller.DeadlineStop` at
        the planned budget — and because the automaton is interruptible,
        a caller that finds the output unacceptable can simply run a
        fresh automaton with a larger margin.

        ``executor`` selects the execution backend: ``"simulated"``
        (virtual time; the historical behavior and default),
        ``"threaded"`` or ``"process"`` (wall clock).  The planned
        budget is normalized runtime, so the wall-clock backends need
        ``baseline_wall_s`` — the measured solo precise wall time that
        corresponds to normalized runtime 1.0 on this machine — to
        place the deadline; ``total_cores`` only applies to the
        simulator.
        """
        from ..core.controller import DeadlineStop

        budget = self.budget_for(target_db)
        automaton = builder()
        if executor == "simulated":
            deadline = automaton.baseline_duration(total_cores) * budget
            result = automaton.run_simulated(
                total_cores=total_cores, stop=DeadlineStop(deadline),
                **run_kwargs)
        elif executor in ("threaded", "process"):
            if baseline_wall_s is None or baseline_wall_s <= 0:
                raise ValueError(
                    f"executor {executor!r} needs baseline_wall_s (the "
                    f"wall seconds of a solo precise run) to convert "
                    f"the normalized budget into a wall-clock deadline")
            deadline = baseline_wall_s * budget
            run_method = (automaton.run_threaded if executor == "threaded"
                          else automaton.run_processes)
            result = run_method(stop=DeadlineStop(deadline), **run_kwargs)
        else:
            raise ValueError(
                f"unknown executor {executor!r}; pick from "
                f"('simulated', 'threaded', 'process')")
        return result, budget
