"""Accuracy metrics, runtime-accuracy profiles, online estimators."""

from .confidence import SamplingConfidence, normal_quantile
from .estimators import (ConvergenceEstimator, ConvergenceStop,
                         SampleAgreementEstimator)
from .planning import DeadlinePlanner
from .profiles import ProfilePoint, RuntimeAccuracyProfile
from .snr import mse, nrmse, psnr_db, rmse, snr_db

__all__ = ["SamplingConfidence", "normal_quantile",
           "ConvergenceEstimator", "ConvergenceStop",
           "SampleAgreementEstimator", "DeadlinePlanner",
           "ProfilePoint", "RuntimeAccuracyProfile",
           "mse", "nrmse", "psnr_db", "rmse", "snr_db"]
