"""Accuracy metrics.

The paper measures accuracy as "signal-to-noise ratio (SNR) — a standard
metric in image processing — of the approximate output relative to the
baseline precise.  SNR is measured in decibels (dB) where ∞ dB is perfect
accuracy."
"""

from __future__ import annotations

import numpy as np

__all__ = ["mse", "rmse", "snr_db", "psnr_db", "nrmse"]


def _as_float_pair(approx: np.ndarray,
                   reference: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    approx = np.asarray(approx, dtype=np.float64)
    reference = np.asarray(reference, dtype=np.float64)
    if approx.shape != reference.shape:
        raise ValueError(
            f"shape mismatch: approx {approx.shape} vs reference "
            f"{reference.shape}")
    return approx, reference


def mse(approx: np.ndarray, reference: np.ndarray) -> float:
    """Mean squared error."""
    approx, reference = _as_float_pair(approx, reference)
    return float(np.mean((approx - reference) ** 2))


def rmse(approx: np.ndarray, reference: np.ndarray) -> float:
    """Root mean squared error."""
    return float(np.sqrt(mse(approx, reference)))


def nrmse(approx: np.ndarray, reference: np.ndarray) -> float:
    """RMSE normalized by the reference's value range."""
    approx, reference = _as_float_pair(approx, reference)
    span = float(reference.max() - reference.min())
    if span == 0.0:
        return 0.0 if np.array_equal(approx, reference) else float("inf")
    return rmse(approx, reference) / span

def snr_db(approx: np.ndarray, reference: np.ndarray) -> float:
    """Signal-to-noise ratio in decibels (∞ for an exact match).

    ``SNR = 10 log10( sum(reference²) / sum((reference - approx)²) )``.
    """
    approx, reference = _as_float_pair(approx, reference)
    noise = float(((reference - approx) ** 2).sum())
    if noise == 0.0:
        return float("inf")
    signal = float((reference ** 2).sum())
    if signal == 0.0:
        return float("-inf")
    return 10.0 * float(np.log10(signal / noise))


def psnr_db(approx: np.ndarray, reference: np.ndarray,
            peak: float | None = None) -> float:
    """Peak signal-to-noise ratio in decibels.

    ``peak`` defaults to the reference's max value (255 for 8-bit images
    when passed explicitly by callers).
    """
    approx, reference = _as_float_pair(approx, reference)
    err = mse(approx, reference)
    if err == 0.0:
        return float("inf")
    if peak is None:
        peak = float(np.abs(reference).max())
    if peak == 0.0:
        return float("-inf")
    return 10.0 * float(np.log10(peak * peak / err))
