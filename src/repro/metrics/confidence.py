"""Confidence intervals for input-sampled reductions.

A weighted anytime reduction publishes ``O'_i = O_i · n / i`` — an
unbiased estimate of the final total under a uniform (LFSR) sampling
permutation.  Because the samples are drawn without replacement from a
finite population, the estimator's variance is the classic
finite-population-corrected form

    Var[O'_i] = n² · (1 − i/n) · s² / i

with ``s²`` the sample variance of the per-element contributions.  This
module tracks the running moments chunk by chunk and reports the
estimate with a normal-approximation confidence interval — the
statistical footing for an online controller that stops a sampled
reduction once the total is known tightly enough, without ever seeing
the precise answer.
"""

from __future__ import annotations

import math

import numpy as np

__all__ = ["SamplingConfidence", "normal_quantile"]

# two-sided normal quantiles for the common confidence levels
_QUANTILES = {0.80: 1.2816, 0.90: 1.6449, 0.95: 1.9600, 0.99: 2.5758}


def normal_quantile(confidence: float) -> float:
    """Two-sided z-value for a confidence level in (0, 1)."""
    if not 0.0 < confidence < 1.0:
        raise ValueError(
            f"confidence must be in (0, 1), got {confidence}")
    if confidence in _QUANTILES:
        return _QUANTILES[confidence]
    from scipy import stats

    return float(stats.norm.ppf(0.5 + confidence / 2.0))


class SamplingConfidence:
    """Running estimate-with-interval for a sampled sum.

    Feed it the per-element contributions of each processed chunk (the
    ``x_{p(i)}`` values); query :meth:`estimate` for the scaled total
    and :meth:`halfwidth` for the CI half-width.  Assumes uniform
    sampling without replacement — exactly what a bijective pseudo-
    random permutation's prefix provides.
    """

    def __init__(self, population: int) -> None:
        if population < 1:
            raise ValueError(
                f"population must be >= 1, got {population}")
        self.population = population
        self._count = 0
        self._sum = 0.0
        self._sumsq = 0.0

    def update(self, contributions: np.ndarray) -> None:
        """Fold in one chunk of per-element contributions."""
        values = np.asarray(contributions, dtype=np.float64).reshape(-1)
        if self._count + values.size > self.population:
            raise ValueError(
                f"more samples than the population of "
                f"{self.population}")
        self._count += values.size
        self._sum += float(values.sum())
        self._sumsq += float((values ** 2).sum())

    @property
    def count(self) -> int:
        return self._count

    @property
    def complete(self) -> bool:
        return self._count >= self.population

    def estimate(self) -> float:
        """The scaled total ``O'_i = O_i · n / i`` (exact when done)."""
        if self._count == 0:
            raise ValueError("no samples yet")
        return self._sum * self.population / self._count

    def sample_variance(self) -> float:
        """Unbiased per-element sample variance ``s²``."""
        if self._count < 2:
            return math.inf
        mean = self._sum / self._count
        return max(0.0, (self._sumsq - self._count * mean * mean)
                   / (self._count - 1))

    def halfwidth(self, confidence: float = 0.95) -> float:
        """CI half-width of :meth:`estimate` (0 once the sample is the
        whole population — the anytime guarantee in statistical form)."""
        if self._count < 2:
            return math.inf
        n, i = self.population, self._count
        fpc = max(0.0, 1.0 - i / n)
        variance = n * n * fpc * self.sample_variance() / i
        return normal_quantile(confidence) * math.sqrt(variance)

    def relative_halfwidth(self, confidence: float = 0.95) -> float:
        """Half-width over |estimate| (inf when the estimate is 0)."""
        est = abs(self.estimate())
        if est == 0.0:
            return math.inf
        return self.halfwidth(confidence) / est

    def satisfied(self, relative_error: float,
                  confidence: float = 0.95) -> bool:
        """Is the total known to within ``relative_error``?"""
        if relative_error <= 0:
            raise ValueError(
                f"relative_error must be positive: {relative_error}")
        if self.complete:
            return True
        return self.relative_halfwidth(confidence) <= relative_error
