"""Runtime-accuracy profiles (the paper's Figures 11-15 data structure).

A :class:`RuntimeAccuracyProfile` is the series of (normalized runtime,
SNR dB) points traced by an anytime automaton's terminal output buffer.
The x-axis is virtual (or wall) time normalized to the baseline precise
execution; the y-axis is SNR of the output version produced at that time
relative to the precise output.

The profile offers the queries the evaluation needs: SNR available at a
given time budget, time needed to reach a target SNR, monotonicity audit
(the model's headline guarantee), and tabular export for the benchmark
reports.
"""

from __future__ import annotations

import json
import math
import pathlib
from dataclasses import dataclass, field

__all__ = ["ProfilePoint", "RuntimeAccuracyProfile"]


@dataclass(frozen=True)
class ProfilePoint:
    """One output version: when it appeared and how accurate it was."""

    runtime: float          # normalized to baseline precise runtime
    snr_db: float           # math.inf when bit-exact
    version: int = 0
    energy: float = 0.0

    def __post_init__(self) -> None:
        if self.runtime < 0:
            raise ValueError(f"runtime cannot be negative: {self.runtime}")


@dataclass
class RuntimeAccuracyProfile:
    """An ordered series of :class:`ProfilePoint`.

    Points must be appended in non-decreasing runtime order (output
    versions appear in time order by construction of the model).
    """

    label: str = ""
    points: list[ProfilePoint] = field(default_factory=list)

    def add(self, runtime: float, snr_db: float, version: int = 0,
            energy: float = 0.0) -> ProfilePoint:
        """Append a point; enforces time ordering."""
        if self.points and runtime < self.points[-1].runtime:
            raise ValueError(
                f"points must be time-ordered: {runtime} after "
                f"{self.points[-1].runtime}")
        point = ProfilePoint(runtime, snr_db, version, energy)
        self.points.append(point)
        return point

    def __len__(self) -> int:
        return len(self.points)

    def __iter__(self):
        return iter(self.points)

    @property
    def final_snr_db(self) -> float:
        """SNR of the last output version (∞ when precise was reached)."""
        if not self.points:
            raise ValueError("empty profile")
        return self.points[-1].snr_db

    @property
    def time_to_precise(self) -> float | None:
        """Normalized runtime at which SNR first hit ∞, if it did."""
        for p in self.points:
            if math.isinf(p.snr_db) and p.snr_db > 0:
                return p.runtime
        return None

    def snr_at(self, runtime: float) -> float:
        """Best SNR available if stopped at ``runtime``.

        This is the accuracy of the newest output version no later than
        ``runtime``; before the first version the output buffer holds the
        initial value, reported as -inf.
        """
        best = -math.inf
        for p in self.points:
            if p.runtime <= runtime:
                best = p.snr_db
            else:
                break
        return best

    def time_to_snr(self, target_db: float) -> float | None:
        """Earliest normalized runtime achieving at least ``target_db``.

        Returns None when the profile never reaches the target.  Because
        accuracy is monotone for well-formed automata, this is the
        "let it run longer" query a user or controller would pose.
        """
        for p in self.points:
            if p.snr_db >= target_db:
                return p.runtime
        return None

    def energy_to_snr(self, target_db: float) -> float | None:
        """Energy spent by the first version meeting ``target_db``."""
        for p in self.points:
            if p.snr_db >= target_db:
                return p.energy
        return None

    def is_monotonic(self, tolerance_db: float = 0.0) -> bool:
        """Check the anytime guarantee: SNR never drops (beyond tolerance).

        Tiny non-monotonicity at very small sample sizes is a measurement
        artifact the paper's plots also show; ``tolerance_db`` admits it.
        """
        best = -math.inf
        for p in self.points:
            if p.snr_db < best - tolerance_db:
                return False
            best = max(best, p.snr_db)
        return True

    def monotonicity_violations(self,
                                tolerance_db: float = 0.0,
                                ) -> list[tuple[ProfilePoint, float]]:
        """All points whose SNR drops below the running best."""
        best = -math.inf
        out = []
        for p in self.points:
            if p.snr_db < best - tolerance_db:
                out.append((p, best))
            best = max(best, p.snr_db)
        return out

    def to_rows(self) -> list[tuple[float, float]]:
        """Export as (runtime, snr_db) pairs — the figure's data series."""
        return [(p.runtime, p.snr_db) for p in self.points]

    def to_json(self) -> str:
        """Serialize to JSON (infinities encoded as strings)."""
        def encode(v: float):
            if math.isinf(v):
                return "inf" if v > 0 else "-inf"
            return v

        return json.dumps({
            "label": self.label,
            "points": [[p.runtime, encode(p.snr_db), p.version,
                        p.energy] for p in self.points],
        })

    @classmethod
    def from_json(cls, text: str) -> "RuntimeAccuracyProfile":
        """Inverse of :meth:`to_json`."""
        def decode(v):
            if v == "inf":
                return math.inf
            if v == "-inf":
                return -math.inf
            return float(v)

        data = json.loads(text)
        profile = cls(label=data["label"])
        for runtime, snr, version, energy in data["points"]:
            profile.add(float(runtime), decode(snr),
                        version=int(version), energy=float(energy))
        return profile

    def save(self, path) -> None:
        """Write the profile to a JSON file (e.g. planner calibration)."""
        pathlib.Path(path).write_text(self.to_json())

    @classmethod
    def load(cls, path) -> "RuntimeAccuracyProfile":
        """Read a profile written by :meth:`save`."""
        return cls.from_json(pathlib.Path(path).read_text())

    def format_table(self, max_rows: int = 0) -> str:
        """Human-readable table, optionally thinned to ``max_rows``."""
        pts = self.points
        if max_rows and len(pts) > max_rows:
            step = (len(pts) - 1) / (max_rows - 1)
            idx = sorted({round(i * step) for i in range(max_rows)})
            pts = [self.points[i] for i in idx]
        lines = [f"# {self.label}" if self.label else "# profile",
                 f"{'runtime':>10}  {'SNR (dB)':>10}"]
        for p in pts:
            snr = "inf" if math.isinf(p.snr_db) else f"{p.snr_db:.2f}"
            lines.append(f"{p.runtime:>10.3f}  {snr:>10}")
        return "\n".join(lines)
