"""Minimal PGM/PPM image IO (no external imaging dependency).

The paper's evaluation presents *visualizable* outputs (Figures 16-18
show the halted images next to the precise ones).  These helpers let the
examples and the figure benchmarks dump any output version as a portable
binary PGM (grayscale) or PPM (RGB) file viewable in any image tool.
"""

from __future__ import annotations

import pathlib

import numpy as np

__all__ = ["write_pnm", "read_pnm"]


def write_pnm(path: str | pathlib.Path, image: np.ndarray) -> None:
    """Write a uint8 image as binary PGM (2-D) or PPM (3-D, 3 channels).

    The file format is chosen from the array shape; the path's suffix is
    not consulted (use .pgm/.ppm by convention).
    """
    image = np.asarray(image)
    if image.dtype != np.uint8:
        raise TypeError(f"PNM writer needs uint8, got {image.dtype}")
    path = pathlib.Path(path)
    if image.ndim == 2:
        magic = b"P5"
        h, w = image.shape
    elif image.ndim == 3 and image.shape[2] == 3:
        magic = b"P6"
        h, w = image.shape[:2]
    else:
        raise ValueError(
            f"expected (H, W) or (H, W, 3) image, got {image.shape}")
    header = magic + f"\n{w} {h}\n255\n".encode("ascii")
    path.write_bytes(header + image.tobytes())


def read_pnm(path: str | pathlib.Path) -> np.ndarray:
    """Read a binary PGM (P5) or PPM (P6) file written by
    :func:`write_pnm` (maxval 255)."""
    data = pathlib.Path(path).read_bytes()
    fields: list[bytes] = []
    pos = 0
    while len(fields) < 4:
        # skip whitespace and comments between header tokens
        while pos < len(data) and data[pos:pos + 1].isspace():
            pos += 1
        if data[pos:pos + 1] == b"#":
            while pos < len(data) and data[pos] != 0x0A:
                pos += 1
            continue
        start = pos
        while pos < len(data) and not data[pos:pos + 1].isspace():
            pos += 1
        fields.append(data[start:pos])
    magic, w, h, maxval = (fields[0], int(fields[1]), int(fields[2]),
                           int(fields[3]))
    if magic not in (b"P5", b"P6"):
        raise ValueError(f"unsupported PNM magic {magic!r}")
    if maxval != 255:
        raise ValueError(f"only maxval 255 supported, got {maxval}")
    pos += 1   # single whitespace after maxval
    channels = 3 if magic == b"P6" else 1
    pixels = np.frombuffer(data, dtype=np.uint8, count=h * w * channels,
                           offset=pos)
    if magic == b"P6":
        return pixels.reshape(h, w, 3).copy()
    return pixels.reshape(h, w).copy()
