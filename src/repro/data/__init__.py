"""Deterministic synthetic input generators."""

from .images import (bayer_mosaic, clustered_image, gradient_image,
                     scene_image, texture_image)
from .pnm import read_pnm, write_pnm

__all__ = ["bayer_mosaic", "clustered_image", "gradient_image",
           "scene_image", "texture_image", "read_pnm", "write_pnm"]
