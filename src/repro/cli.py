"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``apps``
    List the evaluation applications.
``run <app>``
    Build and execute one application's automaton, print its
    runtime-accuracy profile, optionally stop at a deadline / energy
    budget / target SNR, save the final output as a PGM/PPM image, or
    execute in contract mode.
``figures [name ...]``
    Regenerate paper figures (default: all) and print their tables.
``bench [backends|serve]``
    Wall-clock comparison of the execution backends (threaded vs
    process), or a serving benchmark (latency/goodput/quality vs
    offered load), optionally emitting machine-readable JSON
    (``--json PATH`` or the ``REPRO_BENCH_JSON`` environment variable;
    the serve benchmark writes ``BENCH_serve.json`` by default).
``serve``
    Drive a synthetic open-loop workload against an
    :class:`~repro.serve.AnytimeServer`: many concurrent requests with
    deadline/quality SLOs multiplexed over a bounded slot pool, with
    admission control and quality-aware preemption.  ``--workers N``
    serves through a forked fleet; ``--endpoints HOST:PORT,...``
    serves through externally launched TCP workers.
``serve-worker``
    Run one fleet worker bound to a TCP listener
    (``--listen HOST:PORT``) so a router on another host can reach it
    via ``FleetRouter(endpoints=[...])`` / ``serve --endpoints``.
``serve-front``
    Stand up a fleet plus the asyncio front end
    (:mod:`repro.serve.aiofront`): external clients speak the same
    length-prefixed JSON frames over TCP, with per-connection
    backpressure and graceful SIGTERM drain.
``check``
    Conformance checking (:mod:`repro.check`): run the differential
    harness across all executors (and under server preemption), the
    restore-differential harness (``--restore``: checkpoint on one
    executor, restore on another, require a bit-exact continuation),
    the checker self-test (``--self-test``), the property-based
    automaton fuzzer (``--fuzz``), or replay a saved fuzz failure
    (``--replay``).
``ckpt inspect <path>``
    Print a checkpoint's self-describing header (:mod:`repro.ckpt`)
    without unpickling its payload.
"""

from __future__ import annotations

import argparse
import math
import sys
from typing import Any, Sequence

from .apps.registry import APP_REGISTRY, get_app
from .core.contract import run_contract
from .core.controller import (AccuracyTarget, AnyOf, DeadlineStop,
                              EnergyBudget, StopCondition)
from .core.faults import FaultInjector, FaultPolicy
from .core.tracing import make_sink

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="The Anytime Automaton (ISCA 2016) reproduction")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("apps", help="list evaluation applications")

    run = sub.add_parser("run", help="execute one application")
    run.add_argument("app", choices=sorted(APP_REGISTRY))
    run.add_argument("--size", type=int, default=128,
                     help="input image edge length (default 128)")
    run.add_argument("--seed", type=int, default=0)
    run.add_argument("--cores", type=float, default=32.0,
                     help="simulated core count (default 32)")
    run.add_argument("--executor",
                     choices=("simulated", "threaded", "process"),
                     default="simulated",
                     help="execution backend: deterministic virtual-"
                          "time simulation (default), real threads, or "
                          "one process per stage over shared memory")
    run.add_argument("--timeout-s", type=float, default=None,
                     metavar="SECONDS",
                     help="wall-clock timeout (threaded/process "
                          "executors only)")
    run.add_argument("--deadline", type=float, default=None,
                     metavar="FRAC",
                     help="stop at FRAC x baseline runtime")
    run.add_argument("--energy-budget", type=float, default=None,
                     metavar="FRAC",
                     help="stop at FRAC x the full run's energy")
    run.add_argument("--target-snr", type=float, default=None,
                     metavar="DB",
                     help="stop once output SNR reaches DB")
    run.add_argument("--contract", action="store_true",
                     help="contract mode: size stages to --deadline "
                          "up front instead of running interruptibly")
    run.add_argument("--dynamic", action="store_true",
                     help="dynamic core reallocation (generalized "
                          "processor sharing)")
    run.add_argument("--save", type=str, default=None, metavar="PATH",
                     help="write the final output as PGM/PPM")
    run.add_argument("--rows", type=int, default=12,
                     help="profile rows to print (default 12)")
    run.add_argument("--fault-inject", action="append", default=None,
                     metavar="SPEC",
                     help="inject a fault, repeatable; SPEC is "
                          "STAGE:AT[:error|:delay=UNITS][:xTIMES] "
                          "(AT = the stage's Nth command)")
    run.add_argument("--max-retries", type=int, default=0,
                     metavar="N",
                     help="restarts per failing stage before it "
                          "degrades (with --on-failure restart)")
    run.add_argument("--on-failure",
                     choices=("fail", "degrade", "restart"),
                     default=None,
                     help="stage-failure disposition (default: degrade "
                          "when faults are injected, else fail)")
    run.add_argument("--fault-backoff", type=float, default=0.0,
                     metavar="UNITS",
                     help="virtual-time backoff before each restart")
    run.add_argument("--strict", action="store_true",
                     help="raise on unrecovered stage failure instead "
                          "of returning the partial result")
    run.add_argument("--trace", type=str, default=None, metavar="PATH",
                     help="write an execution trace to PATH")
    run.add_argument("--trace-format", choices=("jsonl", "chrome"),
                     default="chrome",
                     help="trace file format: chrome://tracing JSON "
                          "(default) or JSON lines")

    figures = sub.add_parser("figures",
                             help="regenerate paper figures")
    figures.add_argument("names", nargs="*",
                         help="figure names (default: all)")
    figures.add_argument("--size", type=int, default=None,
                         help="override REPRO_BENCH_SIZE")

    bench = sub.add_parser(
        "bench", help="wall-clock benchmarks (backends, serving, or "
                      "the process data plane)")
    bench.add_argument("what", nargs="?", default="backends",
                       choices=("backends", "serve", "plane"),
                       help="what to benchmark: execution backends "
                            "(default), the serving layer, or the "
                            "data-plane microbenchmark")
    bench.add_argument("--size", type=int, default=None,
                       help="override REPRO_BENCH_SIZE (backends, "
                            "plane) / input edge length (serve)")
    bench.add_argument("--json", type=str, default=None, metavar="PATH",
                       help="write machine-readable results to PATH "
                            "(default: $REPRO_BENCH_JSON when set, "
                            "else BENCH_<what>.json)")
    bench.add_argument("--lease-k", type=int, default=8,
                       help="lease size for the leased leg of the "
                            "plane bench (default 8)")
    bench.add_argument("--check-against", type=str, default=None,
                       metavar="PATH",
                       help="baseline BENCH_plane.json / "
                            "BENCH_serve.json to gate against; exits 1 "
                            "on regression beyond the tolerance band "
                            "(plane and serve benches)")
    bench.add_argument("--tolerance", type=float, default=0.25,
                       help="allowed relative regression in the "
                            "deterministic round-trip metrics "
                            "(default 0.25)")
    bench.add_argument("--wall-tolerance", type=float, default=0.60,
                       help="allowed relative regression in "
                            "versions/sec, applied only when the "
                            "baseline machine matches (default 0.60)")
    bench.add_argument("--backends", type=str,
                       default="threaded,process",
                       help="comma-separated backends to time "
                            "(default: threaded,process)")
    bench.add_argument("--app", type=str, default="2dconv",
                       choices=sorted(APP_REGISTRY),
                       help="application to serve (serve bench)")
    bench.add_argument("--requests", type=int, default=24,
                       help="requests per load point (serve bench)")
    bench.add_argument("--slots", type=int, default=4,
                       help="executor slots (serve bench)")
    bench.add_argument("--queue-limit", type=int, default=8,
                       help="admission queue bound (serve bench)")
    bench.add_argument("--loads", type=str, default=None,
                       help="comma-separated offered loads in req/s "
                            "(serve bench; default: derived sweep)")
    bench.add_argument("--policy", choices=("fair", "gain"),
                       default="fair",
                       help="slot-allocation policy (serve bench)")
    bench.add_argument("--serve-executor",
                       choices=("threaded", "process"),
                       default="threaded",
                       help="execution backend under the server")
    bench.add_argument("--target-snr", type=float, default=None,
                       metavar="DB",
                       help="per-request quality target (serve bench)")
    bench.add_argument("--fleet", action="store_true",
                       help="serve bench: benchmark the sharded worker "
                            "fleet (goodput scaling + request "
                            "coalescing) instead of one in-process "
                            "server; writes BENCH_fleet.json")
    bench.add_argument("--workers", type=str, default="1,2",
                       metavar="N,M,...",
                       help="fleet sizes for the scaling leg "
                            "(serve bench --fleet; default 1,2)")
    bench.add_argument("--distinct", type=int, default=6,
                       help="unique request specs in the duplicate-"
                            "heavy coalescing leg (serve bench "
                            "--fleet; default 6)")
    bench.add_argument("--seed", type=int, default=0)

    serve = sub.add_parser(
        "serve", help="serve an open-loop anytime workload")
    serve.add_argument("--app", type=str, default="2dconv",
                       choices=sorted(APP_REGISTRY))
    serve.add_argument("--size", type=int, default=32,
                       help="input image edge length (default 32)")
    serve.add_argument("--requests", type=int, default=16,
                       help="how many requests to submit (default 16)")
    serve.add_argument("--rate", type=float, default=None, metavar="RPS",
                       help="offered load, requests/s (default: 1.5x "
                            "the measured service capacity)")
    serve.add_argument("--slots", type=int, default=4,
                       help="concurrent executor slots (default 4)")
    serve.add_argument("--queue-limit", type=int, default=8,
                       help="admission queue bound (default 8)")
    serve.add_argument("--policy", choices=("fair", "gain"),
                       default="fair",
                       help="slot-allocation policy: round-robin fair "
                            "share or profile-guided marginal gain")
    serve.add_argument("--executor", choices=("threaded", "process"),
                       default="threaded",
                       help="execution backend under the server")
    serve.add_argument("--deadline-s", type=float, default=None,
                       metavar="SECONDS",
                       help="per-request latency SLO (default: 8x the "
                            "measured solo run time)")
    serve.add_argument("--target-snr", type=float, default=None,
                       metavar="DB",
                       help="per-request quality SLO: finish early "
                            "once output SNR reaches DB")
    serve.add_argument("--wait-s", type=float, default=0.0,
                       metavar="SECONDS",
                       help="backpressure budget per submission before "
                            "shedding (default 0: shed immediately "
                            "when the queue is full)")
    serve.add_argument("--quantum-s", type=float, default=0.02,
                       help="slot tenure before preemption (default "
                            "0.02)")
    serve.add_argument("--seed", type=int, default=0)
    serve.add_argument("--workers", type=int, default=None, metavar="N",
                       help="serve through a sharded fleet of N worker "
                            "processes (router + consistent-hash "
                            "placement + coalescing) instead of one "
                            "in-process server")
    serve.add_argument("--distinct", type=int, default=4,
                       help="unique inputs to spread requests over in "
                            "fleet mode (duplicates coalesce; "
                            "default 4)")
    serve.add_argument("--no-coalesce", action="store_true",
                       help="fleet mode: disable same-key request "
                            "coalescing on the workers")
    serve.add_argument("--endpoints", type=str, default=None,
                       metavar="HOST:PORT,...",
                       help="serve through externally launched TCP "
                            "workers (see `repro serve-worker`) "
                            "instead of forking local ones")
    serve.add_argument("--trace", type=str, default=None, metavar="PATH",
                       help="write server + run events to PATH")
    serve.add_argument("--trace-format", choices=("jsonl", "chrome"),
                       default="chrome")

    worker = sub.add_parser(
        "serve-worker",
        help="run one fleet worker on a TCP listener")
    worker.add_argument("--listen", type=str, default="127.0.0.1:0",
                        metavar="HOST:PORT",
                        help="bind address (default 127.0.0.1:0 — an "
                             "ephemeral port, printed on startup)")
    worker.add_argument("--slots", type=int, default=2,
                        help="concurrent executor slots (default 2)")
    worker.add_argument("--queue-limit", type=int, default=8,
                        help="admission queue bound (default 8)")
    worker.add_argument("--executor", choices=("threaded", "process"),
                        default="threaded",
                        help="execution backend under the worker")
    worker.add_argument("--quantum-s", type=float, default=0.02,
                        help="slot tenure before preemption "
                             "(default 0.02)")
    worker.add_argument("--memo-ttl-s", type=float, default=5.0,
                        help="worker-local memo TTL for sealed finals "
                             "(default 5.0)")
    worker.add_argument("--no-coalesce", action="store_true",
                        help="disable same-key request coalescing")
    worker.add_argument("--resume-dir", type=str, default=None,
                        metavar="DIR",
                        help="directory for suspend checkpoints "
                             "(enables preempt-to-disk + migration)")
    worker.add_argument("--check", action="store_true",
                        help="attach an invariant Checker to every run "
                             "and report violation counts in done "
                             "messages")
    worker.add_argument("--forever", action="store_true",
                        help="keep accepting router connections after "
                             "the first disconnects (default: serve "
                             "one router, then exit)")

    front = sub.add_parser(
        "serve-front",
        help="fleet + asyncio front end for external TCP clients")
    front.add_argument("--host", type=str, default="127.0.0.1",
                       help="front-end bind host (default 127.0.0.1)")
    front.add_argument("--port", type=int, default=9700,
                       help="front-end bind port (default 9700; 0 for "
                            "ephemeral)")
    front.add_argument("--workers", type=int, default=2, metavar="N",
                       help="forked local fleet workers (default 2; "
                            "ignored with --endpoints)")
    front.add_argument("--endpoints", type=str, default=None,
                       metavar="HOST:PORT,...",
                       help="route to externally launched TCP workers "
                            "instead of forking local ones")
    front.add_argument("--slots", type=int, default=2,
                       help="slots per forked worker (default 2)")
    front.add_argument("--queue-limit", type=int, default=8,
                       help="admission queue bound per worker "
                            "(default 8)")
    front.add_argument("--executor", choices=("threaded", "process"),
                       default="threaded",
                       help="execution backend under forked workers")
    front.add_argument("--memo-ttl-s", type=float, default=30.0,
                       help="router-level fleet memo TTL (default 30)")
    front.add_argument("--max-pending", type=int, default=8,
                       help="per-connection in-flight bound before the "
                            "front end stops reading frames "
                            "(default 8)")
    front.add_argument("--idle-timeout-s", type=float, default=60.0,
                       help="close idle client connections after this "
                            "many seconds (default 60)")

    check = sub.add_parser(
        "check", help="conformance checking (invariants, differential "
                      "harness, self-test, fuzzing)")
    check.add_argument("apps", nargs="*", metavar="APP",
                       help="applications to cross-check (default: "
                            "2dconv kmeans dwt53)")
    check.add_argument("--size", type=int, default=24,
                       help="input edge length for the differential "
                            "harness (default 24)")
    check.add_argument("--seed", type=int, default=0)
    check.add_argument("--executors", type=str,
                       default="simulated,threaded,process",
                       help="comma-separated executors to cross-check "
                            "(default: all three)")
    check.add_argument("--no-serve", action="store_true",
                       help="skip the AnytimeServer preempt/resume leg")
    check.add_argument("--timeout-s", type=float, default=120.0,
                       help="wall-clock bound per leg (default 120)")
    check.add_argument("--json", type=str, default=None, metavar="PATH",
                       help="write the machine-readable report to PATH")
    check.add_argument("--self-test", action="store_true",
                       help="inject each class of violation and assert "
                            "the checker catches every one")
    check.add_argument("--fuzz", action="store_true",
                       help="property-based fuzzing of random automata")
    check.add_argument("--max-examples", type=int, default=50,
                       help="fuzzing examples to draw (default 50)")
    check.add_argument("--fuzz-seed-file", type=str, default=None,
                       metavar="PATH",
                       help="write the shrunk falsifying spec to PATH "
                            "(default: fuzz-failure.json)")
    check.add_argument("--replay", type=str, default=None,
                       metavar="PATH",
                       help="replay a saved fuzz failure seed file")
    check.add_argument("--restore", action="store_true",
                       help="restore-differential mode: interrupt a "
                            "run, checkpoint it, restore it on every "
                            "other executor, and require the "
                            "continuation to be bit-exact")
    check.add_argument("--pairs", type=str, default=None,
                       metavar="SRC:DST,...",
                       help="restore mode: comma-separated "
                            "source:destination executor pairs "
                            "(default: all ordered pairs)")
    check.add_argument("--workdir", type=str, default=None,
                       metavar="DIR",
                       help="restore mode: directory for checkpoint "
                            "files; failing legs leave their .rck "
                            "files here for post-mortem (default: a "
                            "temporary directory)")
    check.add_argument("--lease-k", type=int, default=8,
                       help="restore mode: command lease size for the "
                            "process-executor legs (default 8)")
    check.add_argument("--fleet", action="store_true",
                       help="transport differential: the same "
                            "duplicate-heavy workload on AF_UNIX and "
                            "TCP fleets must seal identical digests, "
                            "and a SIGKILLed TCP worker's runs must "
                            "migrate in-band and finish bit-exact")

    ckpt = sub.add_parser(
        "ckpt", help="checkpoint utilities (inspect saved runs)")
    ckpt_sub = ckpt.add_subparsers(dest="ckpt_command", required=True)
    inspect = ckpt_sub.add_parser(
        "inspect", help="print a checkpoint's header without "
                        "unpickling its payload")
    inspect.add_argument("path", help="checkpoint file (.rck)")
    inspect.add_argument("--json", action="store_true",
                         help="emit the raw header as JSON")
    return parser


def _cmd_apps() -> int:
    width = max(len(name) for name in APP_REGISTRY)
    for name in sorted(APP_REGISTRY):
        print(f"{name:<{width}}  {APP_REGISTRY[name].description}")
    return 0


def _make_stop(args: argparse.Namespace, automaton: Any,
               reference: Any, spec: Any,
               full_energy: float | None) -> StopCondition | None:
    conditions: list[StopCondition] = []
    if args.deadline is not None:
        conditions.append(DeadlineStop(
            automaton.baseline_duration(args.cores) * args.deadline))
    if args.energy_budget is not None:
        if full_energy is None:
            raise ValueError("energy budget needs a probe run")
        conditions.append(EnergyBudget(full_energy
                                       * args.energy_budget))
    if args.target_snr is not None:
        conditions.append(AccuracyTarget(
            lambda value: spec.metric(value, reference),
            target=args.target_snr))
    if not conditions:
        return None
    return conditions[0] if len(conditions) == 1 else AnyOf(*conditions)


def _make_faults(args: argparse.Namespace,
                 ) -> tuple[FaultPolicy | None, FaultInjector | None]:
    """Fault policy + injector from the CLI flags (None when unused)."""
    injector = None
    if args.fault_inject:
        injector = FaultInjector.from_specs(args.fault_inject)
    on_failure = args.on_failure
    if on_failure is None:
        if injector is None and args.max_retries == 0:
            return None, None
        on_failure = "restart" if args.max_retries > 0 else "degrade"
    policy = FaultPolicy(max_retries=args.max_retries,
                         backoff=args.fault_backoff,
                         on_failure=on_failure)
    return policy, injector


def _cmd_run(args: argparse.Namespace) -> int:
    if args.executor != "simulated":
        incompatible = [flag for flag, used in (
            ("--contract", args.contract),
            ("--dynamic", args.dynamic),
            ("--deadline", args.deadline is not None),
            ("--energy-budget", args.energy_budget is not None),
        ) if used]
        if incompatible:
            print(f"error: {', '.join(incompatible)} require(s) the "
                  f"simulated executor (virtual time / core shares); "
                  f"use --timeout-s or --target-snr with "
                  f"--executor {args.executor}", file=sys.stderr)
            return 2
    elif args.timeout_s is not None:
        print("error: --timeout-s is wall-clock; the simulated "
              "executor takes --deadline (virtual time) instead",
              file=sys.stderr)
        return 2

    spec = get_app(args.app)
    image = spec.make_input(args.size, args.seed)
    automaton = spec.build(image)
    reference = (spec.reference(image) if spec.reference_kind != "input"
                 else image)

    full_energy = None
    if args.energy_budget is not None:
        probe = spec.build(image)
        full_energy = probe.run_simulated(
            total_cores=args.cores, schedule=spec.schedule).energy

    if args.contract:
        if args.deadline is None:
            print("error: --contract requires --deadline",
                  file=sys.stderr)
            return 2
        if args.trace is not None:
            print("error: --trace is not supported in --contract mode "
                  "(contract runs are planned, not observed)",
                  file=sys.stderr)
            return 2
        plan, result, automaton = run_contract(
            lambda: spec.build(image), args.deadline,
            total_cores=args.cores, schedule=spec.schedule)
        print(f"contract plan: budget {plan.budget_work:.0f} work "
              f"units, planned {plan.planned_work:.0f}, "
              f"precise={plan.achieves_precise}")
    else:
        stop = _make_stop(args, automaton, reference, spec, full_energy)
        try:
            faults, injector = _make_faults(args)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        if injector is not None:
            known = {s.name for s in automaton.graph.stages}
            unknown = {f.stage for f in injector.faults} - known
            if unknown:
                print(f"error: --fault-inject names unknown stage(s) "
                      f"{sorted(unknown)}; {args.app} has "
                      f"{sorted(known)}", file=sys.stderr)
                return 2
        sink = (make_sink(args.trace, args.trace_format)
                if args.trace is not None else None)
        try:
            if args.executor == "simulated":
                result = automaton.run_simulated(
                    total_cores=args.cores,
                    schedule=spec.schedule,
                    stop=stop,
                    dynamic_shares=args.dynamic,
                    faults=faults,
                    injector=injector,
                    strict=args.strict,
                    trace=sink,
                    trace_metric=(spec.metric if sink is not None
                                  else None),
                    trace_reference=(reference if sink is not None
                                     else None))
            else:
                runner = (automaton.run_threaded
                          if args.executor == "threaded"
                          else automaton.run_processes)
                result = runner(
                    stop=stop,
                    timeout_s=args.timeout_s,
                    faults=faults,
                    injector=injector,
                    strict=args.strict,
                    trace=sink,
                    trace_metric=(spec.metric if sink is not None
                                  else None),
                    trace_reference=(reference if sink is not None
                                     else None))
        finally:
            if sink is not None:
                sink.close()
        if sink is not None:
            print(f"trace written to {args.trace} "
                  f"({args.trace_format})")
        troubled = [r for r in result.stage_reports.values()
                    if r.failures or r.degraded or r.failed]
        for report in troubled:
            print(f"fault report — {report.summary()}")

    records = result.output_records(automaton.terminal_buffer_name)
    if not records:
        print("no output version was produced before the stop "
              "condition fired; give it more budget")
        return 1

    if args.executor == "simulated":
        # normalize against the *untrimmed* application's baseline so
        # contract-mode runtimes compare against the same yardstick
        baseline = (spec.build(image).baseline_duration(args.cores)
                    if args.contract
                    else automaton.baseline_duration(args.cores))
        time_header, scale = "runtime", baseline
    else:
        # wall-clock executors: real seconds, no virtual baseline
        time_header, scale = "time (s)", 1.0
    state = ("stopped early" if result.stopped_early
             else "completed" if result.completed
             else "degraded")
    print(f"\n{args.app}: {len(records)} output version(s), {state} "
          f"({args.executor} executor)")
    print(f"{time_header:>10}  {'SNR (dB)':>10}")
    step = max(1, len(records) // max(args.rows, 1))
    shown = list(records[::step])
    if shown[-1] is not records[-1]:
        shown.append(records[-1])
    for rec in shown:
        snr = spec.metric(rec.value, reference)
        snr_text = "inf" if math.isinf(snr) else f"{snr:.2f}"
        print(f"{rec.time / scale:>10.3f}  {snr_text:>10}")

    if args.save:
        if spec.to_image is None:
            print("this app's output is not imageable", file=sys.stderr)
            return 2
        from .data.pnm import write_pnm
        write_pnm(args.save, spec.to_image(records[-1].value))
        print(f"final output written to {args.save}")
    return 0


def _cmd_figures(args: argparse.Namespace) -> int:
    import os

    from . import bench

    if args.size is not None:
        os.environ["REPRO_BENCH_SIZE"] = str(args.size)
    all_figures = {
        name: getattr(bench, name) for name in bench.__all__
        if name.startswith(("fig", "ablation", "extension"))
    }
    names = args.names or sorted(all_figures)
    unknown = [n for n in names if n not in all_figures]
    if unknown:
        print(f"unknown figures {unknown}; known: "
              f"{sorted(all_figures)}", file=sys.stderr)
        return 2
    for name in names:
        print(all_figures[name]().render())
        print()
    return 0


def _cmd_serve_fleet(args: argparse.Namespace) -> int:
    import random
    import time as _time

    from .serve.bench import calibrate_app
    from .serve.router import FleetRouter, summarize_fleet
    from .serve.transport import parse_endpoint

    endpoints = None
    if getattr(args, "endpoints", None):
        endpoints = [parse_endpoint(token.strip())
                     for token in args.endpoints.split(",")
                     if token.strip()]
    workers = len(endpoints) if endpoints else args.workers

    print(f"calibrating {args.app} at size {args.size} ...")
    calib = calibrate_app(app=args.app, size=args.size,
                          seed=args.seed + 7)
    baseline = calib["baseline_wall_s"]
    capacity = workers * args.slots / baseline
    rate = args.rate if args.rate is not None else 1.5 * capacity
    deadline_s = (args.deadline_s if args.deadline_s is not None
                  else 8.0 * baseline)
    slo = {"deadline_s": deadline_s, "target_db": args.target_snr}
    distinct = max(1, args.distinct)
    kind = "TCP" if endpoints else "forked"
    print(f"solo run {baseline:.3f}s -> fleet capacity "
          f"~{capacity:.1f} req/s over {workers} {kind} worker(s); "
          f"offering {rate:.1f} req/s across {distinct} distinct "
          f"input(s), deadline {deadline_s:.3f}s")

    rng = random.Random(args.seed)
    config = {"slots": args.slots, "queue_limit": args.queue_limit,
              "executor": args.executor, "quantum_s": args.quantum_s,
              "coalesce": not args.no_coalesce}
    with FleetRouter(workers=workers, endpoints=endpoints,
                     worker_config=config) as fleet:
        started = _time.monotonic()
        requests = []
        for i in range(args.requests):
            requests.append(fleet.submit(
                args.app, size=args.size,
                seed=args.seed + i % distinct, slo=slo,
                wait_s=args.wait_s))
            if i + 1 < args.requests:
                _time.sleep(rng.expovariate(rate))
        if not fleet.drain(timeout_s=max(60.0,
                                         4 * args.requests * baseline)):
            print("error: fleet drain timed out", file=sys.stderr)
            return 1
        wall_s = _time.monotonic() - started
        summary = summarize_fleet(requests, wall_s=wall_s)
        stats = fleet.aggregate_stats()

    print(f"\n{'request':<9}{'worker':>7}  {'state':<11}{'latency':>9}"
          f"{'coal':>6}{'memo':>6}{'SNR (dB)':>10}")
    for request in requests:
        r = request.result(timeout_s=0.0)
        snr = ("inf" if r.get("precise_snr")
               else "-" if r.get("snr_db") is None
               else f"{r['snr_db']:.1f}")
        print(f"r{request.rid:<8}{r['worker']!s:>7}  {r['state']:<11}"
              f"{r['fleet_latency_s']:>9.3f}"
              f"{'y' if r.get('coalesced') else '-':>6}"
              f"{'y' if r.get('memo_hit') else '-':>6}{snr:>10}")

    print(f"\nserved {summary['completed']}/{summary['requests']} "
          f"(shed {summary['shed']}, failed {summary['failed']}) at "
          f"{summary['goodput_rps']:.2f} req/s goodput on workers "
          f"{summary['workers_used']}")
    print(f"latency p50 {summary['latency_p50_s']:.3f}s  "
          f"p99 {summary['latency_p99_s']:.3f}s  "
          f"SLO attainment {summary['slo_attainment']:.0%}")
    print(f"coalesced {summary['coalesced']}, memo hits "
          f"{summary['memo_hits']}, re-dispatched "
          f"{summary['redispatched']}; router counters "
          f"{stats['router']}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from .core.tracing import make_sink as _make_sink
    from .serve import SLO, AnytimeServer, summarize, run_open_loop
    from .serve.bench import calibrate_app, _make_policy

    if args.workers is not None or args.endpoints:
        if args.workers is not None and args.workers < 1:
            print("error: --workers must be >= 1", file=sys.stderr)
            return 2
        return _cmd_serve_fleet(args)

    print(f"calibrating {args.app} at size {args.size} ...")
    calib = calibrate_app(app=args.app, size=args.size,
                          seed=args.seed + 7)
    baseline = calib["baseline_wall_s"]
    capacity = args.slots / baseline
    rate = args.rate if args.rate is not None else 1.5 * capacity
    deadline_s = (args.deadline_s if args.deadline_s is not None
                  else 8.0 * baseline)
    slo = SLO(deadline_s=deadline_s, target_db=args.target_snr)
    print(f"solo run {baseline:.3f}s -> capacity ~{capacity:.1f} req/s; "
          f"offering {rate:.1f} req/s, deadline {deadline_s:.3f}s"
          + (f", target {args.target_snr:.1f} dB"
             if args.target_snr is not None else ""))

    sink = (_make_sink(args.trace, args.trace_format)
            if args.trace is not None else None)
    server = AnytimeServer(
        slots=args.slots, queue_limit=args.queue_limit,
        executor=args.executor,
        policy=_make_policy(args.policy, calib["profile"], baseline),
        quantum_s=args.quantum_s, trace=sink)
    try:
        with server:
            sessions = run_open_loop(
                server, lambda i: calib["builder"], args.requests,
                rate_hz=rate, slo=slo,
                metric=lambda i: calib["metric"],
                wait_s=args.wait_s, seed=args.seed)
            drained = server.drain(
                timeout_s=max(60.0, 4 * args.requests * baseline))
        if not drained:
            print("error: drain timed out", file=sys.stderr)
            return 1
    finally:
        if sink is not None:
            sink.close()

    print(f"\n{'request':<12}{'state':<11}{'latency':>9}{'queued':>9}"
          f"{'preempt':>8}{'SNR (dB)':>10}")
    for session in sessions:
        r = session.result(timeout_s=0.0)
        snr = ("-" if r.snr_db is None
               else "inf" if math.isinf(r.snr_db) else f"{r.snr_db:.1f}")
        print(f"{session.name:<12}{r.state.value:<11}"
              f"{r.latency_s:>9.3f}{r.queue_s:>9.3f}"
              f"{r.preemptions:>8}{snr:>10}")

    summary = summarize(sessions)
    stats = server.stats()
    print(f"\nserved {summary['completed']}/{summary['requests']} "
          f"(shed {summary['shed']}, failed {summary['failed']}) at "
          f"{summary['throughput_rps']:.2f} req/s goodput")
    print(f"latency p50 {summary['latency_p50_s']:.3f}s  "
          f"p99 {summary['latency_p99_s']:.3f}s  "
          f"SLO attainment {summary['slo_attainment']:.0%}")
    print(f"preemptions {stats['preemptions']}, resumes "
          f"{stats['resumes']}; {summary['interrupted']} request(s) "
          f"interrupted, {summary['precise']} reached precise")
    if summary["interrupted"] and not math.isnan(
            summary["snr_at_interrupt_mean_db"]):
        print(f"mean SNR at interrupt: "
              f"{summary['snr_at_interrupt_mean_db']:.1f} dB")
    if args.trace is not None:
        print(f"trace written to {args.trace} ({args.trace_format})")
    return 0


def _worker_config_from_args(args: argparse.Namespace) -> dict[str, Any]:
    config: dict[str, Any] = {
        "slots": args.slots, "queue_limit": args.queue_limit,
        "executor": args.executor,
    }
    if getattr(args, "quantum_s", None) is not None:
        config["quantum_s"] = args.quantum_s
    if getattr(args, "memo_ttl_s", None) is not None:
        config["memo_ttl_s"] = args.memo_ttl_s
    if getattr(args, "no_coalesce", False):
        config["coalesce"] = False
    if getattr(args, "resume_dir", None):
        config["resume_dir"] = args.resume_dir
    if getattr(args, "check", False):
        config["check"] = True
    return config


def _cmd_serve_worker(args: argparse.Namespace) -> int:
    from .serve.transport import parse_endpoint, serve_worker_listener

    try:
        listen = parse_endpoint(args.listen)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    config = _worker_config_from_args(args)
    knobs = ", ".join(f"{k}={v}" for k, v in sorted(config.items()))

    def announce(host: str, port: int) -> None:
        print(f"fleet worker listening on {host}:{port} ({knobs})")
        print(f"route to it with: repro serve --endpoints {host}:{port}",
              flush=True)

    try:
        serve_worker_listener(listen, config, once=not args.forever,
                              announce=announce)
    except KeyboardInterrupt:
        pass
    print("router disconnected; worker exiting")
    return 0


def _cmd_serve_front(args: argparse.Namespace) -> int:
    from .serve.aiofront import serve_front
    from .serve.router import FleetRouter
    from .serve.transport import parse_endpoint

    endpoints = None
    if args.endpoints:
        endpoints = [parse_endpoint(token.strip())
                     for token in args.endpoints.split(",")
                     if token.strip()]
    config = {"slots": args.slots, "queue_limit": args.queue_limit,
              "executor": args.executor}

    def announce(host: str, port: int) -> None:
        backing = (f"{len(endpoints)} TCP worker(s)" if endpoints
                   else f"{args.workers} forked worker(s)")
        print(f"anytime front end on {host}:{port} -> {backing}; "
              f"SIGTERM drains gracefully", flush=True)

    with FleetRouter(workers=args.workers, endpoints=endpoints,
                     worker_config=config,
                     fleet_memo_ttl_s=args.memo_ttl_s) as fleet:
        serve_front(fleet, args.host, args.port, announce=announce,
                    max_pending_per_conn=args.max_pending,
                    idle_timeout_s=args.idle_timeout_s)
    print("front end drained; fleet shut down")
    return 0


def _cmd_bench_fleet(args: argparse.Namespace) -> int:
    import json

    from .serve.bench import run_fleet_bench

    workers = tuple(int(x) for x in args.workers.split(",") if x)
    data = run_fleet_bench(
        app=args.app, size=args.size if args.size is not None else 24,
        n_requests=args.requests,
        workers=workers, slots=args.slots, distinct=args.distinct,
        executor=args.serve_executor, seed=args.seed, progress=print)

    print(f"\nfleet scaling ({data['app']}, {data['slots']} slot(s) "
          f"per worker, {data['n_requests']} distinct requests):")
    print(f"{'workers':>8}{'goodput':>9}{'p50 (s)':>9}{'p99 (s)':>9}"
          f"{'done':>6}{'shed':>6}")
    for leg in data["scaling"]:
        print(f"{leg['workers']:>8}{leg['goodput_rps']:>9.2f}"
              f"{leg['latency_p50_s']:>9.3f}{leg['latency_p99_s']:>9.3f}"
              f"{leg['completed']:>6}{leg['shed']:>6}")
    if data["scaling_ratio"] is not None:
        print(f"goodput scaling {data['scaling'][0]['workers']} -> "
              f"{data['scaling'][-1]['workers']} workers: "
              f"{data['scaling_ratio']:.2f}x")

    print(f"\ncoalescing (2 workers, {data['n_requests']} requests "
          f"over {data['distinct']} distinct inputs):")
    print(f"{'coalesce':>9}{'shared':>8}{'memo':>6}{'mean (s)':>10}"
          f"{'goodput':>9}")
    for mode in ("on", "off"):
        leg = data["coalescing"][mode]
        print(f"{mode:>9}{leg['coalesced']:>8}{leg['memo_hits']:>6}"
              f"{leg['latency_mean_s']:>10.3f}"
              f"{leg['goodput_rps']:>9.2f}")

    json_path = _bench_json_path(args, "BENCH_fleet.json")
    with open(json_path, "w", encoding="utf-8") as fh:
        json.dump(data, fh, indent=2)
        fh.write("\n")
    print(f"results written to {json_path}")
    return 0


def _cmd_bench_serve(args: argparse.Namespace) -> int:
    import json
    import os

    from .serve.bench import compare_serve_baseline, run_serve_bench

    if args.fleet:
        return _cmd_bench_fleet(args)

    loads: tuple[float, ...] = ()
    if args.loads:
        loads = tuple(float(x) for x in args.loads.split(",") if x)
    data = run_serve_bench(
        app=args.app, loads=loads, n_requests=args.requests,
        slots=args.slots, queue_limit=args.queue_limit,
        size=args.size if args.size is not None else 32,
        policy=args.policy, executor=args.serve_executor,
        target_db=args.target_snr, seed=args.seed, progress=print)

    print(f"\nserving {data['app']} on {data['slots']} "
          f"{data['executor']} slot(s), queue bound "
          f"{data['queue_limit']}, policy {data['policy']}")
    print(f"{'offered':>9}{'goodput':>9}{'p50 (s)':>9}{'p99 (s)':>9}"
          f"{'shed':>6}{'SLO %':>7}{'preempt':>8}")
    for row in data["sweep"]:
        slo_pct = (f"{row['slo_attainment'] * 100:.0f}"
                   if not math.isnan(row["slo_attainment"]) else "-")
        print(f"{row['offered_rps']:>9.2f}{row['throughput_rps']:>9.2f}"
              f"{row['latency_p50_s']:>9.3f}{row['latency_p99_s']:>9.3f}"
              f"{row['shed']:>6}{slo_pct:>7}{row['preempt_count']:>8}")

    json_path = _bench_json_path(args, "BENCH_serve.json")
    with open(json_path, "w", encoding="utf-8") as fh:
        json.dump(data, fh, indent=2)
        fh.write("\n")
    print(f"results written to {json_path}")

    if args.check_against:
        with open(args.check_against, encoding="utf-8") as fh:
            baseline = json.load(fh)
        problems = compare_serve_baseline(
            data, baseline, tolerance=args.tolerance,
            wall_tolerance=args.wall_tolerance)
        if problems:
            print(f"\nperf gate FAILED against {args.check_against}:")
            for problem in problems:
                print(f"  - {problem}")
            return 1
        print(f"\nperf gate passed against {args.check_against}")
    return 0


def _bench_json_path(args: argparse.Namespace, default: str) -> str:
    """The one fallback chain every bench flavor shares:
    ``--json`` > ``$REPRO_BENCH_JSON`` > a per-flavor default."""
    import os

    return (args.json or os.environ.get("REPRO_BENCH_JSON")
            or default)


def _cmd_bench_plane(args: argparse.Namespace) -> int:
    import json
    import os

    from .bench.plane import compare_plane_baseline, data_plane_profiles

    if args.size is not None:
        os.environ["REPRO_BENCH_SIZE"] = str(args.size)
    data = data_plane_profiles(lease_k=args.lease_k, progress=print)

    print(f"\ndata plane at size {data['size']} on "
          f"{data['cpu_count']} CPU core(s), lease_k={data['lease_k']}")
    print(f"{'app':<9}{'executor':<11}{'mode':<8}{'versions':>9}"
          f"{'vers/s':>9}{'rt/ver':>8}{'peek (ms)':>11}")
    for app, entry in data["apps"].items():
        for executor, modes in entry.items():
            for mode in ("sync", "leased"):
                row = modes[mode]
                print(f"{app:<9}{executor:<11}{mode:<8}"
                      f"{row['versions']:>9}"
                      f"{row['versions_per_s']:>9.1f}"
                      f"{row['round_trips_per_version']:>8.2f}"
                      f"{row['snapshot_latency_s'] * 1e3:>11.3f}")
            reduction = modes.get("round_trip_reduction")
            if reduction is not None:
                print(f"{app:<9}{executor:<11}round-trip reduction = "
                      f"{reduction:.2f}x")

    json_path = _bench_json_path(args, "BENCH_plane.json")
    with open(json_path, "w", encoding="utf-8") as fh:
        json.dump(data, fh, indent=2)
        fh.write("\n")
    print(f"results written to {json_path}")

    if args.check_against:
        with open(args.check_against, encoding="utf-8") as fh:
            baseline = json.load(fh)
        problems = compare_plane_baseline(
            data, baseline, tolerance=args.tolerance,
            wall_tolerance=args.wall_tolerance)
        if problems:
            print(f"\nperf gate FAILED against {args.check_against}:")
            for problem in problems:
                print(f"  - {problem}")
            return 1
        print(f"\nperf gate passed against {args.check_against}")
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    import json
    import os

    from .bench.experiments import backend_wall_profiles

    if args.what == "serve":
        return _cmd_bench_serve(args)
    if args.what == "plane":
        return _cmd_bench_plane(args)

    if args.size is not None:
        os.environ["REPRO_BENCH_SIZE"] = str(args.size)
    backends = tuple(b.strip() for b in args.backends.split(",")
                     if b.strip())
    known = {"threaded", "process"}
    unknown = [b for b in backends if b not in known]
    if unknown:
        print(f"error: unknown backend(s) {unknown}; known: "
              f"{sorted(known)}", file=sys.stderr)
        return 2
    data = backend_wall_profiles(backends=backends)

    print(f"execution backends at size {data['size']} on "
          f"{data['cpu_count']} CPU core(s)")
    print(f"{'figure':<14}{'backend':<10}{'wall (s)':>10}"
          f"{'t90 (s)':>10}{'outputs':>9}")
    for fig_name, entry in data["figures"].items():
        for backend in backends:
            row = entry[backend]
            t90 = (f"{row['t90_s']:.3f}" if row["t90_s"] is not None
                   else "-")
            print(f"{fig_name:<14}{backend:<10}"
                  f"{row['wall_s']:>10.3f}{t90:>10}"
                  f"{row['outputs']:>9}")
        ratio = entry.get("process_vs_threaded_t90")
        if ratio is not None:
            print(f"{fig_name:<14}process/threaded t90 = {ratio:.2f}x")

    json_path = _bench_json_path(args, "BENCH_backends.json")
    with open(json_path, "w", encoding="utf-8") as fh:
        json.dump(data, fh, indent=2)
        fh.write("\n")
    print(f"results written to {json_path}")
    return 0


def _cmd_ckpt(args: argparse.Namespace) -> int:
    import json

    from .ckpt import CheckpointError, read_header

    try:
        header = read_header(args.path)
    except CheckpointError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    if args.json:
        print(json.dumps(header, indent=2, sort_keys=True))
        return 0
    summary = header.get("summary") or {}
    app_spec = header.get("app_spec") or {}
    print(f"checkpoint {args.path}")
    print(f"  run        {header.get('name', '?')}")
    print(f"  executor   {header.get('executor', '?')}")
    if app_spec:
        spec_bits = ", ".join(f"{k}={v}" for k, v in
                              sorted(app_spec.items()))
        print(f"  app        {spec_bits}")
    if header.get("wall_time"):
        print(f"  captured   {header['wall_time']}")
    if summary:
        print(f"  duration   {summary.get('duration', 0.0):.6g}")
        print(f"  energy     {summary.get('energy', 0.0):.6g}")
        live = summary.get("live_stages") or []
        print(f"  live       {', '.join(live) if live else '(none)'}")
        versions = summary.get("buffer_versions") or {}
        for buffer, version in sorted(versions.items()):
            print(f"  buffer     {buffer} @ v{version}")
    print(f"  payload    {header.get('payload_len', '?')} bytes, "
          f"sha256 {header.get('payload_sha256', '?')[:16]}...")
    return 0


def _cmd_check_restore(args: argparse.Namespace) -> int:
    import json

    from .check import run_restore_differential

    pairs = None
    if args.pairs:
        pairs = []
        for token in args.pairs.split(","):
            token = token.strip()
            if not token:
                continue
            sep = ":" if ":" in token else ">"
            src, _, dst = token.partition(sep)
            known = ("simulated", "threaded", "process")
            if src not in known or dst not in known:
                print(f"error: bad pair {token!r}; want SRC:DST with "
                      f"executors from {known}", file=sys.stderr)
                return 2
            pairs.append((src, dst))

    apps = args.apps or ["2dconv", "kmeans", "dwt53"]
    unknown = [a for a in apps if a not in APP_REGISTRY]
    if unknown:
        print(f"error: unknown app(s) {unknown}; known: "
              f"{sorted(APP_REGISTRY)}", file=sys.stderr)
        return 2
    reports = []
    for app in apps:
        print(f"{app}: restore-differential (checkpoint on one "
              f"executor, continue on another)")
        report = run_restore_differential(
            app=app, size=args.size, seed=args.seed, pairs=pairs,
            workdir=args.workdir, timeout_s=args.timeout_s,
            lease_k=args.lease_k, progress=print)
        reports.append(report)
        print(report.summary())
        for mismatch in report.mismatches:
            print(f"    {mismatch['kind']}: {mismatch['detail']}")
    ok = all(r.ok for r in reports)
    print(f"\nrestore conformance: {'PASS' if ok else 'FAIL'} "
          f"({sum(r.ok for r in reports)}/{len(reports)} apps clean)")
    if args.json:
        payload = {"report": "restore-conformance", "ok": ok,
                   "apps": [r.to_dict() for r in reports]}
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2)
            fh.write("\n")
        print(f"report written to {args.json}")
    return 0 if ok else 1


def _cmd_check_fleet(args: argparse.Namespace) -> int:
    import json

    from .check import run_fleet_differential

    app = (args.apps[0] if args.apps else "dwt53")
    if app not in APP_REGISTRY:
        print(f"error: unknown app {app!r}; known: "
              f"{sorted(APP_REGISTRY)}", file=sys.stderr)
        return 2
    print(f"{app}: fleet transport differential "
          f"(AF_UNIX vs TCP + kill-one-worker migration)")
    report = run_fleet_differential(
        app=app, size=args.size, workdir=args.workdir,
        timeout_s=args.timeout_s, progress=print)
    print(report.summary())
    for mismatch in report.mismatches:
        print(f"    {mismatch['leg']}: {mismatch['kind']}")
    for leg in report.legs:
        bits = ", ".join(f"{k}={v}" for k, v in leg.items()
                         if k not in ("leg", "digests"))
        print(f"  [{leg['leg']}] {bits}")
    if args.json:
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(report.to_dict(), fh, indent=2)
            fh.write("\n")
        print(f"report written to {args.json}")
    return 0 if report.ok else 1


def _cmd_check(args: argparse.Namespace) -> int:
    import json

    if args.fleet:
        return _cmd_check_fleet(args)

    if args.restore:
        return _cmd_check_restore(args)

    if args.replay is not None:
        from .check.fuzz import replay
        try:
            summary = replay(args.replay)
        except AssertionError as exc:
            print(f"replay of {args.replay} still fails:\n{exc}")
            return 1
        print(f"replay of {args.replay} passed: {summary}")
        return 0

    if args.self_test:
        from .check import run_self_test
        executors = tuple(e.strip()
                          for e in args.executors.split(",") if e.strip())
        report = run_self_test(executors=executors, progress=print)
        print(report.summary())
        if args.json:
            with open(args.json, "w", encoding="utf-8") as fh:
                json.dump(report.to_dict(), fh, indent=2)
                fh.write("\n")
            print(f"report written to {args.json}")
        return 0 if report.ok else 1

    if args.fuzz:
        from .check.fuzz import fuzz
        seed_file = args.fuzz_seed_file or "fuzz-failure.json"
        print(f"fuzzing {args.max_examples} random automata ...")
        failure = fuzz(max_examples=args.max_examples,
                       seed_file=seed_file)
        if failure is not None:
            print(str(failure))
            print(f"replay with: repro check --replay {seed_file}")
            return 1
        print(f"no falsifying automaton in {args.max_examples} "
              f"examples")
        return 0

    from .check import DEFAULT_APPS, run_differential
    apps = args.apps or list(DEFAULT_APPS)
    unknown = [a for a in apps if a not in APP_REGISTRY]
    if unknown:
        print(f"error: unknown app(s) {unknown}; known: "
              f"{sorted(APP_REGISTRY)}", file=sys.stderr)
        return 2
    executors = tuple(e.strip()
                      for e in args.executors.split(",") if e.strip())
    reports = []
    for app in apps:
        print(f"{app}: differential conformance on "
              f"[{', '.join(executors)}]"
              + ("" if args.no_serve else " + serve"))
        report = run_differential(
            app=app, size=args.size, seed=args.seed,
            executors=executors, serve=not args.no_serve,
            timeout_s=args.timeout_s, progress=print)
        reports.append(report)
        print(report.summary())
        for mismatch in report.mismatches:
            print(f"    {mismatch['kind']}: {mismatch['detail']}")
    ok = all(r.ok for r in reports)
    print(f"\nconformance: {'PASS' if ok else 'FAIL'} "
          f"({sum(r.ok for r in reports)}/{len(reports)} apps clean)")
    if args.json:
        payload = {"report": "conformance", "ok": ok,
                   "apps": [r.to_dict() for r in reports]}
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2)
            fh.write("\n")
        print(f"report written to {args.json}")
    return 0 if ok else 1


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "apps":
        return _cmd_apps()
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "figures":
        return _cmd_figures(args)
    if args.command == "bench":
        return _cmd_bench(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "serve-worker":
        return _cmd_serve_worker(args)
    if args.command == "serve-front":
        return _cmd_serve_front(args)
    if args.command == "check":
        return _cmd_check(args)
    if args.command == "ckpt":
        return _cmd_ckpt(args)
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":   # pragma: no cover
    raise SystemExit(main())
