"""Loop perforation as an iterative anytime technique (paper III-B1).

Loop perforation skips loop iterations with a fixed stride, trading output
accuracy for runtime.  Made anytime, the perforated computation is
re-executed with progressively smaller strides ``s_1 > s_2 > ... > s_n = 1``
so accuracy increases over time, and the final pass (stride 1) is the
precise computation.

The paper points out that this *iterative* construction performs redundant
work: iterations at common multiples of the strides execute multiple times,
and the final precise pass re-executes everything.  This module provides
the stride-schedule machinery plus an audit of exactly how much work is
redundant — used by the Figure 13 benchmark (dwt53's "steep" curve) and
the redundancy ablation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["StrideSchedule", "perforated_indices", "geometric_strides"]


def perforated_indices(n: int, stride: int, offset: int = 0) -> np.ndarray:
    """Indices executed by one perforated pass over ``range(n)``."""
    if stride < 1:
        raise ValueError(f"stride must be >= 1, got {stride}")
    if not 0 <= offset < stride:
        raise ValueError(f"offset must be in [0, stride), got {offset}")
    return np.arange(offset, n, stride, dtype=np.int64)


def geometric_strides(start: int, factor: int = 2) -> tuple[int, ...]:
    """A stride ladder ``start, start/factor, ..., 1``.

    ``start`` must be a power of ``factor`` so the ladder lands exactly on
    stride 1 (the precise pass).
    """
    if start < 1:
        raise ValueError(f"start must be >= 1, got {start}")
    if factor < 2:
        raise ValueError(f"factor must be >= 2, got {factor}")
    strides = []
    s = start
    while s > 1:
        strides.append(s)
        if s % factor != 0:
            raise ValueError(
                f"start {start} is not a power of factor {factor}")
        s //= factor
    strides.append(1)
    return tuple(strides)


@dataclass(frozen=True)
class StrideSchedule:
    """An anytime loop-perforation schedule.

    The schedule validates the paper's requirements: strides strictly
    decrease (accuracy strictly increases) and the final stride is 1 (the
    last intermediate computation is the precise one).
    """

    strides: tuple[int, ...]

    def __post_init__(self) -> None:
        if not self.strides:
            raise ValueError("schedule needs at least one stride")
        for a, b in zip(self.strides, self.strides[1:]):
            if b >= a:
                raise ValueError(
                    f"strides must strictly decrease, got {self.strides}")
        if self.strides[-1] != 1:
            raise ValueError(
                f"final stride must be 1 (precise), got {self.strides}")

    @property
    def levels(self) -> int:
        """Number of intermediate computations ``n``."""
        return len(self.strides)

    def indices(self, n: int, level: int) -> np.ndarray:
        """Loop iterations executed by intermediate computation ``level``
        (0-based)."""
        return perforated_indices(n, self.strides[level])

    def work(self, n: int, level: int) -> int:
        """Iterations executed at ``level`` for a loop of ``n``."""
        return len(self.indices(n, level))

    def total_work(self, n: int) -> int:
        """Iterations executed across all levels (including redundancy)."""
        return sum(self.work(n, lv) for lv in range(self.levels))

    def redundant_work(self, n: int) -> int:
        """Iterations executed more than once, counted with multiplicity.

        The precise loop needs ``n`` iterations; everything beyond that is
        the price of the iterative construction (paper III-B1: "this
        approach yields redundant work for loop iterations that are common
        multiples of the selected strides", plus the full final pass).
        """
        return self.total_work(n) - n

    def redundancy_ratio(self, n: int) -> float:
        """Total work divided by precise work (>= 1)."""
        if n <= 0:
            return 1.0
        return self.total_work(n) / n
